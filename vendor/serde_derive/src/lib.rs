//! Offline derive-macro shim for the vendored `serde` subset.
//!
//! Supports the item shapes this workspace actually derives on:
//!
//! * structs with named fields (`struct Foo { a: u64, b: Vec<u64> }`);
//! * newtype tuple structs (`struct PhysReg(pub u16);`);
//! * enums of unit variants (`enum SlotUse { Useful, .. }`), one-field tuple
//!   variants (`L2Latency(u64)`) and named-field variants
//!   (`UnitSplit { ap: usize, ep: usize }`).
//!
//! Unit variants encode as their name; payload variants as a single-entry
//! object `{"Variant": payload}`. Generics, lifetimes, field-skipping
//! attributes and multi-field tuple variants are intentionally unsupported:
//! the macro fails loudly rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive target.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with exactly one field.
    Newtype { name: String },
    /// Enum of unit, single-field-tuple and struct variants.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

/// The payload shape of an enum variant.
enum VariantShape {
    /// `Name`
    Unit,
    /// `Name(T)`
    Newtype,
    /// `Name { a: A, b: B }`
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`, doc comments arrive in this form too).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            _ => break,
        }
    }
    // Skip visibility (`pub`, `pub(crate)`, ...).
    if let TokenTree::Ident(id) = &tokens[i] {
        if *id.to_string() == *"pub" {
            i += 1;
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive shim: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive shim: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic items are not supported ({name})");
        }
    }
    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_top_level_fields(g.stream());
            if n != 1 {
                panic!("serde derive shim: only 1-field tuple structs supported ({name} has {n})");
            }
            Item::Newtype { name }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_unit_variants(g.stream()),
        },
        _ => panic!("serde derive shim: unsupported item shape for {name}"),
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes / doc comments.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if let TokenTree::Ident(id) = &tokens[i] {
            if *id.to_string() == *"pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde derive shim: expected field name, got {other}"),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive shim: expected `:`, got {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of top-level comma-separated fields in a tuple-struct body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = idx == tokens.len() - 1;
            }
            _ => {}
        }
    }
    commas + usize::from(!trailing_comma)
}

/// Variants of an enum body: unit, one-field tuple, or named-field struct.
fn parse_unit_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants: Vec<Variant> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive shim: expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                if n != 1 {
                    panic!(
                        "serde derive shim: tuple variant {name} must have exactly 1 field, has {n}"
                    );
                }
                i += 1;
                VariantShape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                panic!("serde derive shim: unexpected token after variant: {other}")
            }
        }
    }
    variants
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "obj.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut obj: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Serialize::to_value(&self.0) }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(f0) => serde::Value::Object(vec![(\n\
                             \"{vn}\".to_string(), serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantShape::Struct(fields) => {
                        let bind = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bind} }} => serde::Value::Object(vec![(\n\
                                 \"{vn}\".to_string(),\n\
                                 serde::Value::Object(vec![{pushes}]))]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde derive shim: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: serde::Deserialize::from_value(v.field(\"{f}\")?)?,\n"
                ));
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<{name}, serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<{name}, serde::DeError> {{\n\
                     Ok({name}(serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Newtype => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(\n\
                                 serde::Deserialize::from_value(payload)?)),\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(\n\
                                         payload.field(\"{f}\")?)?,"
                                )
                            })
                            .collect();
                        tagged_arms
                            .push_str(&format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),\n"));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<{name}, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(serde::DeError::msg(format!(\n\
                                     \"unknown {name} variant {{other}}\"))),\n\
                             }},\n\
                             serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(serde::DeError::msg(format!(\n\
                                         \"unknown {name} variant {{other}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::DeError::msg(format!(\n\
                                 \"expected {name} variant, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde derive shim: generated invalid Deserialize impl")
}
