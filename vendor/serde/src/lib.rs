//! Offline shim for the `serde` API subset this workspace uses.
//!
//! The container registry is unreachable in the build environment, so this
//! crate supplies the `Serialize`/`Deserialize` traits (plus derive macros
//! re-exported from the local `serde_derive` shim) backed by a small
//! self-describing [`Value`] tree with an exact JSON round-trip:
//!
//! * integers serialize losslessly (`u64`/`i64` never go through `f64`);
//! * floats use Rust's shortest round-trip formatting (`{:?}`), so
//!   `parse(format(x)) == x` bit-for-bit for every finite `f64`;
//! * object key order is the struct-field declaration order, making the
//!   compact JSON form canonical — `dsmt-sweep` hashes it for cache keys.
//!
//! Only what the workspace needs is implemented; this is not a general serde.

// The derive macros share names with the traits below; macros live in a
// separate namespace, so both resolve from `use serde::{Serialize, ...}`.
pub use serde_derive::{Deserialize, Serialize};

mod json;

pub use json::{from_str, to_string, to_string_pretty};

/// A self-describing data tree, the interchange form of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (also covers `usize` and small positives).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Looks up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::msg(format!("missing field `{name}`"))),
            other => Err(DeError::msg(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, DeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, DeError> {
        match self {
            Value::U64(n) => Ok(*n),
            other => Err(DeError::msg(format!(
                "expected unsigned int, got {other:?}"
            ))),
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats are stored as strings in JSON.
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64()?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!("{n} out of range")))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of i64 range")))?,
                    other => return Err(DeError::msg(format!("expected int, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg(format!("{n} out of range")))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::msg(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted keys keep the compact JSON canonical despite hash order.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, item)| Ok((k.clone(), V::from_value(item)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert!(obj.field("a").is_ok());
        let err = obj.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
