//! JSON encoding/decoding for [`Value`] trees.
//!
//! The compact form is canonical: no insignificant whitespace, object keys in
//! insertion (struct-declaration) order, floats in Rust's shortest
//! round-trip formatting. `dsmt-sweep` hashes the compact form for its
//! on-disk cache keys, so any change here is a cache-schema change.

use crate::{DeError, Deserialize, Serialize, Value};

/// Serializes a value to compact (canonical) JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    out
}

/// Serializes a value to human-readable indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    out.push('\n');
    out
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns a [`DeError`] describing the first syntax error, or a shape
/// mismatch when converting into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, DeError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{x:?}"));
            } else if x.is_nan() {
                out.push_str("\"NaN\"");
            } else if *x > 0.0 {
                out.push_str("\"inf\"");
            } else {
                out.push_str("\"-inf\"");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(DeError::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(DeError::msg(format!(
                "invalid keyword at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| DeError::msg(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::msg("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(DeError::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(DeError::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| DeError::msg(format!("bad float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| DeError::msg(format!("bad int `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| DeError::msg(format!("bad int `{text}`: {e}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `]`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `}}`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_json_round_trips_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(18_446_744_073_709_551_615)),
            ("b".into(), Value::F64(0.1)),
            (
                "c".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("d".into(), Value::Str("quote \" slash \\ nl \n".into())),
            ("e".into(), Value::I64(-42)),
        ]);
        let text = to_string(&v);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX, 0.0] {
            let text = to_string(&x);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn pretty_json_parses_back() {
        let v = Value::Object(vec![(
            "nested".into(),
            Value::Array(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let text = to_string_pretty(&v);
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
