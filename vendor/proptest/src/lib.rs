//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! Provides deterministic random testing without shrinking: each `proptest!`
//! test runs `ProptestConfig::cases` cases, with the RNG seeded from the
//! test's path and the case index, so failures reproduce exactly across
//! machines and runs. No persistence files, no shrinking — a failing case
//! prints its case index; re-running reproduces it.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Per-test deterministic random source.
    #[derive(Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from a test identifier and case index.
        #[must_use]
        pub fn deterministic(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (u64::from(case) << 32) ^ u64::from(case),
            ))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.0.gen_range(0..n)
            }
        }
    }

    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Marker strategy for "any value of a primitive type".
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T> Any<T> {
    /// The strategy instance.
    #[must_use]
    pub const fn new() -> Self {
        Any(PhantomData)
    }
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any::new()
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary() -> Any<Self>;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> Any<$t> { Any::new() }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    T::arbitrary()
}

pub mod prop {
    //! Mirrors the `proptest::prop` namespace.

    pub mod bool {
        //! Boolean strategies.

        /// Either boolean with equal probability.
        pub const ANY: crate::Any<bool> = crate::Any::new();
    }

    pub mod num {
        //! Numeric strategies.

        pub mod u64 {
            //! `u64` strategies.

            /// Any `u64`.
            pub const ANY: crate::Any<u64> = crate::Any::new();
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// See [`of`].
        #[derive(Debug)]
        pub struct OptionOf<S>(S);

        impl<S: Strategy> Strategy for OptionOf<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.0.generate(rng))
                } else {
                    None
                }
            }
        }

        /// `None` or `Some(inner)` with equal probability.
        pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
            OptionOf(inner)
        }
    }

    pub mod collection {
        //! Collection strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::ops::Range;

        /// See [`vec()`].
        #[derive(Debug)]
        pub struct VecOf<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecOf<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span.max(1)) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of `element` values with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecOf<S> {
            VecOf { element, len }
        }
    }

    pub mod sample {
        //! Sampling strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::fmt::Debug;

        /// See [`select`].
        #[derive(Debug)]
        pub struct Select<T>(Vec<T>);

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// One of `items`, uniformly.
        ///
        /// # Panics
        ///
        /// Panics if `items` is empty.
        pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select(items)
        }
    }
}

/// Runs property tests: `proptest! { #[test] fn name(x in strategy) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($config).cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Skips the current case when its assumption fails.
///
/// Inside the shim's `proptest!` expansion the test body is the top level of
/// the per-case loop, so `continue` moves on to the next case. Using this
/// macro inside a nested loop within a test body is not supported.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t", 0);
        for _ in 0..1_000 {
            let x = (0u8..32).generate(&mut rng);
            assert!(x < 32);
            let y = (1u8..=16).generate(&mut rng);
            assert!((1..=16).contains(&y));
            let f = (0.05f64..0.3).generate(&mut rng);
            assert!((0.05..0.3).contains(&f));
            let (a, b) = ((1usize..7), prop::bool::ANY).generate(&mut rng);
            assert!((1..7).contains(&a));
            let _ = b;
        }
    }

    #[test]
    fn map_filter_select_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2", 1);
        let s = (0u64..100)
            .prop_map(|x| x * 2)
            .prop_filter("must be small", |x| *x < 100);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 100);
        }
        let sel = prop::sample::select(vec![3u64, 5, 7]);
        for _ in 0..50 {
            assert!([3, 5, 7].contains(&sel.generate(&mut rng)));
        }
        let vecs = prop::collection::vec(0u8..10, 0..5);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!(v.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_binds_patterns(x in 0u32..10, flag in prop::bool::ANY) {
            prop_assert!(x < 10);
            prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    fn deterministic_across_invocations() {
        let mut a = crate::test_runner::TestRng::deterministic("same", 3);
        let mut b = crate::test_runner::TestRng::deterministic("same", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
