//! Offline shim for the `criterion` benchmarking API subset.
//!
//! Provides the same source-level interface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotations) backed by a plain wall-clock harness: each benchmark warms
//! up briefly, then runs up to `sample_size` timed iterations bounded by
//! `measurement_time`, and reports mean, median and sample standard
//! deviation per iteration plus derived throughput (see [`Summary`]), so
//! regressions are distinguishable from run-to-run noise. No plots or
//! baselines — just honest offline statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Summary statistics over a set of per-iteration timing samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub samples: usize,
    /// Arithmetic mean, in nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median (50th percentile), in nanoseconds per iteration.
    pub median_ns: f64,
    /// Sample standard deviation (n-1 denominator; 0 for a single sample),
    /// in nanoseconds per iteration.
    pub stddev_ns: f64,
}

/// Computes [`Summary`] statistics over raw samples (any unit; the field
/// names say nanoseconds because that is what the harness feeds in, but
/// the math is unit-agnostic — benches also use it for cells/sec samples).
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "cannot summarize zero samples");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    let stddev = if n < 2 {
        0.0
    } else {
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        var.sqrt()
    };
    Summary {
        samples: n,
        mean_ns: mean,
        median_ns: median,
        stddev_ns: stddev,
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Filled in by [`Bencher::iter`]: nanoseconds per iteration, one
    /// sample per timed execution.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times repeated executions of `routine`, recording one sample per
    /// iteration so the harness can report median and spread, not just a
    /// mean.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let start = Instant::now();
        while self.samples.len() < self.sample_size && start.elapsed() < self.measurement {
            let iter_start = Instant::now();
            black_box(routine());
            self.samples.push(iter_start.elapsed().as_nanos() as f64);
        }
        if self.samples.is_empty() {
            // Budget exhausted during warm-up: record one honest sample.
            let iter_start = Instant::now();
            black_box(routine());
            self.samples.push(iter_start.elapsed().as_nanos() as f64);
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::with_capacity(self.sample_size),
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        if b.samples.is_empty() {
            println!("bench: {full:<55} (no iterations recorded)");
            return;
        }
        let s = summarize(&b.samples);
        let mut line = format!(
            "bench: {full:<55} median {:>12.0} ns/iter  mean {:>12.0}  ±{:.0} ({} samples)",
            s.median_ns, s.mean_ns, s.stddev_ns, s.samples
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            // Throughput from the median: robust to one slow outlier.
            let per_sec = count as f64 / (s.median_ns / 1e9);
            if per_sec >= 1e6 {
                line.push_str(&format!(" ({:.2} M{unit}/s)", per_sec / 1e6));
            } else {
                line.push_str(&format!(" ({per_sec:.1} {unit}/s)"));
            }
        }
        println!("{line}");
        self.criterion.completed += 1;
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.name.clone();
        self.run_one(&name, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50))
            .throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls >= 3, "warm-up + 3 samples, got {calls}");
        assert_eq!(c.completed, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("tomcatv", 256);
        assert_eq!(id.name, "tomcatv/256");
    }

    #[test]
    fn summarize_reports_mean_median_stddev() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.samples, 5);
        assert!((s.mean_ns - 22.0).abs() < 1e-9);
        assert!((s.median_ns - 3.0).abs() < 1e-9, "median resists outliers");
        assert!(s.stddev_ns > 40.0, "outlier shows up in the spread");

        let even = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert!((even.median_ns - 2.5).abs() < 1e-9);

        let single = summarize(&[7.0]);
        assert_eq!(single.median_ns, 7.0);
        assert_eq!(single.stddev_ns, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn summarize_rejects_empty() {
        let _ = summarize(&[]);
    }
}
