//! Offline shim for the `criterion` benchmarking API subset.
//!
//! Provides the same source-level interface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotations) backed by a plain wall-clock harness: each benchmark warms
//! up briefly, then runs up to `sample_size` timed iterations bounded by
//! `measurement_time`, and prints the mean time per iteration plus derived
//! throughput. No statistics, plots or comparisons — just honest timings
//! that work offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Filled in by [`Bencher::iter`]: (iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < self.sample_size as u64 && start.elapsed() < self.measurement {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((iters.max(1), start.elapsed()));
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        match b.result {
            Some((iters, elapsed)) => {
                let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                let mut line = format!("bench: {full:<55} {:>12.0} ns/iter", ns_per_iter);
                if let Some(t) = self.throughput {
                    let (count, unit) = match t {
                        Throughput::Elements(n) => (n, "elem"),
                        Throughput::Bytes(n) => (n, "B"),
                    };
                    let per_sec = count as f64 / (ns_per_iter / 1e9);
                    if per_sec >= 1e6 {
                        line.push_str(&format!(" ({:.2} M{unit}/s)", per_sec / 1e6));
                    } else {
                        line.push_str(&format!(" ({per_sec:.1} {unit}/s)"));
                    }
                }
                println!("{line}");
                self.criterion.completed += 1;
            }
            None => println!("bench: {full:<55} (no iterations recorded)"),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.name.clone();
        self.run_one(&name, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50))
            .throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls >= 3, "warm-up + 3 samples, got {calls}");
        assert_eq!(c.completed, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("tomcatv", 256);
        assert_eq!(id.name, "tomcatv/256");
    }
}
