//! Offline shim for the `bytes` crate: the `Buf`/`BufMut` subset the trace
//! encoder uses, over plain `Vec<u8>`-backed buffers.

/// Sequential reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the read cursor.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Fills `dst` from the buffer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies the next `len` bytes out as an owned [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from_vec(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a byte vector.
    #[must_use]
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }

    /// Total length including consumed bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether any unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, n: usize) {
        self.pos += n;
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the written bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u64_le(0xdead_beef_cafe_f00d);
        buf.put_slice(b"xyz");
        assert_eq!(buf.len(), 12);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 12);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u64_le(), 0xdead_beef_cafe_f00d);
        assert_eq!(bytes.chunk(), b"xyz");
    }

    #[test]
    fn slice_and_vec_impls_match() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u64_le(99);
        let mut s: &[u8] = &v;
        assert_eq!(s.remaining(), 8);
        assert_eq!(s.get_u64_le(), 99);
        assert_eq!(s.remaining(), 0);
    }
}
