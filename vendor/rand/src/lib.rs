//! Offline shim for the `rand` crate: a deterministic xoshiro256**-based
//! `StdRng` behind the `Rng`/`SeedableRng` trait subset the workspace uses.
//!
//! The stream differs from upstream `rand`'s `StdRng`, but it is fixed for
//! all time by this implementation, which is what the simulator actually
//! needs: identical seeds produce identical instruction streams on every
//! machine and at every worker count.

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value API used by the trace synthesiser.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 random bits -> uniform in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span.
        range.start + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }
}
