//! Quickstart: build the paper's machine, run the multiprogrammed SPEC FP95
//! workload, and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use dsmt_repro::core::{Processor, SimConfig, SlotUse};

fn main() {
    // The paper's Figure-2 machine with 3 hardware contexts and a 16-cycle L2.
    let config = SimConfig::paper_multithreaded(3);
    println!(
        "simulating {} threads, {}-wide issue ({} AP + {} EP units), L2 = {} cycles",
        config.num_threads,
        config.issue_width(),
        config.ap_units,
        config.ep_units,
        config.mem.l2_latency
    );

    let mut cpu = Processor::with_spec_workload(config, 42);
    let results = cpu.run(500_000);

    println!();
    println!("instructions retired : {}", results.instructions);
    println!("cycles               : {}", results.cycles);
    println!("IPC                  : {:.2}", results.ipc());
    println!(
        "branch accuracy      : {:.1}%",
        results.branch_accuracy * 100.0
    );
    println!(
        "L1 load miss ratio   : {:.1}%",
        results.load_miss_ratio() * 100.0
    );
    println!(
        "bus utilisation      : {:.1}%",
        results.bus_utilization * 100.0
    );
    println!(
        "perceived load miss latency: {:.1} cycles (fp {:.1}, int {:.1})",
        results.perceived.combined(),
        results.perceived.fp(),
        results.perceived.int()
    );

    println!("\nissue-slot breakdown (fraction of unit slots):");
    for (name, slots) in [("AP", &results.ap_slots), ("EP", &results.ep_slots)] {
        print!("  {name}: ");
        for kind in SlotUse::ALL {
            print!("{} {:.1}%  ", kind.label(), slots.fraction(kind) * 100.0);
        }
        println!();
    }
}
