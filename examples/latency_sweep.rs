//! Latency sweep: how much of the L2 latency does decoupling hide?
//!
//! Runs a single-threaded machine across L2 latencies from 1 to 256 cycles,
//! with and without decoupling, and prints IPC plus the perceived load-miss
//! latency — a miniature version of the paper's Figures 1 and 4.
//!
//! Run with: `cargo run --release --example latency_sweep`

use dsmt_repro::core::{Processor, SimConfig};
use dsmt_repro::trace::ThreadWorkload;

fn main() {
    let latencies = [1u64, 16, 32, 64, 128, 256];
    let instructions = 300_000;

    println!(
        "{:>8} | {:>12} {:>16} | {:>12} {:>16}",
        "L2 lat", "dec IPC", "dec perceived", "non IPC", "non perceived"
    );
    println!("{}", "-".repeat(76));

    for &lat in &latencies {
        let mut row = Vec::new();
        for decoupled in [true, false] {
            let config = SimConfig::paper_multithreaded(1)
                .with_l2_latency(lat)
                .with_decoupled(decoupled)
                .with_queue_scaling(true);
            let workload = ThreadWorkload::spec_fp95(7).with_insts_per_program(30_000);
            let results = Processor::with_workload(config, &workload).run(instructions);
            row.push((results.ipc(), results.perceived.combined()));
        }
        println!(
            "{:>8} | {:>12.2} {:>13.1} cy | {:>12.2} {:>13.1} cy",
            lat, row[0].0, row[0].1, row[1].0, row[1].1
        );
    }

    println!(
        "\nDecoupling keeps the perceived latency (and therefore the IPC loss) nearly flat \
         as the L2 latency grows; without the instruction queues the full miss latency is \
         exposed to the in-order pipeline."
    );
}
