//! Thread scaling: how many hardware contexts does the decoupled machine
//! need to reach its peak throughput?
//!
//! A miniature version of the paper's Figure 5: IPC and external bus
//! utilisation versus the number of hardware threads, for the decoupled and
//! non-decoupled machines.
//!
//! Run with: `cargo run --release --example thread_scaling`

use dsmt_repro::core::{Processor, SimConfig};
use dsmt_repro::trace::ThreadWorkload;

fn run(threads: usize, decoupled: bool) -> (f64, f64) {
    let config = SimConfig::paper_multithreaded(threads).with_decoupled(decoupled);
    let workload = ThreadWorkload::spec_fp95(21).with_insts_per_program(30_000);
    let results = Processor::with_workload(config, &workload).run(300_000);
    (results.ipc(), results.bus_utilization)
}

fn main() {
    println!(
        "{:>8} | {:>12} {:>10} | {:>12} {:>10}",
        "threads", "dec IPC", "dec bus", "non IPC", "non bus"
    );
    println!("{}", "-".repeat(62));
    for threads in 1..=8 {
        let (dec_ipc, dec_bus) = run(threads, true);
        let (non_ipc, non_bus) = run(threads, false);
        println!(
            "{:>8} | {:>12.2} {:>9.0}% | {:>12.2} {:>9.0}%",
            threads,
            dec_ipc,
            dec_bus * 100.0,
            non_ipc,
            non_bus * 100.0
        );
    }
    println!(
        "\nThe decoupled machine saturates with noticeably fewer threads — fewer contexts \
         means less cache pressure, less bus traffic, and less replicated hardware."
    );
}
