//! Defining a custom workload profile and capturing it to a trace file.
//!
//! This example shows the full workload pipeline:
//!
//! 1. describe a program's behaviour with a [`BenchmarkProfile`];
//! 2. synthesise an instruction stream from it;
//! 3. write a segment of that stream to a binary trace file and read it
//!    back (exact replay);
//! 4. run both the pathological and a well-behaved variant through the
//!    simulator and compare.
//!
//! Run with: `cargo run --release --example custom_benchmark`

use dsmt_repro::core::{Processor, SimConfig};
use dsmt_repro::trace::{BenchmarkProfile, SyntheticTrace, TraceReader, TraceSource, TraceWriter};

fn simulate(profile: &BenchmarkProfile) -> f64 {
    let config = SimConfig::paper_multithreaded(1)
        .with_l2_latency(64)
        .with_queue_scaling(true);
    let trace = SyntheticTrace::new(profile, 3);
    let traces: Vec<Box<dyn TraceSource>> = vec![Box::new(trace)];
    Processor::new(config, traces).run(200_000).ipc()
}

fn main() {
    // A well-behaved numerical kernel: streams arrays, decouples cleanly.
    let mut good = BenchmarkProfile::baseline("good-kernel");
    good.stream_frac = 0.5;
    good.lod_frac = 0.0;
    good.int_load_use_dist = 12;

    // A pathological variant: every iteration moves an FP result into the
    // integer pipeline (loss of decoupling), and integer loads feed their
    // consumers immediately.
    let mut bad = good.clone();
    bad.name = "lossy-kernel".to_string();
    bad.lod_frac = 0.9;
    bad.int_load_use_dist = 1;

    // Capture a segment of the good kernel to a trace file and replay it.
    let mut generator = SyntheticTrace::new(&good, 3);
    let mut file_bytes = Vec::new();
    TraceWriter::write_from_source(&mut file_bytes, &mut generator, 10_000)
        .expect("in-memory write cannot fail");
    let replay = TraceReader::read(&mut file_bytes.as_slice()).expect("roundtrip");
    println!(
        "captured {} instructions of '{}' into a {}-byte trace file",
        replay.len(),
        replay.name(),
        file_bytes.len()
    );

    let good_ipc = simulate(&good);
    let bad_ipc = simulate(&bad);
    println!("well-decoupled kernel IPC (L2 = 64): {good_ipc:.2}");
    println!("loss-of-decoupling kernel IPC      : {bad_ipc:.2}");
    println!(
        "losing decoupling costs {:.0}% of the throughput on this machine",
        (1.0 - bad_ipc / good_ipc) * 100.0
    );
}
