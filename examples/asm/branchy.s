# Branch-heavy scanner.
#
# Walks a 16 KiB array counting words that match a bit mask loaded from
# the data image. The array cells are seed hashes, so the data-dependent
# branch is essentially a coin flip: the thread mispredicts constantly
# and keeps squashing its own fetch stream.

        .org 0x1000
start:
        li   r1, 0x4000            # array base
        li   r3, 2048              # elements
        li   r2, 0                 # index
        li   r5, 0                 # match count
        li   r8, mask
        ldq  r8, 0(r8)             # the test mask comes from the data image
loop:
        slli r4, r2, 3
        add  r4, r1, r4            # r4 = &array[index]
        ldq  r6, 0(r4)
        and  r7, r6, r8
        bz   r7, skip
        addi r5, r5, 1
skip:
        addi r2, r2, 1
        blt  r2, r3, loop
        stq  r5, 0(r1)             # publish the count
        halt

# One preloaded cell: the scanner's test mask.
        .org 0x3ff0
mask:
        .word 1
