# Memory-bound pointer chaser.
#
# Serially dependent loads walk a pseudo-random 4 MiB table -- far larger
# than the 64 KiB L1 -- so almost every chase step misses and the next
# step cannot even compute its address until the miss returns. The
# thread's fetch buffer stays clogged behind the load chain, which is
# exactly the behaviour that lets I-COUNT deprioritise it.

        .org 0x1000
start:
        li   r1, 0x400000          # table base
        li   r3, 0x3ffff8          # offset mask keeps the walk inside 4 MiB
        li   r4, 4096              # chase steps per pass
        li   r2, 0                 # current offset
loop:
        add  r5, r1, r2            # r5 = &table[offset]
        ldq  r6, 0(r5)             # dependent load: the next link
        and  r2, r6, r3            # next offset comes from the loaded value
        subi r4, r4, 1
        bnz  r4, loop
        halt
