# Compute-bound floating-point kernel.
#
# A dependence chain of FP multiplies and adds over an 8 KiB vector that
# lives comfortably in the L1: plenty of Execute Processor work, almost
# no memory stalls, and a perfectly predictable counted loop. This
# thread's fetch buffer drains steadily, so it profits from every fetch
# slot a clogged neighbour gives up.

        .org 0x1000
start:
        li   r1, 0x8000            # vector base
        li   r2, 1024              # elements per pass
        li   r3, 8                 # stride
loop:
        ldt  f1, 0(r1)
        ldt  f2, 8(r1)
        fmul f3, f1, f2
        fadd f4, f3, f1
        fmul f5, f4, f2
        fadd f6, f5, f4
        fadd f0, f0, f6            # running accumulator
        add  r1, r1, r3
        subi r2, r2, 1
        bnz  r2, loop
        halt
