//! Composing a custom scenario sweep with `dsmt-sweep`.
//!
//! The paper's figures are fixed grids; this example shows the engine on a
//! question the paper never asks: how does the fetch gang size (threads
//! allowed to fetch per cycle) interact with the L2 latency on a 4-thread
//! machine, for both the full SPEC mix and the worst-decoupling benchmark?
//!
//! Run with: `cargo run --release --example sweep_custom`

use dsmt_repro::core::SimConfig;
use dsmt_repro::experiments::Table;
use dsmt_repro::sweep::{Axis, Setting, SweepEngine, SweepGrid, WorkloadSpec};

fn main() {
    let grid = SweepGrid::new("fetch-gang-vs-latency", SimConfig::paper_multithreaded(4))
        .with_workload(WorkloadSpec::spec_mix(10_000))
        .with_workload(WorkloadSpec::benchmark("fpppp"))
        .with_axis(Axis::new(
            "fetch_threads",
            vec![
                Setting::FetchThreadsPerCycle(1),
                Setting::FetchThreadsPerCycle(2),
                Setting::FetchThreadsPerCycle(4),
            ],
        ))
        .with_axis(Axis::l2_latencies(&[16, 64]))
        .with_budget(60_000);

    let engine = SweepEngine::from_env();
    let report = engine.run(&grid);
    println!("{}", Table::from_report(&report).to_markdown());
    println!(
        "{} cells ({} cached, {} simulated); re-run this example to see the cache take over",
        report.records.len(),
        report.cache_hits,
        report.cache_misses
    );
}
