//! Integration tests that run reduced versions of the paper's experiments
//! end-to-end through the harness crate and assert the qualitative shapes
//! the paper reports. The full-scale versions live in the `fig1`..`fig5`
//! binaries and EXPERIMENTS.md.

use dsmt_repro::experiments::{fig3, fig4, fig5, ExperimentParams};

fn tiny() -> ExperimentParams {
    ExperimentParams {
        instructions_per_point: 25_000,
        insts_per_program: 8_000,
        seed: 42,
        workers: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
    }
}

#[test]
fn figure3_shape_multithreading_fills_the_issue_slots() {
    let params = ExperimentParams {
        instructions_per_point: 40_000,
        ..tiny()
    };
    let results = fig3::run(&params);
    let one = results.row(1).expect("1-thread row");
    let four = results.row(4).expect("4-thread row");
    // Single thread: the EP wastes most of its slots waiting on FU results.
    assert!(
        one.ep.fraction(dsmt_repro::core::SlotUse::WaitFu) > 0.3,
        "1T EP wait-fu fraction {:.2}",
        one.ep.fraction(dsmt_repro::core::SlotUse::WaitFu)
    );
    // Multithreading sharply raises throughput and AP utilisation.
    assert!(
        four.ipc > 1.7 * one.ipc,
        "4T {} vs 1T {}",
        four.ipc,
        one.ipc
    );
    assert!(four.ap.utilization() > one.ap.utilization());
}

#[test]
fn figure4_shape_decoupling_flattens_the_latency_curve() {
    // A reduced grid: 1 and 4 threads, three latencies.
    let params = tiny();
    let run = |threads, decoupled, lat| {
        let cfg = fig4::fig4_config(threads, decoupled, lat);
        dsmt_repro::experiments::runner::run_spec(cfg, &params)
    };
    for &threads in &[1usize, 4] {
        let dec_fast = run(threads, true, 1);
        let dec_slow = run(threads, true, 128);
        let non_fast = run(threads, false, 1);
        let non_slow = run(threads, false, 128);
        let dec_loss = dec_slow.ipc_loss_pct_vs(&dec_fast);
        let non_loss = non_slow.ipc_loss_pct_vs(&non_fast);
        assert!(
            dec_loss < non_loss,
            "{threads} threads: decoupled loss {dec_loss:.1}% vs non-decoupled {non_loss:.1}%"
        );
        // And the decoupled machine perceives less of the miss latency.
        assert!(dec_slow.perceived.combined() < non_slow.perceived.combined());
    }
}

#[test]
fn figure5_shape_decoupled_needs_fewer_threads() {
    let params = tiny();
    let run = |threads, decoupled| {
        let cfg = fig5::fig5_config(threads, decoupled, 64);
        dsmt_repro::experiments::runner::run_spec(cfg, &params)
    };
    // With only 4 threads the decoupled machine already clearly outperforms
    // the non-decoupled one at a 64-cycle L2.
    let dec_4 = run(4usize, true);
    let non_4 = run(4usize, false);
    assert!(
        dec_4.ipc() > 1.2 * non_4.ipc(),
        "decoupled 4T {:.2} vs non-decoupled 4T {:.2}",
        dec_4.ipc(),
        non_4.ipc()
    );
    // The non-decoupled machine leans harder on thread-level parallelism:
    // it gains proportionally more from going to 8 threads than the
    // decoupled machine does.
    let dec_8 = run(8usize, true);
    let non_8 = run(8usize, false);
    let dec_gain = dec_8.ipc() / dec_4.ipc();
    let non_gain = non_8.ipc() / non_4.ipc();
    assert!(
        non_gain > dec_gain * 0.95,
        "non-decoupled gain {non_gain:.2} vs decoupled gain {dec_gain:.2}"
    );
}
