//! Regression test for graceful shutdown of the real `dsmt serve` binary:
//! `SIGTERM` must drain, print the stop summary, release the `serve`
//! claim, and exit 0.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

#[test]
fn sigterm_stops_the_daemon_gracefully_and_releases_the_claim() {
    let dir = std::env::temp_dir().join(format!("dsmt-sigterm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store = dir.join("store");

    let mut child = Command::new(env!("CARGO_BIN_EXE_dsmt"))
        .args([
            "serve",
            "--store",
            store.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dsmt serve");

    // The daemon prints the bound address before accepting; read it.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().expect("banner line").expect("readable banner");
    let addr = banner
        .strip_prefix("dsmt-serve listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    // It answers requests, and it holds the store's serve claim.
    let client = dsmt_serve::HttpClient::new(&addr).with_timeout(Duration::from_secs(5));
    let health = client.get("/healthz").expect("healthz over the wire");
    assert_eq!(health.status, 200);
    assert!(store.join("locks").join("serve.lock").exists());

    // SIGTERM → clean exit with the stop summary on stdout.
    unsafe {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        assert_eq!(kill(child.id() as i32, 15), 0, "deliver SIGTERM");
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM for 30s");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "daemon exited {status:?}");
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(
        rest.iter().any(|l| l.starts_with("dsmt-serve stopped:")),
        "missing stop summary in {rest:?}"
    );

    // The claim is released: the lockfile is gone and a second daemon can
    // take the directory immediately.
    assert!(!store.join("locks").join("serve.lock").exists());
    assert!(client.get("/healthz").is_err(), "socket should be closed");
    let _ = std::fs::remove_dir_all(&dir);
}
