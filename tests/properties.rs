//! Cross-crate property-based tests: whatever workload and configuration we
//! throw at the simulator, its accounting invariants must hold.

use dsmt_repro::core::{Processor, SimConfig, SlotUse};
use dsmt_repro::trace::{BenchmarkProfile, SyntheticTrace, TraceSource};
use proptest::prelude::*;

fn arbitrary_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        0.05f64..0.3, // fp loads
        0.0f64..0.1,  // int loads
        0.0f64..0.15, // stores
        0.2f64..0.45, // fp ops
        1usize..7,    // chains
        0.0f64..0.5,  // lod
        1usize..12,   // int load use distance
        0.0f64..0.9,  // stream fraction
        prop::sample::select(vec![64u64 * 1024, 1024 * 1024, 8 * 1024 * 1024]),
    )
        .prop_map(
            |(fp_load, int_load, store, fp_ops, chains, lod, dist, stream, footprint)| {
                let mut p = BenchmarkProfile::baseline("prop");
                p.frac_fp_load = fp_load;
                p.frac_int_load = int_load;
                p.frac_store = store;
                p.frac_fp_ops = fp_ops;
                p.fp_parallel_chains = chains;
                p.lod_frac = lod;
                p.int_load_use_dist = dist;
                p.stream_frac = stream;
                p.array_footprint_bytes = footprint;
                p
            },
        )
        .prop_filter("mix must be valid", |p| p.validate().is_ok())
}

fn arbitrary_config() -> impl Strategy<Value = SimConfig> {
    (
        1usize..4,                                     // threads
        prop::bool::ANY,                               // decoupled
        prop::sample::select(vec![1u64, 16, 64, 128]), // L2 latency
        prop::bool::ANY,                               // queue scaling
    )
        .prop_map(|(threads, decoupled, lat, scale)| {
            SimConfig::paper_multithreaded(threads)
                .with_decoupled(decoupled)
                .with_l2_latency(lat)
                .with_queue_scaling(scale)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants that must hold for any workload/configuration:
    /// slot accounting covers every slot, IPC is bounded by the issue width,
    /// miss counters are consistent, and the run is deterministic.
    #[test]
    fn simulator_invariants_hold(profile in arbitrary_profile(), config in arbitrary_config(), seed in 0u64..100) {
        let build = || {
            let traces: Vec<Box<dyn TraceSource>> = (0..config.num_threads)
                .map(|t| {
                    Box::new(SyntheticTrace::with_offset(&profile, seed, t as u64 * 0x0400_2000))
                        as Box<dyn TraceSource>
                })
                .collect();
            Processor::new(config.clone(), traces)
        };
        let r = build().run(15_000);

        // Progress and bounds.
        prop_assert!(r.instructions >= 15_000);
        prop_assert!(r.cycles > 0);
        prop_assert!(r.ipc() <= config.issue_width() as f64 + 1e-9);

        // Slot accounting is exhaustive.
        prop_assert_eq!(r.ap_slots.total(), r.cycles * config.ap_units as u64);
        prop_assert_eq!(r.ep_slots.total(), r.cycles * config.ep_units as u64);
        for kind in SlotUse::ALL {
            prop_assert!(r.ap_slots.fraction(kind) >= 0.0 && r.ap_slots.fraction(kind) <= 1.0);
        }

        // Useful slots cover at least the retired instructions (instructions
        // still in flight at the end may have issued too).
        prop_assert!(r.ap_slots.useful + r.ep_slots.useful >= r.instructions);

        // Memory accounting.
        let mem_accesses = r.mem.load_accesses() + r.mem.store_accesses();
        prop_assert!(mem_accesses >= r.mem.load_misses + r.mem.store_misses);
        prop_assert!((0.0..=1.0).contains(&r.bus_utilization));
        prop_assert!((0.0..=1.0).contains(&r.load_miss_ratio()));
        prop_assert!((0.0..=1.0).contains(&r.branch_accuracy));

        // Perceived latency denominators never exceed the observed misses.
        prop_assert!(r.perceived.fp_load_misses + r.perceived.int_load_misses <= r.mem.load_misses);

        // Determinism: the same configuration and seed reproduce the run.
        let again = build().run(15_000);
        prop_assert_eq!(r, again);
    }
}
