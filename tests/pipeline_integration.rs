//! Integration tests spanning the workload, memory and processor crates:
//! the full pipeline from profile → synthetic trace → simulation → results.

use dsmt_repro::core::{Processor, SimConfig};
use dsmt_repro::trace::{
    spec_fp95_profile, BenchmarkProfile, SyntheticTrace, ThreadWorkload, TraceReader, TraceSource,
    TraceWriter, VecTrace,
};

const RUN: u64 = 40_000;

fn single_thread(config: SimConfig, profile: &BenchmarkProfile, seed: u64) -> Processor {
    let traces: Vec<Box<dyn TraceSource>> = vec![Box::new(SyntheticTrace::new(profile, seed))];
    Processor::new(config, traces)
}

#[test]
fn spec_workload_runs_and_reports_consistent_totals() {
    let config = SimConfig::paper_multithreaded(2);
    let mut cpu = Processor::with_spec_workload(config.clone(), 5);
    let r = cpu.run(RUN);
    assert!(r.instructions >= RUN);
    assert_eq!(
        r.per_thread_instructions.iter().sum::<u64>(),
        r.instructions
    );
    assert_eq!(r.per_thread_instructions.len(), 2);
    // Slot accounting covers every unit slot of every cycle.
    assert_eq!(r.ap_slots.total(), r.cycles * config.ap_units as u64);
    assert_eq!(r.ep_slots.total(), r.cycles * config.ep_units as u64);
    // The workload mix keeps both units busy.
    assert!(r.ap_slots.useful > 0);
    assert!(r.ep_slots.useful > 0);
    assert!(r.loads > 0 && r.stores > 0 && r.branches > 0);
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let config = SimConfig::paper_multithreaded(3);
    let a = Processor::with_spec_workload(config.clone(), 9).run(RUN);
    let b = Processor::with_spec_workload(config, 9).run(RUN);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_the_run_but_not_the_big_picture() {
    let config = SimConfig::paper_multithreaded(2);
    let a = Processor::with_spec_workload(config.clone(), 1).run(RUN);
    let b = Processor::with_spec_workload(config, 2).run(RUN);
    assert_ne!(a.cycles, b.cycles);
    // Aggregate behaviour stays in the same ballpark.
    assert!((a.ipc() - b.ipc()).abs() < 1.5);
}

#[test]
fn trace_file_replay_matches_generator_driven_simulation() {
    // Capture a synthetic trace to the binary format, then simulate both the
    // captured replay and a fresh generator limited to the same prefix: the
    // cycle counts must match exactly.
    let profile = spec_fp95_profile("mgrid").unwrap();
    let n = 30_000u64;

    let mut bytes = Vec::new();
    let mut generator = SyntheticTrace::new(&profile, 77);
    TraceWriter::write_from_source(&mut bytes, &mut generator, n).unwrap();
    let replay = TraceReader::read(&mut bytes.as_slice()).unwrap();
    assert_eq!(replay.len() as u64, n);

    let config = SimConfig::paper_multithreaded(1);
    let from_file = {
        let traces: Vec<Box<dyn TraceSource>> = vec![Box::new(replay)];
        Processor::new(config.clone(), traces).run(n)
    };
    let from_generator = {
        // Re-capture the same prefix into a VecTrace to bound it identically.
        let mut generator = SyntheticTrace::new(&profile, 77);
        let insts: Vec<_> = (0..n)
            .map(|_| generator.next_instruction().unwrap())
            .collect();
        let traces: Vec<Box<dyn TraceSource>> = vec![Box::new(VecTrace::new("mgrid", insts))];
        Processor::new(config, traces).run(n)
    };
    assert_eq!(from_file.cycles, from_generator.cycles);
    assert_eq!(from_file.instructions, from_generator.instructions);
    assert_eq!(from_file.mem, from_generator.mem);
}

#[test]
fn decoupling_hides_latency_for_a_well_behaved_benchmark() {
    // tomcatv decouples well: at a 64-cycle L2 the decoupled machine must
    // both perceive far less latency and retain far more of its throughput
    // than the non-decoupled one.
    let profile = spec_fp95_profile("tomcatv").unwrap();
    let base = SimConfig::paper_multithreaded(1)
        .with_l2_latency(64)
        .with_queue_scaling(true);
    let dec = single_thread(base.clone(), &profile, 11).run(RUN);
    let non = single_thread(base.with_decoupled(false), &profile, 11).run(RUN);
    assert!(
        dec.perceived.fp() < 0.5 * non.perceived.fp(),
        "decoupled perceived fp latency {:.1} vs non-decoupled {:.1}",
        dec.perceived.fp(),
        non.perceived.fp()
    );
    assert!(dec.ipc() > non.ipc());
}

#[test]
fn fpppp_loses_decoupling_and_exposes_latency() {
    // fpppp is the paper's example of a program that decouples badly: its
    // perceived FP-load latency should be a large fraction of the L2 latency
    // even on the decoupled machine, and much larger than tomcatv's.
    let config = SimConfig::paper_multithreaded(1)
        .with_l2_latency(64)
        .with_queue_scaling(true);
    let fpppp = single_thread(config.clone(), &spec_fp95_profile("fpppp").unwrap(), 3).run(RUN);
    let tomcatv = single_thread(config, &spec_fp95_profile("tomcatv").unwrap(), 3).run(RUN);
    assert!(
        fpppp.perceived.fp() > 3.0 * tomcatv.perceived.fp(),
        "fpppp {:.1} vs tomcatv {:.1}",
        fpppp.perceived.fp(),
        tomcatv.perceived.fp()
    );
}

#[test]
fn multithreading_and_decoupling_are_synergistic() {
    // The paper's core claim: multithreading supplies ILP (raises IPC),
    // decoupling supplies latency tolerance (flattens the latency curve).
    let workload = ThreadWorkload::spec_fp95(13).with_insts_per_program(10_000);
    let run = |threads: usize, decoupled: bool, lat: u64| {
        let cfg = SimConfig::paper_multithreaded(threads)
            .with_decoupled(decoupled)
            .with_l2_latency(lat)
            .with_queue_scaling(true);
        Processor::with_workload(cfg, &workload).run(RUN)
    };
    // Multithreading raises throughput for both machines.
    let dec_1t = run(1, true, 16);
    let dec_4t = run(4, true, 16);
    assert!(dec_4t.ipc() > 1.5 * dec_1t.ipc());

    // Decoupling flattens the latency curve: relative loss from 16 to 128
    // cycles is much smaller with the instruction queues enabled.
    let dec_4t_slow = run(4, true, 128);
    let non_4t = run(4, false, 16);
    let non_4t_slow = run(4, false, 128);
    let dec_loss = dec_4t_slow.ipc_loss_pct_vs(&dec_4t);
    let non_loss = non_4t_slow.ipc_loss_pct_vs(&non_4t);
    assert!(
        dec_loss < non_loss,
        "decoupled loss {dec_loss:.1}% must be below non-decoupled loss {non_loss:.1}%"
    );
}

#[test]
fn more_threads_increase_cache_pressure_and_bus_traffic() {
    let run = |threads: usize| {
        let cfg = SimConfig::paper_multithreaded(threads).with_l2_latency(64);
        Processor::with_spec_workload(cfg, 17).run(RUN)
    };
    let few = run(1);
    let many = run(6);
    assert!(many.bus_utilization > few.bus_utilization);
    assert!(many.mem.bus_bytes > few.mem.bus_bytes);
}
