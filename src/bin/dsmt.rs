//! `dsmt` — the unified command-line front end for the sweep subsystem.
//!
//! Makes the sharded-sweep workflow scriptable across hosts that share only
//! a filesystem:
//!
//! ```text
//! dsmt asm build <file.s>... [--out-dir DIR]
//! dsmt asm inspect <file.s|file.dsmtasm> [--expand N] [--seed S]
//! dsmt shard plan <grid> --shards N [--strategy S] [--out plan.json]
//! dsmt shard run <plan.json> --index I | --missing [--steal-after SECS]
//!                [--store DIR | --out-dir DIR] [--workers W]
//! dsmt shard status <plan.json> [--store DIR | --dir DIR] [--watch SECS]
//! dsmt shard merge <plan.json> [--store DIR | --dir DIR] [--wait SECS]
//!                  [--out r.json] [--csv r.csv] [--dsr r.dsr]
//! dsmt sweep run <grid> [--workers W] [--progress] [--out r.json] [--csv r.csv] [--dsr r.dsr]
//! dsmt sweep ls
//! dsmt sweep gc [--max-bytes N]
//! dsmt sweep compact
//! dsmt sweep migrate [--dir DIR]
//! dsmt store stat <dir>
//! dsmt store synth <dir> --records N [--per-segment M] [--schema S]
//! dsmt report <file.dsr|report.json> [--json out.json] [--csv out.csv] [--canonical]
//! dsmt obs report [snapshot.json|report.json] [--json out.json] [--csv out.csv]
//! dsmt serve --store DIR [--addr HOST:PORT] [--workers W] [--drain-timeout SECS]
//! dsmt client submit <grid> [--shards N] [--strategy S] [--addr HOST:PORT]
//! dsmt client status <hash> [--watch SECS] [--addr HOST:PORT]
//! dsmt client fetch <hash> --out merged.dsr [--addr HOST:PORT]
//! dsmt client cell <key> | metrics [--addr HOST:PORT]
//! ```
//!
//! `dsmt asm build` assembles `.s` sources into checksummed `DSMTASM1`
//! artifacts; `dsmt asm inspect` summarises a source or artifact and, with
//! `--expand N`, renders the first N interpreted instructions as canonical
//! trace text.
//!
//! `<grid>` is either a path to a `SweepGrid` JSON file or a built-in name:
//! `demo`, `fetch-policy`, `fetch-policy-hetero`, `seed-variance`, the
//! figure grids (`fig1`, `fig3`, `fig4`, `fig5-l2-16`, `fig5-l2-64`) and
//! the ablations (`ablation-iq-depth`, `ablation-mshr`,
//! `ablation-unit-split`, `ablation-l1-assoc`). Built-in figure grids
//! honour `DSMT_INSTS`; caching honours `DSMT_SWEEP_CACHE` and
//! `DSMT_SWEEP_CACHE_MAX_BYTES` like every other binary.
//!
//! `--store DIR` selects the **store transport**: shard outputs are
//! published into (and merged back out of) a `dsmt-store` directory,
//! keyed by grid content hash + shard index, instead of living as loose
//! `.dsr` files. Point it at the same directory as `DSMT_SWEEP_CACHE` and
//! one shared directory carries the fleet's scenario cache *and* its
//! shard outputs. `shard status` reports each shard as done /
//! claimed-by-whom / missing (`--watch` polls until complete).
//!
//! `shard run --missing` is the fleet-healing path: it claims every shard
//! that has no verified output yet (O_EXCL lockfiles) and executes the
//! claimed ones, so any number of recovery workers can race safely. With
//! `--steal-after SECS`, a claim whose lockfile is older than the
//! deadline is presumed dead (its worker was killed without unwinding)
//! and is stolen — exactly one racing stealer wins — so fleets recover
//! from SIGKILLed hosts without an operator removing lockfiles by hand.
//! `sweep migrate` converts a v2 cache directory (one JSON file per
//! scenario) into the v3 `dsmt-store` segment layout.
//!
//! Every command honours `DSMT_LOG` (structured tracing: `pretty`,
//! `jsonl:FILE`, `off`) and `DSMT_METRICS` (dump the metrics registry to a
//! JSON file on exit); `dsmt obs report` pretty-prints such a dump — or the
//! live registry, or the `metrics` snapshot embedded in a report JSON — as
//! JSON or CSV.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use dsmt_core::SimConfig;
use dsmt_experiments::{
    ablations, fetch_policy, fetch_policy_hetero, fig1, fig3, fig4, fig5, seed_variance,
    ExperimentParams,
};
use dsmt_shard::{
    merge_from, plan, recover, run_shard, shard_file_name, DsrFile, RecoverOptions, ShardManifest,
    ShardState, ShardStrategy, Transport, DEFAULT_HEARTBEAT,
};
use dsmt_store::{IndexMode, Store};
use dsmt_sweep::{
    export, migrate_v2, Axis, CacheMode, ResultCache, SweepEngine, SweepGrid, SweepReport,
    WorkloadSpec,
};

const USAGE: &str = "\
dsmt — sharded sweeps, result-store tooling and report export

USAGE:
  dsmt asm build <file.s>... [--out-dir DIR]
  dsmt asm inspect <file.s|file.dsmtasm> [--expand N] [--seed S]
  dsmt shard plan <grid> --shards N [--strategy contiguous|strided|hashed] [--out plan.json]
  dsmt shard run <plan.json> --index I | --missing [--steal-after SECS]
                 [--store DIR | --out-dir DIR] [--workers W]
  dsmt shard status <plan.json> [--store DIR | --dir DIR] [--watch SECS] [--json]
  dsmt shard merge <plan.json> [--store DIR | --dir DIR] [--wait SECS] [--out report.json] [--csv report.csv] [--dsr merged.dsr]
  dsmt sweep run <grid> [--workers W] [--progress] [--out report.json] [--csv report.csv] [--dsr report.dsr]
  dsmt sweep ls
  dsmt sweep gc [--max-bytes N]
  dsmt sweep compact
  dsmt sweep migrate [--dir DIR]
  dsmt store stat <dir>
  dsmt store synth <dir> --records N [--per-segment M] [--schema S]
  dsmt report <file.dsr|report.json> [--json out.json] [--csv out.csv] [--canonical]
  dsmt obs report [snapshot.json|report.json] [--json out.json] [--csv out.csv]
  dsmt serve --store DIR [--addr HOST:PORT] [--workers W] [--drain-timeout SECS]
  dsmt client submit <grid> [--shards N] [--strategy contiguous|strided|hashed] [--addr HOST:PORT]
  dsmt client status <hash> [--watch SECS] [--addr HOST:PORT]
  dsmt client fetch <hash> --out merged.dsr [--addr HOST:PORT]
  dsmt client cell <key> [--addr HOST:PORT]
  dsmt client metrics [--addr HOST:PORT]

TRANSPORTS:
  --store DIR   publish/read shard outputs in a dsmt-store directory (keyed
                by grid hash + shard index; share it with DSMT_SWEEP_CACHE
                for the one-directory fleet protocol)
  --out-dir/--dir DIR
                loose .dsr files named <grid>.shard-<i>-of-<n>.dsr (default .)

GRIDS:
  a path to a SweepGrid JSON file, or a built-in name:
  demo, fetch-policy, fetch-policy-hetero, seed-variance, fig1, fig3,
  fig4, fig5-l2-16, fig5-l2-64, ablation-iq-depth, ablation-mshr,
  ablation-unit-split, ablation-l1-assoc

ENVIRONMENT:
  DSMT_INSTS                  instructions per cell for built-in figure grids
  DSMT_SWEEP_CACHE            result store dir, or `off`
  DSMT_SWEEP_CACHE_MAX_BYTES  LRU size cap applied after sweeps and by `sweep gc`
  DSMT_STORE_EAGER            1|true|yes: decode every record at store open
                              instead of indexing segment headers lazily
  DSMT_LOG                    structured tracing: off | pretty | jsonl[:FILE]
                              (unset = warnings only, pretty, on stderr)
  DSMT_METRICS                write the metrics registry to this JSON file on exit
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("dsmt: {e}");
        std::process::exit(2);
    }
    dsmt_obs::dump_to_env_path();
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("asm") => asm_cmd(&args[1..]),
        Some("shard") => shard_cmd(&args[1..]),
        Some("sweep") => sweep_cmd(&args[1..]),
        Some("store") => store_cmd(&args[1..]),
        Some("report") => report_cmd(&args[1..]),
        Some("obs") => obs_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        None | Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

// ---------------------------------------------------------------------------
// Argument parsing (all flags take a value; positionals carry the rest).

struct Parsed {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Parsed {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn usize_flag(&self, name: &str) -> Result<Option<usize>, String> {
        self.flag(name)
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("--{name} expects a number, got `{v}`"))
            })
            .transpose()
    }
}

/// Flags that take no value in every command.
const BOOL_FLAGS: [&str; 3] = ["canonical", "missing", "progress"];

fn parse(args: &[String], allowed: &[&str]) -> Result<Parsed, String> {
    parse_with(args, allowed, &[])
}

/// Like [`parse`], but `extra_bools` names flags that are valueless *in
/// this command only* (`--json` is a bool for `shard status` but takes a
/// file path for `report`).
fn parse_with(args: &[String], allowed: &[&str], extra_bools: &[&str]) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        positional: Vec::new(),
        flags: HashMap::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if !allowed.contains(&name) {
                return Err(format!("unknown flag `--{name}`"));
            }
            if BOOL_FLAGS.contains(&name) || extra_bools.contains(&name) {
                parsed.flags.insert(name.to_string(), "1".to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} expects a value"))?;
            parsed.flags.insert(name.to_string(), value.clone());
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    Ok(parsed)
}

fn engine(workers: Option<usize>) -> SweepEngine {
    match workers {
        Some(w) => SweepEngine::new(w),
        None => SweepEngine::from_env(),
    }
}

// ---------------------------------------------------------------------------
// Grid resolution.

fn builtin_grids() -> Vec<SweepGrid> {
    let params = ExperimentParams::from_env();
    let mut grids = vec![
        demo_grid(),
        fetch_policy::grid(&params),
        fetch_policy_hetero::grid(&params),
        seed_variance::grid(&params),
    ];
    grids.push(fig1::grid(&params));
    grids.push(fig3::grid(&params));
    grids.push(fig4::grid(&params));
    grids.extend(fig5::grids(&params));
    grids.extend(ablations::grids(&params));
    grids
}

/// A 12-cell grid shaped like the `bench_sweep` benchmark: small enough for
/// smoke tests, rich enough (three axes) to exercise sharding.
fn demo_grid() -> SweepGrid {
    SweepGrid::new(
        "demo",
        SimConfig::paper_multithreaded(1).with_queue_scaling(true),
    )
    .with_workload(WorkloadSpec::spec_mix(3_000))
    .with_axis(Axis::threads(&[1, 2]))
    .with_axis(Axis::decoupled(&[true, false]))
    .with_axis(Axis::l2_latencies(&[16, 64, 256]))
    .with_budget(10_000)
}

fn resolve_grid(spec: &str) -> Result<SweepGrid, String> {
    if Path::new(spec).is_file() {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        return serde::from_str(&text).map_err(|e| format!("{spec}: not a SweepGrid JSON: {e}"));
    }
    let grids = builtin_grids();
    if let Some(grid) = grids.iter().find(|g| g.name == spec) {
        return Ok(grid.clone());
    }
    let names: Vec<&str> = grids.iter().map(|g| g.name.as_str()).collect();
    Err(format!(
        "`{spec}` is neither a grid JSON file nor a built-in grid (available: {})",
        names.join(", ")
    ))
}

// ---------------------------------------------------------------------------
// dsmt asm ...

fn asm_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => asm_build(&args[1..]),
        Some("inspect") => asm_inspect(&args[1..]),
        _ => Err(format!("usage: dsmt asm build|inspect ...\n\n{USAGE}")),
    }
}

/// Loads a program from either a `.s` source (assembled on the spot, name
/// = file stem) or a `.dsmtasm` artifact (decoded and checksum-verified).
fn load_program(path: &str) -> Result<dsmt_trace::Program, String> {
    if path.ends_with(".dsmtasm") {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        return dsmt_asm::decode_program(&bytes).map_err(|e| format!("{path}: {e}"));
    }
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program");
    dsmt_asm::assemble(name, &source).map_err(|e| format!("{path}: {e}"))
}

fn asm_build(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["out-dir"])?;
    if p.positional.is_empty() {
        return Err("usage: dsmt asm build <file.s>... [--out-dir DIR]".into());
    }
    let out_dir = p.flag("out-dir").map(PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    for path in &p.positional {
        let program = load_program(path)?;
        let bytes = dsmt_asm::encode_program(&program);
        let out = out_dir
            .as_deref()
            .unwrap_or_else(|| Path::new(path).parent().unwrap_or(Path::new(".")))
            .join(format!("{}.dsmtasm", program.name));
        std::fs::write(&out, &bytes).map_err(|e| format!("{}: {e}", out.display()))?;
        println!(
            "{path}: `{}` {} instructions, {} data cells -> {} ({} bytes, fnv {:#018x})",
            program.name,
            program.code.len(),
            program.data.len(),
            out.display(),
            bytes.len(),
            dsmt_isa::fnv1a64(&bytes),
        );
    }
    Ok(())
}

fn asm_inspect(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["expand", "seed"])?;
    let [path] = p.positional.as_slice() else {
        return Err("usage: dsmt asm inspect <file.s|file.dsmtasm> [--expand N] [--seed S]".into());
    };
    let program = load_program(path)?;
    println!(
        "program `{}`: {} instructions, {} data cells",
        program.name,
        program.code.len(),
        program.data.len(),
    );
    let artifact = dsmt_asm::encode_program(&program);
    println!(
        "artifact: {} bytes, fnv {:#018x}",
        artifact.len(),
        dsmt_isa::fnv1a64(&artifact),
    );
    if let Some(limit) = p.usize_flag("expand")? {
        let seed = p.usize_flag("seed")?.unwrap_or(0) as u64;
        let insts = program.expand(seed, limit as u64);
        // Canonical trace text — `dsmt_asm::parse_trace` reads it back.
        print!("{}", dsmt_isa::text::render_trace(&insts));
        let classes = dsmt_isa::OpClass::ALL
            .iter()
            .map(|&c| (c.mnemonic(), insts.iter().filter(|i| i.op == c).count()))
            .filter(|&(_, n)| n > 0)
            .map(|(m, n)| format!("{m} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!("expanded {} (seed {seed}): {classes}", insts.len());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// dsmt shard ...

fn shard_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("plan") => shard_plan(&args[1..]),
        Some("run") => shard_run(&args[1..]),
        Some("status") => shard_status(&args[1..]),
        Some("merge") => shard_merge(&args[1..]),
        _ => Err(format!(
            "usage: dsmt shard plan|run|status|merge ...\n\n{USAGE}"
        )),
    }
}

/// Resolves the shard transport from `--store DIR` (store transport) or a
/// plain directory flag (`--out-dir`/`--dir`, loose `.dsr` files,
/// defaulting to the current directory).
fn transport_from(p: &Parsed, dir_flag: &str) -> Result<Transport, String> {
    match (p.flag("store"), p.flag(dir_flag)) {
        (Some(_), Some(_)) => Err(format!("pass at most one of --store and --{dir_flag}")),
        (Some(store), None) => Transport::store(store),
        (None, dir) => Ok(Transport::loose(dir.unwrap_or("."))),
    }
}

fn shard_plan(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["shards", "strategy", "out"])?;
    let [grid_spec] = p.positional.as_slice() else {
        return Err("usage: dsmt shard plan <grid> --shards N [--strategy S] [--out FILE]".into());
    };
    let grid = resolve_grid(grid_spec)?;
    let shards = p
        .usize_flag("shards")?
        .ok_or("--shards is required for `shard plan`")?;
    let strategy = match p.flag("strategy") {
        None => ShardStrategy::Contiguous,
        Some(name) => ShardStrategy::from_name(name)
            .ok_or_else(|| format!("unknown strategy `{name}` (contiguous|strided|hashed)"))?,
    };
    let manifest = plan(&grid, shards, strategy).map_err(|e| e.to_string())?;
    let out = p
        .flag("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{}.plan.json", grid.name)));
    manifest
        .save(&out)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "planned `{}`: {} cells -> {} shards ({}), grid hash {}",
        grid.name,
        grid.len(),
        manifest.num_shards(),
        strategy.name(),
        manifest.grid_hash,
    );
    for (i, cells) in manifest.shards.iter().enumerate() {
        println!(
            "  shard {i}: {:>4} cells -> {}",
            cells.len(),
            shard_file_name(&manifest, i)
        );
    }
    println!("manifest: {}", out.display());
    Ok(())
}

fn shard_run(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "index",
            "missing",
            "out-dir",
            "workers",
            "store",
            "steal-after",
        ],
    )?;
    let usage = "usage: dsmt shard run <plan.json> --index I | --missing [--steal-after SECS] \
                 [--store DIR | --out-dir DIR] [--workers W]";
    let [plan_path] = p.positional.as_slice() else {
        return Err(usage.into());
    };
    let manifest = ShardManifest::load(plan_path).map_err(|e| e.to_string())?;
    let mut transport = transport_from(&p, "out-dir")?;
    let engine = engine(p.usize_flag("workers")?);
    let index = p.usize_flag("index")?;
    let missing = p.flag("missing").is_some();
    let steal_after = p
        .usize_flag("steal-after")?
        .map(|secs| std::time::Duration::from_secs(secs as u64));
    match (index, missing) {
        (Some(_), true) | (None, false) => {
            Err(format!("pass exactly one of --index or --missing\n{usage}"))
        }
        (Some(_), false) if steal_after.is_some() => {
            Err(format!("--steal-after only applies to --missing\n{usage}"))
        }
        (Some(index), false) => {
            let run = run_shard(&manifest, index, &engine).map_err(|e| e.to_string())?;
            transport.publish(&manifest, &run.dsr)?;
            println!(
                "shard {index}/{}: {} cells ({} cached, {} simulated) in {:.2}s -> {}",
                manifest.num_shards(),
                run.report.records.len(),
                run.report.cache_hits,
                run.report.cache_misses,
                run.report.wall_secs,
                transport.describe(),
            );
            Ok(())
        }
        (None, true) => {
            let outcome = recover(
                &manifest,
                &mut transport,
                &engine,
                &RecoverOptions {
                    steal_after,
                    heartbeat: Some(DEFAULT_HEARTBEAT),
                },
            )
            .map_err(|e| e.to_string())?;
            let list = |ix: &[usize]| {
                ix.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!(
                "recovery pass over {} shards ({}): executed [{}], already done [{}], \
                 claimed elsewhere [{}]",
                manifest.num_shards(),
                transport.describe(),
                list(&outcome.executed()),
                list(&outcome.already_done()),
                list(&outcome.claimed_elsewhere()),
            );
            for steal in &outcome.steals {
                println!(
                    "stole stale claim on shard {} (was: {})",
                    steal.shard_index, steal.previous
                );
            }
            if outcome.complete() {
                println!("every shard now has a verified output; ready to merge");
            } else {
                println!("some shards are claimed by other workers; re-run to check on them");
            }
            Ok(())
        }
    }
}

fn shard_status(args: &[String]) -> Result<(), String> {
    let p = parse_with(args, &["store", "dir", "watch", "json"], &["json"])?;
    let [plan_path] = p.positional.as_slice() else {
        return Err(
            "usage: dsmt shard status <plan.json> [--store DIR | --dir DIR] \
                    [--watch SECS] [--json]"
                .into(),
        );
    };
    let manifest = ShardManifest::load(plan_path).map_err(|e| e.to_string())?;
    let mut transport = transport_from(&p, "dir")?;
    let watch = p.usize_flag("watch")?;
    let json = p.flag("json").is_some();
    loop {
        let report = transport.status(&manifest);
        if json {
            // The same serializer the daemon's status endpoint uses, so
            // scripts parse one shape whether they poll a directory or a
            // URL.
            println!("{}", serde::to_string_pretty(&report.to_value(&manifest)));
            let Some(secs) = watch else { break };
            if report.complete() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_secs(secs.max(1) as u64));
            continue;
        }
        println!(
            "plan `{}` (grid hash {}, {} shards) via {}:",
            manifest.grid.name,
            manifest.grid_hash,
            manifest.num_shards(),
            transport.describe(),
        );
        for shard in &report.shards {
            let cells = manifest.shards[shard.index].len();
            match &shard.state {
                ShardState::Done { records } => {
                    println!("  shard {}: done ({records} records)", shard.index);
                }
                ShardState::Claimed(info) => {
                    println!(
                        "  shard {}: claimed by {} ({cells} cells)",
                        shard.index,
                        info.describe(),
                    );
                }
                ShardState::Missing => {
                    println!("  shard {}: missing ({cells} cells)", shard.index);
                }
            }
        }
        println!(
            "{} done, {} claimed, {} missing{}",
            report.done(),
            report.claimed(),
            report.missing(),
            if report.complete() {
                " — complete, ready to merge"
            } else {
                ""
            },
        );
        let Some(secs) = watch else { break };
        if report.complete() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_secs(secs.max(1) as u64));
    }
    Ok(())
}

fn shard_merge(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["store", "dir", "wait", "out", "csv", "dsr"])?;
    let [plan_path] = p.positional.as_slice() else {
        return Err(
            "usage: dsmt shard merge <plan.json> [--store DIR | --dir DIR] [--wait SECS] \
             [--out FILE] [--csv FILE] [--dsr FILE]"
                .into(),
        );
    };
    let manifest = ShardManifest::load(plan_path).map_err(|e| e.to_string())?;
    let mut transport = transport_from(&p, "dir")?;
    // --wait: the `status --watch` polling loop, inlined — block until
    // every shard has a verified output, then merge in the same process.
    if let Some(secs) = p.usize_flag("wait")? {
        loop {
            let status = transport.status(&manifest);
            if status.complete() {
                break;
            }
            println!(
                "waiting for `{}`: {} done, {} claimed, {} missing (poll every {}s)",
                manifest.grid.name,
                status.done(),
                status.claimed(),
                status.missing(),
                secs.max(1),
            );
            std::thread::sleep(std::time::Duration::from_secs(secs.max(1) as u64));
        }
    }
    let report = merge_from(&manifest, &mut transport).map_err(|e| e.to_string())?;
    println!(
        "merged {} shards ({}) -> {} cells of `{}`",
        manifest.num_shards(),
        transport.describe(),
        report.records.len(),
        report.grid,
    );
    write_outputs(&report, Some(&manifest.grid), &p)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// dsmt sweep ...

fn sweep_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => sweep_run(&args[1..]),
        Some("ls") => sweep_ls(),
        Some("gc") => sweep_gc(&args[1..]),
        Some("compact") => sweep_compact(),
        Some("migrate") => sweep_migrate(&args[1..]),
        _ => Err(format!(
            "usage: dsmt sweep run|ls|gc|compact|migrate ...\n\n{USAGE}"
        )),
    }
}

fn sweep_run(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["workers", "progress", "out", "csv", "dsr"])?;
    let [grid_spec] = p.positional.as_slice() else {
        return Err(
            "usage: dsmt sweep run <grid> [--workers W] [--progress] [--out FILE] [--csv FILE] \
             [--dsr FILE]"
                .into(),
        );
    };
    let grid = resolve_grid(grid_spec)?;
    let mut engine = engine(p.usize_flag("workers")?);
    if p.flag("progress").is_some() {
        engine = engine.with_progress();
    }
    let report = engine.run(&grid);
    println!(
        "`{}`: {} cells ({} cached, {} simulated) in {:.2}s",
        report.grid,
        report.records.len(),
        report.cache_hits,
        report.cache_misses,
        report.wall_secs,
    );
    write_outputs(&report, Some(&grid), &p)?;
    Ok(())
}

fn open_env_cache() -> Result<ResultCache, String> {
    match CacheMode::from_env() {
        CacheMode::Disabled => Err("the sweep cache is disabled (DSMT_SWEEP_CACHE=off)".into()),
        CacheMode::Dir(dir) => {
            ResultCache::open(&dir).map_err(|e| format!("{}: {e}", dir.display()))
        }
    }
}

fn sweep_ls() -> Result<(), String> {
    let cache = open_env_cache()?;
    let segments = cache.segments();
    let total: u64 = segments.iter().map(|e| e.bytes).sum();
    println!(
        "store: {} ({} segments, {} records, {} bytes)",
        cache.dir().display(),
        segments.len(),
        cache.record_count(),
        total
    );
    let now = std::time::SystemTime::now();
    for e in &segments {
        let age = now
            .duration_since(e.modified)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        println!(
            "  {}  v{} seq {:>4}  {:>8} bytes  {:>6} records  {}  last used {:>6}s ago",
            e.name,
            e.version,
            e.seq,
            e.bytes,
            e.records,
            segment_mode(e),
            age
        );
    }
    if let Some(cap) = CacheMode::max_bytes_from_env() {
        let status = if total > cap { "OVER" } else { "within" };
        println!("cap: DSMT_SWEEP_CACHE_MAX_BYTES={cap} ({status} cap)");
    }
    Ok(())
}

fn sweep_compact() -> Result<(), String> {
    let cache = open_env_cache()?;
    let outcome = cache.compact()?;
    println!(
        "compacted {}: {} segments ({} bytes) -> 1 segment ({} bytes), {} records",
        cache.dir().display(),
        outcome.segments_before,
        outcome.bytes_before,
        outcome.bytes_after,
        outcome.records,
    );
    Ok(())
}

fn sweep_migrate(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["dir"])?;
    let dir = match p.flag("dir") {
        Some(d) => PathBuf::from(d),
        None => match CacheMode::from_env() {
            CacheMode::Disabled => {
                return Err("the sweep cache is disabled (DSMT_SWEEP_CACHE=off); \
                            pass --dir to migrate an explicit directory"
                    .into())
            }
            CacheMode::Dir(dir) => dir,
        },
    };
    let outcome = migrate_v2(&dir)?;
    println!(
        "migrated {}: {} entries re-encoded ({} skipped), {} bytes (v2 JSON) -> {} bytes \
         (v3 store, {:.1}x smaller)",
        dir.display(),
        outcome.migrated,
        outcome.skipped,
        outcome.bytes_before,
        outcome.bytes_after,
        outcome.bytes_before as f64 / outcome.bytes_after.max(1) as f64,
    );
    Ok(())
}

fn sweep_gc(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["max-bytes"])?;
    let cap = match p.flag("max-bytes") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("--max-bytes expects a number, got `{v}`"))?,
        None => CacheMode::max_bytes_from_env()
            .ok_or("no cap given: pass --max-bytes or set DSMT_SWEEP_CACHE_MAX_BYTES")?,
    };
    let cache = open_env_cache()?;
    let outcome = cache.gc(cap);
    println!(
        "gc {}: examined {}, evicted {} ({} bytes), kept {} ({} bytes, cap {})",
        cache.dir().display(),
        outcome.examined,
        outcome.evicted,
        outcome.evicted_bytes,
        outcome.kept,
        outcome.kept_bytes,
        cap,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// dsmt store ...

fn store_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stat") => store_stat(&args[1..]),
        Some("synth") => store_synth(&args[1..]),
        _ => Err(format!("usage: dsmt store stat|synth ...\n\n{USAGE}")),
    }
}

/// `legacy` marks a pre-header segment that still rides the
/// decode-everything path even in indexed mode.
fn segment_mode(e: &dsmt_store::SegmentInfo) -> &'static str {
    match (e.lazy, e.version) {
        (true, _) => "indexed",
        (false, dsmt_store::LEGACY_SEGMENT_FORMAT_VERSION) => "legacy ",
        (false, _) => "eager  ",
    }
}

/// Opens the store (honouring `DSMT_STORE_EAGER`), then prints the open
/// cost, the header-index counters and a per-segment listing. The
/// `open_us:` / `header_index_hits:` / `records_lazy_decoded:` lines are
/// stable, machine-parseable output — CI's store-scale gate greps them.
fn store_stat(args: &[String]) -> Result<(), String> {
    let p = parse(args, &[])?;
    let [dir] = p.positional.as_slice() else {
        return Err("usage: dsmt store stat <dir>".into());
    };
    let dir = PathBuf::from(dir);
    let schema = Store::marker_schema(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .ok_or_else(|| format!("{}: not a store (no STORE.json marker)", dir.display()))?;
    let mode = IndexMode::from_env();
    let started = std::time::Instant::now();
    let store =
        Store::open_with(&dir, schema, mode).map_err(|e| format!("{}: {e}", dir.display()))?;
    let open_us = started.elapsed().as_micros();
    let segments = store.segment_infos();
    println!(
        "store: {} (schema {}, {} segments, {} records, {} bytes)",
        dir.display(),
        schema,
        segments.len(),
        store.record_count(),
        store.total_bytes(),
    );
    let mode_name = match mode {
        IndexMode::Indexed => "indexed",
        IndexMode::Eager => "eager",
    };
    println!("open_us: {open_us} (mode: {mode_name})");
    let registry = dsmt_obs::registry();
    println!(
        "header_index_hits: {}",
        registry.counter("store.header_index_hits").get()
    );
    println!(
        "records_lazy_decoded: {}",
        registry.counter("store.records_lazy_decoded").get()
    );
    let now = std::time::SystemTime::now();
    for e in &segments {
        let age = now
            .duration_since(e.modified)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        println!(
            "  {}  v{} seq {:>4}  {:>8} bytes  {:>6} records  {}  modified {:>6}s ago",
            e.name,
            e.version,
            e.seq,
            e.bytes,
            e.records,
            segment_mode(e),
            age
        );
    }
    Ok(())
}

/// Generates a synthetic store for scale testing: `--records N` records
/// shaped like sweep cells (a handful of numeric stats plus a small
/// string-coded enum, so record bodies dominate the segment and the
/// header directory stays compact), published `--per-segment M` at a
/// time. CI's store-scale gate uses this to compare indexed vs eager
/// open cost at 10^5 records without running 10^5 simulations.
fn store_synth(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["records", "per-segment", "schema"])?;
    let [dir] = p.positional.as_slice() else {
        return Err(
            "usage: dsmt store synth <dir> --records N [--per-segment M] [--schema S]".into(),
        );
    };
    let records = p
        .usize_flag("records")?
        .ok_or("--records is required (how many records to generate)")?;
    let per_segment = p.usize_flag("per-segment")?.unwrap_or(4096).max(1);
    let schema = match p.flag("schema") {
        Some(v) => v
            .parse::<u32>()
            .map_err(|_| format!("--schema expects a number, got `{v}`"))?,
        None => 1,
    };
    let mut store =
        Store::open_with(dir, schema, IndexMode::Indexed).map_err(|e| format!("{dir}: {e}"))?;
    let mut batch = Vec::with_capacity(per_segment.min(records));
    let mut segments = 0usize;
    for n in 0..records as u64 {
        batch.push((synth_key(n), synth_value(n)));
        if batch.len() == per_segment {
            store
                .publish(std::mem::take(&mut batch))
                .map_err(|e| e.to_string())?;
            segments += 1;
        }
    }
    if !batch.is_empty() {
        store.publish(batch).map_err(|e| e.to_string())?;
        segments += 1;
    }
    println!(
        "synthesized {}: {} records in {} segments ({} bytes)",
        store.dir().display(),
        store.record_count(),
        segments,
        store.total_bytes(),
    );
    Ok(())
}

/// A well-mixed synthetic key (splitmix64 finalizer) so the index
/// exercises realistic hash distribution rather than sequential keys.
fn synth_key(n: u64) -> u64 {
    let mut x = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A record shaped like a cached sweep cell: mostly numeric stats under
/// shared field names (interned once per segment), so eager open pays a
/// realistic per-record decode cost while the header stays small.
fn synth_value(n: u64) -> serde::Value {
    use serde::Value;
    const MIXES: [&str; 4] = ["int", "fp", "mem", "branchy"];
    let h = synth_key(n);
    Value::Object(vec![
        ("kind".to_string(), Value::Str("synth-cell".to_string())),
        (
            "mix".to_string(),
            Value::Str(MIXES[(n % 4) as usize].to_string()),
        ),
        ("seed".to_string(), Value::U64(n)),
        (
            "ipc".to_string(),
            Value::F64(0.5 + (h % 2048) as f64 / 1024.0),
        ),
        ("cycles".to_string(), Value::U64(h % 100_000_000)),
        ("insts".to_string(), Value::U64(h % 10_000_000)),
        (
            "stats".to_string(),
            Value::Object(vec![
                ("l1_hits".to_string(), Value::U64(h % 1_000_000)),
                ("l2_hits".to_string(), Value::U64(h % 65_536)),
                ("mshr_stalls".to_string(), Value::U64(h % 4_096)),
                ("bus_busy".to_string(), Value::F64((h % 97) as f64 / 97.0)),
                ("fetch_mask".to_string(), Value::U64(h & 0xff)),
            ]),
        ),
        (
            "latency_hist".to_string(),
            Value::Array((0..8).map(|i| Value::U64((h >> (i * 8)) & 0xff)).collect()),
        ),
        (
            "unit_busy".to_string(),
            Value::Array(
                (0..6)
                    .map(|i| Value::F64(((h >> i) % 101) as f64 / 101.0))
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// dsmt report ...

fn report_cmd(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["json", "csv", "canonical"])?;
    let [path] = p.positional.as_slice() else {
        return Err(
            "usage: dsmt report <file.dsr|report.json> [--json FILE] [--csv FILE] [--canonical]"
                .into(),
        );
    };
    let (report, grid) = load_report(path)?;
    if p.flag("canonical").is_some() {
        // Records only — the machine-independent identity of the sweep —
        // for byte-exact diffing between sharded and monolithic runs.
        println!("{}", serde::to_string_pretty(&report.records));
    } else {
        print_report_summary(&report);
    }
    write_outputs(&report, grid.as_ref(), &p)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// dsmt obs ...

fn obs_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("report") => obs_report(&args[1..]),
        _ => Err(format!("usage: dsmt obs report ...\n\n{USAGE}")),
    }
}

fn obs_report(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["json", "csv"])?;
    let snap = match p.positional.as_slice() {
        [] => dsmt_obs::registry().snapshot(),
        [path] => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            snapshot_from_json(&text).map_err(|e| format!("{path}: {e}"))?
        }
        _ => {
            return Err(
                "usage: dsmt obs report [snapshot.json|report.json] [--json FILE] [--csv FILE]"
                    .into(),
            )
        }
    };
    if let Some(out) = p.flag("json") {
        std::fs::write(out, snap.to_json()).map_err(|e| format!("{out}: {e}"))?;
        println!("json: {out}");
    }
    if let Some(out) = p.flag("csv") {
        std::fs::write(out, snap.to_csv()).map_err(|e| format!("{out}: {e}"))?;
        println!("csv: {out}");
    }
    if p.flag("json").is_none() && p.flag("csv").is_none() {
        print!("{}", snap.to_csv());
    }
    Ok(())
}

/// Reads a metrics snapshot out of any of the JSON shapes the toolchain
/// emits: a `DSMT_METRICS` registry dump, a report JSON carrying an
/// embedded `metrics` snapshot, or that snapshot value on its own.
fn snapshot_from_json(text: &str) -> Result<dsmt_obs::Snapshot, String> {
    let value: serde::Value = serde::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    if let Ok(metrics) = value.field("metrics") {
        return dsmt_sweep::telemetry::snapshot_from_value(metrics)
            .map_err(|e| format!("bad `metrics` snapshot: {e}"));
    }
    // The embedded-snapshot shape keys counters as [name, value] pairs;
    // the registry dump keys them as a JSON object. Try pairs first.
    if let Ok(snap) = dsmt_sweep::telemetry::snapshot_from_value(&value) {
        return Ok(snap);
    }
    snapshot_from_dump(&value)
}

fn snapshot_from_dump(v: &serde::Value) -> Result<dsmt_obs::Snapshot, String> {
    use serde::Deserialize;
    let section = |name: &str| -> Result<Vec<(String, serde::Value)>, String> {
        match v.field(name) {
            Ok(serde::Value::Object(entries)) => Ok(entries.clone()),
            Ok(other) => Err(format!("`{name}` should be a JSON object, got {other:?}")),
            Err(e) => Err(format!("not a metrics dump: {e}")),
        }
    };
    let mut snap = dsmt_obs::Snapshot::default();
    for (name, val) in section("counters")? {
        let n = u64::from_value(&val).map_err(|e| format!("counter `{name}`: {e}"))?;
        snap.counters.push((name, n));
    }
    for (name, val) in section("gauges")? {
        let n = i64::from_value(&val).map_err(|e| format!("gauge `{name}`: {e}"))?;
        snap.gauges.push((name, n));
    }
    for (name, val) in section("histograms")? {
        let field = |key: &str| {
            val.field(key)
                .map_err(|e| format!("histogram `{name}`: {e}"))
        };
        let hist = dsmt_obs::HistogramSnapshot {
            count: u64::from_value(field("count")?).map_err(|e| e.to_string())?,
            sum: u64::from_value(field("sum")?).map_err(|e| e.to_string())?,
            buckets: Vec::from_value(field("buckets")?).map_err(|e| e.to_string())?,
        };
        snap.histograms.push((name, hist));
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// dsmt serve / dsmt client ...

const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7421";

fn serve_cmd(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["store", "addr", "workers", "drain-timeout"])?;
    if !p.positional.is_empty() {
        return Err(
            "usage: dsmt serve --store DIR [--addr HOST:PORT] [--workers W] \
             [--drain-timeout SECS]"
                .into(),
        );
    }
    let store = p.flag("store").ok_or("--store is required for `serve`")?;
    let service = dsmt_serve::SweepService::open(
        store,
        Box::new(|name| builtin_grids().into_iter().find(|g| g.name == name)),
    )
    .map_err(|e| format!("{store}: {e}"))?;
    let mut config = dsmt_serve::ServerConfig {
        addr: p.flag("addr").unwrap_or(DEFAULT_SERVE_ADDR).to_string(),
        ..Default::default()
    };
    if let Some(workers) = p.usize_flag("workers")? {
        config.workers = workers.max(1);
    }
    if let Some(secs) = p.usize_flag("drain-timeout")? {
        config.drain_timeout = std::time::Duration::from_secs(secs as u64);
    }
    #[cfg(unix)]
    dsmt_serve::install_signal_handlers();
    let server = dsmt_serve::Server::bind(config, service).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts (and the sigterm test) read the bound address from this
    // line, so it must reach stdout before the accept loop starts.
    println!("dsmt-serve listening on {addr} (store: {store})");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = server.run().map_err(|e| e.to_string())?;
    println!(
        "dsmt-serve stopped: {} connections, {} requests, {} rejected{}",
        summary.connections,
        summary.requests,
        summary.rejected,
        if summary.forced_abort {
            " (forced abort: drain timeout expired)"
        } else {
            ""
        },
    );
    Ok(())
}

fn client_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("submit") => client_submit(&args[1..]),
        Some("status") => client_status(&args[1..]),
        Some("fetch") => client_fetch(&args[1..]),
        Some("cell") => client_cell(&args[1..]),
        Some("metrics") => client_metrics(&args[1..]),
        _ => Err(format!(
            "usage: dsmt client submit|status|fetch|cell|metrics ...\n\n{USAGE}"
        )),
    }
}

fn client_for(p: &Parsed) -> dsmt_serve::HttpClient {
    dsmt_serve::HttpClient::new(p.flag("addr").unwrap_or(DEFAULT_SERVE_ADDR))
}

fn client_submit(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["addr", "shards", "strategy"])?;
    let [grid_spec] = p.positional.as_slice() else {
        return Err(
            "usage: dsmt client submit <grid> [--shards N] [--strategy S] \
                    [--addr HOST:PORT]"
                .into(),
        );
    };
    // Resolve locally so file paths and built-in names both work; the
    // daemon re-validates (its own built-ins may differ).
    let grid = resolve_grid(grid_spec)?;
    let mut body = format!("{{\"grid\":{}", serde::to_string(&grid));
    if let Some(shards) = p.usize_flag("shards")? {
        body.push_str(&format!(",\"shards\":{shards}"));
    }
    if let Some(strategy) = p.flag("strategy") {
        body.push_str(&format!(",\"strategy\":{}", serde::to_string(strategy)));
    }
    body.push('}');
    let client = client_for(&p);
    let response = client.post_json("/grids", body)?;
    let value = dsmt_serve::json_body(&response)?;
    println!("{}", serde::to_string_pretty(&value));
    Ok(())
}

fn client_status(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["addr", "watch"])?;
    let [hash] = p.positional.as_slice() else {
        return Err("usage: dsmt client status <hash> [--watch SECS] [--addr HOST:PORT]".into());
    };
    let client = client_for(&p);
    let watch = p.usize_flag("watch")?;
    loop {
        let value = dsmt_serve::json_body(&client.get(&format!("/grids/{hash}/status"))?)?;
        println!("{}", serde::to_string_pretty(&value));
        let Some(secs) = watch else { break };
        let complete = matches!(value.field("complete"), Ok(serde::Value::Bool(true)));
        if complete {
            break;
        }
        std::thread::sleep(std::time::Duration::from_secs(secs.max(1) as u64));
    }
    Ok(())
}

fn client_fetch(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["addr", "out"])?;
    let [hash] = p.positional.as_slice() else {
        return Err("usage: dsmt client fetch <hash> --out merged.dsr [--addr HOST:PORT]".into());
    };
    let out = p
        .flag("out")
        .ok_or("--out is required for `client fetch`")?;
    let client = client_for(&p);
    let response = client.get(&format!("/grids/{hash}/record"))?;
    if response.status != 200 {
        // Surface the structured error (grid_incomplete, unknown_grid...).
        return Err(dsmt_serve::json_body(&response)
            .err()
            .unwrap_or_else(|| format!("status {}", response.status)));
    }
    std::fs::write(out, &response.body).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "fetched {} bytes -> {out} (etag {})",
        response.body.len(),
        response.header("etag").unwrap_or("none"),
    );
    Ok(())
}

fn client_cell(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["addr"])?;
    let [key] = p.positional.as_slice() else {
        return Err("usage: dsmt client cell <key> [--addr HOST:PORT]".into());
    };
    let client = client_for(&p);
    let value = dsmt_serve::json_body(&client.get(&format!("/cells/{key}"))?)?;
    println!("{}", serde::to_string_pretty(&value));
    Ok(())
}

fn client_metrics(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["addr"])?;
    let client = client_for(&p);
    let response = client.get("/metricsz")?;
    if response.status != 200 {
        return Err(dsmt_serve::json_body(&response)
            .err()
            .unwrap_or_else(|| format!("status {}", response.status)));
    }
    let text = String::from_utf8(response.body)
        .map_err(|_| "metrics snapshot is not utf-8".to_string())?;
    print!("{text}");
    if !text.ends_with('\n') {
        println!();
    }
    Ok(())
}

fn load_report(path: &str) -> Result<(SweepReport, Option<SweepGrid>), String> {
    if path.ends_with(".dsr") {
        let file = DsrFile::read(path).map_err(|e| e.to_string())?;
        let report = file.to_report().map_err(|e| e.to_string())?;
        return Ok((report, Some(file.grid)));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let report: SweepReport =
        serde::from_str(&text).map_err(|e| format!("{path}: not a SweepReport JSON: {e}"))?;
    Ok((report, None))
}

fn print_report_summary(report: &SweepReport) {
    println!("grid `{}`: {} cells", report.grid, report.records.len());
    let axes = report.axis_names();
    if !axes.is_empty() {
        println!("axes: {}", axes.join(", "));
    }
    if report.records.is_empty() {
        return;
    }
    let mut best = &report.records[0];
    let mut worst = &report.records[0];
    for r in &report.records {
        if r.results.ipc() > best.results.ipc() {
            best = r;
        }
        if r.results.ipc() < worst.results.ipc() {
            worst = r;
        }
    }
    let describe = |r: &dsmt_sweep::RunRecord| {
        let labels: Vec<String> = r.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("cell {} [{}]", r.cell, labels.join(", "))
    };
    println!(
        "ipc: {:.3} ({}) .. {:.3} ({})",
        worst.results.ipc(),
        describe(worst),
        best.results.ipc(),
        describe(best)
    );
}

/// Writes the report in whichever formats the flags asked for.
fn write_outputs(report: &SweepReport, grid: Option<&SweepGrid>, p: &Parsed) -> Result<(), String> {
    if let Some(out) = p.flag("out").or_else(|| p.flag("json")) {
        export::write_json(report, out).map_err(|e| format!("{out}: {e}"))?;
        println!("json: {out}");
    }
    if let Some(out) = p.flag("csv") {
        export::write_csv(report, out).map_err(|e| format!("{out}: {e}"))?;
        println!("csv: {out}");
    }
    if let Some(out) = p.flag("dsr") {
        let grid = grid.ok_or("--dsr needs the grid, which this input does not carry")?;
        DsrFile::from_report(grid, report, 0, 1)
            .write(out)
            .map_err(|e| e.to_string())?;
        println!("dsr: {out}");
    }
    Ok(())
}
