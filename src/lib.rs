//! # dsmt-repro
//!
//! Umbrella crate for the reproduction of *"The Synergy of Multithreading
//! and Access/Execute Decoupling"* (Parcerisa & González, HPCA 1999).
//!
//! It re-exports the workspace crates so that examples, integration tests
//! and downstream users can depend on a single crate:
//!
//! * [`isa`] — the Alpha-like instruction model;
//! * [`trace`] — synthetic SPEC FP95-like workloads and the trace file
//!   format;
//! * [`mem`] — the L1/L2/bus memory hierarchy model;
//! * [`uarch`] — branch prediction, renaming, queues, functional units;
//! * [`core`] — the cycle-accurate multithreaded decoupled processor;
//! * [`store`] — the shared result-persistence layer (value codec,
//!   checksummed content-addressed segments, lockfile claims);
//! * [`sweep`] — the parallel scenario-sweep engine (grids, deterministic
//!   seeding, store-backed result caching, JSON/CSV export);
//! * [`shard`] — deterministic sweep sharding (manifests, `.dsr` files,
//!   lockfile-claimed recovery, bit-exact merge);
//! * [`experiments`] — the harness that regenerates every figure of the
//!   paper on top of the sweep engine.
//!
//! # Example
//!
//! ```
//! use dsmt_repro::core::{Processor, SimConfig};
//!
//! let mut cpu = Processor::with_spec_workload(SimConfig::paper_multithreaded(2), 1);
//! let results = cpu.run(20_000);
//! assert!(results.ipc() > 0.5);
//! ```

#![warn(missing_docs)]

pub use dsmt_core as core;
pub use dsmt_experiments as experiments;
pub use dsmt_isa as isa;
pub use dsmt_mem as mem;
pub use dsmt_shard as shard;
pub use dsmt_store as store;
pub use dsmt_sweep as sweep;
pub use dsmt_trace as trace;
pub use dsmt_uarch as uarch;
