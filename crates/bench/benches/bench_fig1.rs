//! Benchmark: regenerating Figure 1 data points (single-threaded decoupled
//! latency hiding) for representative benchmarks and L2 latencies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmt_bench::{bench_params, BENCH_INSTRUCTIONS};
use dsmt_experiments::fig1::fig1_config;
use dsmt_experiments::runner::run_single_benchmark;
use dsmt_trace::spec_fp95_profile;
use std::time::Duration;

fn bench_fig1(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig1_single_thread_latency_hiding");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(criterion::Throughput::Elements(BENCH_INSTRUCTIONS));
    for bench in ["tomcatv", "fpppp", "hydro2d"] {
        for lat in [16u64, 256] {
            let profile = spec_fp95_profile(bench).expect("known benchmark");
            group.bench_with_input(BenchmarkId::new(bench, lat), &lat, |b, &lat| {
                b.iter(|| run_single_benchmark(fig1_config(lat), &profile, &params));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
