//! Benchmark: regenerating Figure 4 data points (latency tolerance of the
//! multithreaded decoupled machine vs the non-decoupled one).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmt_bench::{bench_params, BENCH_INSTRUCTIONS};
use dsmt_experiments::fig4::fig4_config;
use dsmt_experiments::runner::run_spec;
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig4_latency_tolerance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(criterion::Throughput::Elements(BENCH_INSTRUCTIONS));
    for (threads, decoupled, lat) in [
        (4usize, true, 256u64),
        (4, false, 256),
        (1, true, 64),
        (1, false, 64),
    ] {
        let label = format!(
            "{threads}T-{}-L2={lat}",
            if decoupled { "dec" } else { "nondec" }
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(threads, decoupled, lat),
            |b, &(threads, decoupled, lat)| {
                b.iter(|| run_spec(fig4_config(threads, decoupled, lat), &params));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
