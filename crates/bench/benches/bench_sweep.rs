//! Benchmark: sweep-engine throughput (cells/second), serial vs parallel,
//! plus cache-hit replay speed. Also emits a `BENCH_sweep.json` perf
//! snapshot so sweep-engine regressions show up in review diffs.
//!
//! Honesty rules for the snapshot:
//!
//! * the parallel row always runs with `std::thread::available_parallelism()`
//!   workers and records that number (`workers_parallel`) plus the host CPU
//!   count — a `parallel_speedup` near 1.0 on a 1-CPU runner is the truth,
//!   not a regression;
//! * serial and parallel throughput are sampled several times and reported
//!   as median/mean/stddev (via the vendored criterion shim's `summarize`),
//!   so a regression gate can tell drift from noise. The headline
//!   `cells_per_sec_*` fields carry the medians.
//!
//! `DSMT_BENCH_QUICK=1` shrinks sample counts for CI smoke jobs.
//!
//! The snapshot also prices the observability layer: serial throughput is
//! measured with telemetry hard-off and again with debug-level JSONL
//! tracing, and the gap lands in `telemetry_overhead_pct`. With
//! `DSMT_BENCH_STRICT=1` (the CI bench-smoke configuration) the run
//! additionally gates:
//!
//! * `telemetry_overhead_pct` must stay under 1% — the acceptance bar for
//!   "tracing is free when off". The off/on samples are interleaved, so
//!   load drift cancels and a sub-1% bar is enforceable even on a noisy
//!   host;
//! * serial throughput must stay within noise — `max(1%, 3 stddev)` — of
//!   the committed `cells_per_sec_serial`. Run-to-run medians are only
//!   comparable on the host that produced the snapshot, so this gate binds
//!   when `host_cpus` matches and degrades to an informational print when
//!   it does not (CI's coarse 30% cross-machine gate is the arbiter there);
//! * the `store_open` row (cold open of a 10^4-record store, v2
//!   header-indexed vs forced eager decode) must show a >=5x speedup.
//!   The ratio pits two runs on the same host against each other, so it
//!   gates everywhere; CI's store-scale job enforces the >=10x bar at
//!   10^5 records.

use criterion::{criterion_group, criterion_main, summarize, Criterion, Throughput};
use dsmt_core::SimConfig;
use dsmt_store::{IndexMode, Store};
use dsmt_sweep::{Axis, SweepEngine, SweepGrid, WorkloadSpec};
use std::time::{Duration, Instant};

/// A Figure-4-shaped grid small enough to iterate in a benchmark loop.
fn bench_grid() -> SweepGrid {
    SweepGrid::new(
        "bench",
        SimConfig::paper_multithreaded(1).with_queue_scaling(true),
    )
    .with_workload(WorkloadSpec::spec_mix(3_000))
    .with_axis(Axis::threads(&[1, 2]))
    .with_axis(Axis::decoupled(&[true, false]))
    .with_axis(Axis::l2_latencies(&[16, 64, 256]))
    .with_budget(10_000)
}

/// Stall-heavy single-thread long-miss cells: nearly every busy-phase cycle
/// falls inside an all-threads-blocked window, so serial throughput here
/// prices the event wheel's idle-skip (stall fast-forward) path.
fn stall_grid() -> SweepGrid {
    SweepGrid::new("bench-stall", SimConfig::paper_single_thread_4wide())
        .with_workload(WorkloadSpec::spec_mix(3_000))
        .with_axis(Axis::decoupled(&[true, false]))
        .with_axis(Axis::l2_latencies(&[256, 512]))
        .with_budget(10_000)
}

/// Busy multithreaded cells: four threads share the issue slots, so some
/// thread is almost always issuable and full-machine skips are rare —
/// serial throughput here prices the per-cycle wake-list verdict replay
/// (the busy path) instead of the skip.
fn busy_grid() -> SweepGrid {
    SweepGrid::new(
        "bench-busy",
        SimConfig::paper_multithreaded(4).with_queue_scaling(true),
    )
    .with_workload(WorkloadSpec::spec_mix(3_000))
    .with_axis(Axis::l2_latencies(&[16, 64]))
    .with_budget(10_000)
}

fn quick_mode() -> bool {
    std::env::var("DSMT_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn strict_mode() -> bool {
    std::env::var("DSMT_BENCH_STRICT").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn grid_cells_per_sec(
    grid: &SweepGrid,
    workers: usize,
    cached_dir: Option<&std::path::Path>,
) -> f64 {
    let engine = match cached_dir {
        Some(dir) => SweepEngine::new(workers).with_cache_dir(dir),
        None => SweepEngine::new(workers).without_cache(),
    };
    let start = Instant::now();
    let report = engine.run(grid);
    let secs = start.elapsed().as_secs_f64();
    report.records.len() as f64 / secs.max(1e-9)
}

fn cells_per_sec(workers: usize, cached_dir: Option<&std::path::Path>) -> f64 {
    grid_cells_per_sec(&bench_grid(), workers, cached_dir)
}

/// Samples serial throughput of `grid` repeatedly and summarises the
/// distribution.
fn sample_grid_serial(grid: &SweepGrid, samples: usize) -> criterion::Summary {
    let runs: Vec<f64> = (0..samples)
        .map(|_| grid_cells_per_sec(grid, 1, None))
        .collect();
    summarize(&runs)
}

/// Samples `cells_per_sec` repeatedly and summarises the distribution.
fn sample_cells_per_sec(
    workers: usize,
    cached_dir: Option<&std::path::Path>,
    samples: usize,
) -> criterion::Summary {
    let runs: Vec<f64> = (0..samples)
        .map(|_| cells_per_sec(workers, cached_dir))
        .collect();
    summarize(&runs)
}

/// Records in the synthetic store the `store_open` row prices. 10^4 keeps
/// the eager side affordable inside a bench run while leaving the
/// indexed-vs-eager gap far above measurement noise.
const STORE_OPEN_RECORDS: usize = 10_000;

/// Builds a store of [`STORE_OPEN_RECORDS`] sweep-cell-shaped records
/// (numeric stats under shared field names, like the cache publishes).
fn build_bench_store(dir: &std::path::Path) {
    let mut store = Store::open_with(dir, 1, IndexMode::Indexed).expect("create bench store");
    let mut batch = Vec::with_capacity(2048);
    for n in 0..STORE_OPEN_RECORDS as u64 {
        let h = n.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (n >> 7);
        batch.push((
            h,
            serde::Value::Object(vec![
                ("seed".to_string(), serde::Value::U64(n)),
                (
                    "ipc".to_string(),
                    serde::Value::F64(0.5 + (h % 2048) as f64 / 1024.0),
                ),
                ("cycles".to_string(), serde::Value::U64(h % 100_000_000)),
                ("insts".to_string(), serde::Value::U64(h % 10_000_000)),
                (
                    "stats".to_string(),
                    serde::Value::Object(vec![
                        ("l1_hits".to_string(), serde::Value::U64(h % 1_000_000)),
                        ("l2_hits".to_string(), serde::Value::U64(h % 65_536)),
                        (
                            "bus_busy".to_string(),
                            serde::Value::F64((h % 97) as f64 / 97.0),
                        ),
                    ]),
                ),
            ]),
        ));
        if batch.len() == 2048 {
            store.publish(std::mem::take(&mut batch)).expect("publish");
        }
    }
    if !batch.is_empty() {
        store.publish(batch).expect("publish");
    }
}

/// Samples a cold `Store::open_with` repeatedly, in microseconds.
fn sample_store_open(dir: &std::path::Path, mode: IndexMode, samples: usize) -> criterion::Summary {
    let runs: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let store = Store::open_with(dir, 1, mode).expect("open bench store");
            let us = start.elapsed().as_micros() as f64;
            assert_eq!(store.record_count(), STORE_OPEN_RECORDS);
            us
        })
        .collect();
    summarize(&runs)
}

fn write_snapshot() {
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let parallel_workers = host_cpus;
    let samples = if quick_mode() { 2 } else { 5 };

    // Serial throughput with telemetry hard-off (the configuration the <1%
    // regression gate prices) and with debug-level JSONL tracing to a file.
    // The two are sampled *interleaved* — off, on, off, on … — so slow
    // load drift on a shared host cancels out of the comparison instead of
    // masquerading as telemetry cost.
    let trace = std::env::temp_dir().join(format!("dsmt-bench-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    let jsonl_spec = format!("jsonl:{}", trace.display());
    dsmt_obs::init_from_spec("off");
    let _ = cells_per_sec(1, None); // warm caches/allocator before sampling
    let (mut off_runs, mut on_runs) = (Vec::new(), Vec::new());
    for pair in 0..samples * 3 {
        // Alternate which configuration goes first so order bias cancels
        // along with load drift.
        let specs = if pair % 2 == 0 {
            [("off", &mut off_runs), (jsonl_spec.as_str(), &mut on_runs)]
        } else {
            [(jsonl_spec.as_str(), &mut on_runs), ("off", &mut off_runs)]
        };
        for (spec, runs) in specs {
            dsmt_obs::init_from_spec(spec);
            runs.push(cells_per_sec(1, None));
        }
    }
    dsmt_obs::init_from_spec("off");
    let _ = std::fs::remove_file(&trace);
    let serial = summarize(&off_runs);
    let traced = summarize(&on_runs);
    let telemetry_overhead_pct = (1.0 - traced.median_ns / serial.median_ns.max(1e-9)) * 100.0;

    // The two event-driven-core price points, serially, telemetry off:
    // the stall grid spends its cycles in skip windows (idle-skip path),
    // the busy grid in wake-list verdict replay (busy path).
    let stall = sample_grid_serial(&stall_grid(), samples);
    let busy = sample_grid_serial(&busy_grid(), samples);

    let parallel = sample_cells_per_sec(parallel_workers, None, samples);

    let cache_dir = std::env::temp_dir().join(format!("dsmt-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = cells_per_sec(parallel_workers, Some(&cache_dir)); // warm the cache
    let replay = cells_per_sec(parallel_workers, Some(&cache_dir));
    let _ = std::fs::remove_dir_all(&cache_dir);

    // The store_open row: cold open cost of a 10^4-record store with the
    // v2 key-directory header index vs forced eager decode-everything.
    let store_dir = std::env::temp_dir().join(format!("dsmt-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    build_bench_store(&store_dir);
    let open_indexed = sample_store_open(&store_dir, IndexMode::Indexed, samples);
    let open_eager = sample_store_open(&store_dir, IndexMode::Eager, samples);
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_open_speedup = open_eager.median_ns / open_indexed.median_ns.max(1e-9);

    let f = serde::Value::F64;
    let u = |n: usize| serde::Value::U64(n as u64);
    let snapshot = serde::Value::Object(vec![
        ("bench".to_string(), serde::Value::Str("sweep".to_string())),
        ("grid_cells".to_string(), u(bench_grid().len())),
        (
            "budget_insts_per_cell".to_string(),
            serde::Value::U64(bench_grid().budget),
        ),
        ("host_cpus".to_string(), u(host_cpus)),
        ("workers_serial".to_string(), u(1)),
        ("workers_parallel".to_string(), u(parallel_workers)),
        ("samples_per_row".to_string(), u(samples)),
        ("cells_per_sec_serial".to_string(), f(serial.median_ns)),
        ("cells_per_sec_serial_mean".to_string(), f(serial.mean_ns)),
        (
            "cells_per_sec_serial_stddev".to_string(),
            f(serial.stddev_ns),
        ),
        ("stall_grid_cells".to_string(), u(stall_grid().len())),
        ("cells_per_sec_serial_stall".to_string(), f(stall.median_ns)),
        (
            "cells_per_sec_serial_stall_stddev".to_string(),
            f(stall.stddev_ns),
        ),
        ("busy_grid_cells".to_string(), u(busy_grid().len())),
        ("cells_per_sec_serial_busy".to_string(), f(busy.median_ns)),
        (
            "cells_per_sec_serial_busy_stddev".to_string(),
            f(busy.stddev_ns),
        ),
        ("cells_per_sec_parallel".to_string(), f(parallel.median_ns)),
        (
            "cells_per_sec_parallel_mean".to_string(),
            f(parallel.mean_ns),
        ),
        (
            "cells_per_sec_parallel_stddev".to_string(),
            f(parallel.stddev_ns),
        ),
        ("cells_per_sec_cached_replay".to_string(), f(replay)),
        (
            "cells_per_sec_serial_traced".to_string(),
            f(traced.median_ns),
        ),
        (
            "telemetry_overhead_pct".to_string(),
            f(telemetry_overhead_pct),
        ),
        (
            "parallel_speedup".to_string(),
            f(parallel.median_ns / serial.median_ns.max(1e-9)),
        ),
        ("store_open_records".to_string(), u(STORE_OPEN_RECORDS)),
        (
            "store_open_us_indexed".to_string(),
            f(open_indexed.median_ns),
        ),
        (
            "store_open_us_indexed_stddev".to_string(),
            f(open_indexed.stddev_ns),
        ),
        ("store_open_us_eager".to_string(), f(open_eager.median_ns)),
        (
            "store_open_us_eager_stddev".to_string(),
            f(open_eager.stddev_ns),
        ),
        ("store_open_speedup".to_string(), f(store_open_speedup)),
    ]);
    let text = serde::to_string_pretty(&snapshot);
    // Anchor the snapshot at the workspace root regardless of bench cwd.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    // The committed baseline, read before we overwrite it (strict gate).
    let committed = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde::from_str::<serde::Value>(&t).ok());
    if let Err(e) = std::fs::write(&path, &text) {
        eprintln!("warn: cannot write {}: {e}", path.display());
    }
    println!("BENCH_sweep.json:\n{text}");
    // Sanity: parallel must not be (much) slower than serial, even with a
    // single worker (pool overhead must be negligible).
    assert!(
        parallel.median_ns > 0.5 * serial.median_ns,
        "parallel sweep slower than serial: {:.1} vs {:.1} cells/s",
        parallel.median_ns,
        serial.median_ns
    );
    // Replay from cache skips simulation entirely and must dominate.
    assert!(
        replay > parallel.median_ns,
        "cached replay not faster than simulation: {replay:.1} vs {:.1} cells/s",
        parallel.median_ns
    );
    // Even with debug-level tracing on, the serial path must stay in the
    // same ballpark (events are per-cell, not per-cycle).
    assert!(
        traced.median_ns > 0.5 * serial.median_ns,
        "tracing halves sweep throughput: {:.1} vs {:.1} cells/s",
        traced.median_ns,
        serial.median_ns
    );
    // Indexed open must beat decode-everything; the ratio is host-relative
    // (both sides run on this machine), so it gates cross-host.
    assert!(
        store_open_speedup > 1.0,
        "indexed store open not faster than eager: {:.0}us vs {:.0}us at {STORE_OPEN_RECORDS} \
         records",
        open_indexed.median_ns,
        open_eager.median_ns
    );
    // Strict gates (CI bench-smoke sets DSMT_BENCH_STRICT=1): see the
    // module docs. Off by default because a loaded laptop produces noise
    // beyond even these allowances run-to-run.
    if strict_mode() {
        assert!(
            store_open_speedup >= 5.0,
            "header-indexed store open is only {store_open_speedup:.1}x faster than eager \
             decode-everything at {STORE_OPEN_RECORDS} records ({:.0}us vs {:.0}us); the \
             O(keys)-open design point demands >=5x here (>=10x at 10^5, CI store-scale job)",
            open_indexed.median_ns,
            open_eager.median_ns
        );
        assert!(
            telemetry_overhead_pct < 1.0,
            "telemetry overhead {telemetry_overhead_pct:.2}% breaches the <1% \
             tracing-is-free-when-off bar ({:.1} off vs {:.1} traced cells/s)",
            serial.median_ns,
            traced.median_ns
        );
        let committed = committed.expect("strict mode needs a committed BENCH_sweep.json");
        let field = |name: &str| {
            committed
                .field(name)
                .and_then(serde::Value::as_f64)
                .unwrap_or_else(|_| panic!("committed BENCH_sweep.json lacks {name}"))
        };
        let committed_serial = field("cells_per_sec_serial");
        let committed_cpus = field("host_cpus") as usize;
        // Tell drift from noise: the snapshot records its own spread, and
        // a median can honestly land 3 stddev out.
        let slack_pct = (300.0 * field("cells_per_sec_serial_stddev") / committed_serial).max(1.0);
        let regression_pct = (1.0 - serial.median_ns / committed_serial) * 100.0;
        if committed_cpus == host_cpus {
            assert!(
                regression_pct < slack_pct,
                "serial throughput regressed {regression_pct:.2}% vs committed snapshot \
                 ({:.1} now vs {committed_serial:.1} committed cells/s), beyond the \
                 {slack_pct:.1}% noise allowance",
                serial.median_ns
            );
        } else {
            println!(
                "strict: committed snapshot is from a {committed_cpus}-CPU host (this host: \
                 {host_cpus}); serial comparison is informational: {:.1} now vs \
                 {committed_serial:.1} committed cells/s",
                serial.median_ns
            );
        }
    }
}

fn bench_sweep(c: &mut Criterion) {
    let cells = bench_grid().len() as u64;
    let quick = quick_mode();
    let mut group = c.benchmark_group("sweep_engine");
    group
        .sample_size(if quick { 2 } else { 5 })
        .warm_up_time(Duration::from_millis(if quick { 50 } else { 300 }))
        .measurement_time(Duration::from_secs(if quick { 1 } else { 3 }))
        .throughput(Throughput::Elements(cells));
    group.bench_function("grid_12cells_serial", |b| {
        b.iter(|| {
            SweepEngine::new(1)
                .without_cache()
                .run(&bench_grid())
                .records
                .len()
        });
    });
    group.bench_function("grid_12cells_parallel", |b| {
        b.iter(|| {
            SweepEngine::from_env()
                .without_cache()
                .run(&bench_grid())
                .records
                .len()
        });
    });
    group.finish();

    // The event-driven core's two price points as their own group (cell
    // counts differ from the main grid, so they carry their own throughput).
    let mut paths = c.benchmark_group("sweep_engine_paths");
    paths
        .sample_size(if quick { 2 } else { 5 })
        .warm_up_time(Duration::from_millis(if quick { 50 } else { 300 }))
        .measurement_time(Duration::from_secs(if quick { 1 } else { 3 }))
        .throughput(Throughput::Elements(stall_grid().len() as u64));
    paths.bench_function("grid_stall_serial", |b| {
        b.iter(|| {
            SweepEngine::new(1)
                .without_cache()
                .run(&stall_grid())
                .records
                .len()
        });
    });
    paths.bench_function("grid_busy_serial", |b| {
        b.iter(|| {
            SweepEngine::new(1)
                .without_cache()
                .run(&busy_grid())
                .records
                .len()
        });
    });
    paths.finish();

    write_snapshot();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
