//! Benchmark: sweep-engine throughput (cells/second), serial vs parallel,
//! plus cache-hit replay speed. Also emits a `BENCH_sweep.json` perf
//! snapshot so sweep-engine regressions show up in review diffs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsmt_core::SimConfig;
use dsmt_sweep::{Axis, SweepEngine, SweepGrid, WorkloadSpec};
use std::time::{Duration, Instant};

/// A Figure-4-shaped grid small enough to iterate in a benchmark loop.
fn bench_grid() -> SweepGrid {
    SweepGrid::new(
        "bench",
        SimConfig::paper_multithreaded(1).with_queue_scaling(true),
    )
    .with_workload(WorkloadSpec::spec_mix(3_000))
    .with_axis(Axis::threads(&[1, 2]))
    .with_axis(Axis::decoupled(&[true, false]))
    .with_axis(Axis::l2_latencies(&[16, 64, 256]))
    .with_budget(10_000)
}

fn cells_per_sec(workers: usize, cached_dir: Option<&std::path::Path>) -> f64 {
    let grid = bench_grid();
    let engine = match cached_dir {
        Some(dir) => SweepEngine::new(workers).with_cache_dir(dir),
        None => SweepEngine::new(workers).without_cache(),
    };
    let start = Instant::now();
    let report = engine.run(&grid);
    let secs = start.elapsed().as_secs_f64();
    report.records.len() as f64 / secs.max(1e-9)
}

fn write_snapshot() {
    let parallel_workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let serial = cells_per_sec(1, None);
    let parallel = cells_per_sec(parallel_workers, None);

    let cache_dir = std::env::temp_dir().join(format!("dsmt-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = cells_per_sec(parallel_workers, Some(&cache_dir)); // warm the cache
    let replay = cells_per_sec(parallel_workers, Some(&cache_dir));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let snapshot = serde::Value::Object(vec![
        ("bench".to_string(), serde::Value::Str("sweep".to_string())),
        (
            "grid_cells".to_string(),
            serde::Value::U64(bench_grid().len() as u64),
        ),
        (
            "budget_insts_per_cell".to_string(),
            serde::Value::U64(bench_grid().budget),
        ),
        (
            "workers_parallel".to_string(),
            serde::Value::U64(parallel_workers as u64),
        ),
        (
            "cells_per_sec_serial".to_string(),
            serde::Value::F64(serial),
        ),
        (
            "cells_per_sec_parallel".to_string(),
            serde::Value::F64(parallel),
        ),
        (
            "cells_per_sec_cached_replay".to_string(),
            serde::Value::F64(replay),
        ),
        (
            "parallel_speedup".to_string(),
            serde::Value::F64(parallel / serial.max(1e-9)),
        ),
    ]);
    let text = serde::to_string_pretty(&snapshot);
    // Anchor the snapshot at the workspace root regardless of bench cwd.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    if let Err(e) = std::fs::write(&path, &text) {
        eprintln!("warn: cannot write {}: {e}", path.display());
    }
    println!("BENCH_sweep.json:\n{text}");
    // Sanity: parallel must not be (much) slower than serial.
    assert!(
        parallel > 0.5 * serial,
        "parallel sweep slower than serial: {parallel:.1} vs {serial:.1} cells/s"
    );
    // Replay from cache skips simulation entirely and must dominate.
    assert!(
        replay > parallel,
        "cached replay not faster than simulation: {replay:.1} vs {parallel:.1} cells/s"
    );
}

fn bench_sweep(c: &mut Criterion) {
    let cells = bench_grid().len() as u64;
    let mut group = c.benchmark_group("sweep_engine");
    group
        .sample_size(5)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .throughput(Throughput::Elements(cells));
    group.bench_function("grid_12cells_serial", |b| {
        b.iter(|| {
            SweepEngine::new(1)
                .without_cache()
                .run(&bench_grid())
                .records
                .len()
        });
    });
    group.bench_function("grid_12cells_parallel", |b| {
        b.iter(|| {
            SweepEngine::from_env()
                .without_cache()
                .run(&bench_grid())
                .records
                .len()
        });
    });
    group.finish();

    write_snapshot();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
