//! Benchmark: ablation configurations (instruction-queue depth and MSHR
//! count) at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmt_bench::{bench_params, BENCH_INSTRUCTIONS};
use dsmt_core::SimConfig;
use dsmt_experiments::runner::run_spec;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(criterion::Throughput::Elements(BENCH_INSTRUCTIONS));

    for iq in [8usize, 48, 96] {
        let mut cfg = SimConfig::paper_multithreaded(4).with_l2_latency(64);
        cfg.iq_capacity = iq;
        group.bench_with_input(BenchmarkId::new("iq_depth", iq), &cfg, |b, cfg| {
            b.iter(|| run_spec(cfg.clone(), &params));
        });
    }
    for mshrs in [4usize, 64] {
        let mut cfg = SimConfig::paper_multithreaded(4).with_l2_latency(64);
        cfg.mem.l1d.mshrs = mshrs;
        group.bench_with_input(BenchmarkId::new("mshrs", mshrs), &cfg, |b, cfg| {
            b.iter(|| run_spec(cfg.clone(), &params));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
