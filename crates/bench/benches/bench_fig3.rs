//! Benchmark: regenerating Figure 3 data points (issue-slot breakdown of
//! the multithreaded decoupled machine) for 1, 3 and 6 hardware contexts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmt_bench::{bench_params, BENCH_INSTRUCTIONS};
use dsmt_experiments::fig3::fig3_config;
use dsmt_experiments::runner::run_spec;
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig3_issue_slot_breakdown");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(criterion::Throughput::Elements(BENCH_INSTRUCTIONS));
    for threads in [1usize, 3, 6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| run_spec(fig3_config(threads), &params));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
