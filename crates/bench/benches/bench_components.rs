//! Benchmark: individual substrate components — synthetic trace generation,
//! L1 cache accesses, branch prediction, and raw simulator stepping.

use criterion::{criterion_group, criterion_main, Criterion};
use dsmt_core::{Processor, SimConfig};
use dsmt_mem::{AccessKind, MemConfig, MemorySystem};
use dsmt_trace::{spec_fp95_profile, SyntheticTrace, TraceSource};
use dsmt_uarch::BranchPredictor;
use std::time::Duration;

fn bench_components(c: &mut Criterion) {
    let profile = spec_fp95_profile("tomcatv").expect("known benchmark");
    let mut group = c.benchmark_group("components");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    group.throughput(criterion::Throughput::Elements(10_000));
    group.bench_function("synthetic_trace_10k_instructions", |b| {
        b.iter(|| {
            let mut t = SyntheticTrace::new(&profile, 1);
            let mut count = 0u64;
            for _ in 0..10_000 {
                count += u64::from(t.next_instruction().is_some());
            }
            count
        });
    });

    group.throughput(criterion::Throughput::Elements(10_000));
    group.bench_function("l1_cache_10k_accesses", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(MemConfig::paper_default());
            let mut hits = 0u64;
            for i in 0..10_000u64 {
                mem.begin_cycle(i);
                if let dsmt_mem::AccessResponse::Done { hit: true, .. } =
                    mem.try_access(i, (i * 24) % (1 << 20), AccessKind::Load)
                {
                    hits += 1;
                }
            }
            hits
        });
    });

    group.throughput(criterion::Throughput::Elements(10_000));
    group.bench_function("branch_predictor_10k_updates", |b| {
        b.iter(|| {
            let mut p = BranchPredictor::paper_default();
            let mut correct = 0u64;
            for i in 0..10_000u64 {
                correct += u64::from(p.predict_and_train(i % 512 * 4, i % 7 != 0));
            }
            correct
        });
    });

    group.throughput(criterion::Throughput::Elements(10_000));
    group.bench_function("processor_10k_cycles_4_threads", |b| {
        b.iter(|| {
            let mut cpu = Processor::with_spec_workload(SimConfig::paper_multithreaded(4), 1);
            cpu.run_cycles(10_000).instructions
        });
    });
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
