//! Benchmark: regenerating Figure 5 data points (IPC and bus utilisation vs
//! number of hardware contexts at a 64-cycle L2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsmt_bench::{bench_params, BENCH_INSTRUCTIONS};
use dsmt_experiments::fig5::fig5_config;
use dsmt_experiments::runner::run_spec;
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("fig5_thread_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .throughput(criterion::Throughput::Elements(BENCH_INSTRUCTIONS));
    for (threads, decoupled) in [(4usize, true), (4, false), (12, true), (12, false)] {
        let label = format!("{threads}T-{}", if decoupled { "dec" } else { "nondec" });
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(threads, decoupled),
            |b, &(threads, decoupled)| {
                b.iter(|| run_spec(fig5_config(threads, decoupled, 64), &params));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
