//! Shared helpers for the Criterion benchmarks that regenerate the paper's
//! figures at reduced scale.
//!
//! Each benchmark target (`bench_fig1` .. `bench_fig5`, `bench_ablations`)
//! wraps the corresponding experiment from `dsmt-experiments` with a small
//! instruction budget, so `cargo bench` both exercises the full simulation
//! pipeline and reports how long regenerating each figure takes.
//! `bench_components` measures the individual substrates (cache, predictor,
//! trace generation, single-cycle stepping).

use dsmt_experiments::ExperimentParams;

/// Instructions per simulated data point used by the figure benchmarks.
pub const BENCH_INSTRUCTIONS: u64 = 30_000;

/// Experiment parameters used by the figure benchmarks: small, deterministic
/// and single-worker (Criterion already controls repetition).
#[must_use]
pub fn bench_params() -> ExperimentParams {
    ExperimentParams {
        instructions_per_point: BENCH_INSTRUCTIONS,
        insts_per_program: 10_000,
        seed: 42,
        workers: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_params_are_small_and_single_worker() {
        let p = bench_params();
        assert_eq!(p.workers, 1);
        assert!(p.instructions_per_point <= 50_000);
    }
}
