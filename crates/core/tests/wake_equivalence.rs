//! Differential tests: the event-driven scheduler (wake-list verdict
//! replay + stall fast-forward) against the naive reference model that
//! re-probes every window head every cycle and never skips
//! ([`Processor::set_reference_model`]).
//!
//! The wake list is a pure performance cache: a recorded verdict replays
//! exactly what a fresh probe would conclude, and a skip window replays
//! exactly the per-cycle accounting stepping would have performed. Every
//! field of [`SimResults`] must therefore match bit-for-bit — same issue
//! order, same slot attribution, same perceived-latency stalls — across
//! thread counts, decoupling, L2 latencies and seeds.

use dsmt_core::{Processor, SimConfig, SimResults};
use proptest::prelude::*;

fn assert_results_match(event_driven: &SimResults, reference: &SimResults) {
    assert_eq!(event_driven.cycles, reference.cycles, "cycles");
    assert_eq!(
        event_driven.instructions, reference.instructions,
        "instructions"
    );
    assert_eq!(
        event_driven.per_thread_instructions, reference.per_thread_instructions,
        "per_thread_instructions"
    );
    assert_eq!(event_driven.ap_slots, reference.ap_slots, "ap_slots");
    assert_eq!(event_driven.ep_slots, reference.ep_slots, "ep_slots");
    assert_eq!(event_driven.perceived, reference.perceived, "perceived");
    assert_eq!(event_driven.mem, reference.mem, "mem");
    assert_eq!(
        event_driven.bus_utilization.to_bits(),
        reference.bus_utilization.to_bits(),
        "bus_utilization"
    );
    assert_eq!(
        event_driven.branch_accuracy.to_bits(),
        reference.branch_accuracy.to_bits(),
        "branch_accuracy"
    );
    assert_eq!(event_driven.loads, reference.loads, "loads");
    assert_eq!(event_driven.stores, reference.stores, "stores");
    assert_eq!(event_driven.branches, reference.branches, "branches");
    assert_eq!(
        event_driven.mispredictions, reference.mispredictions,
        "mispredictions"
    );
}

fn run_both(cfg: &SimConfig, seed: u64, budget: u64) -> (SimResults, SimResults) {
    let mut fast = Processor::with_spec_workload(cfg.clone(), seed);
    let event_driven = fast.run(budget);
    let mut naive = Processor::with_spec_workload(cfg.clone(), seed);
    naive.set_reference_model(true);
    let reference = naive.run(budget);
    // The reference model must actually be the naive one: it steps every
    // cycle, so it can never report a skip.
    assert_eq!(naive.perf().busy_cycles_skipped, 0);
    (event_driven, reference)
}

/// The stall-heavy single-thread long-miss shape (the configuration where
/// both the wake-list replay and the idle-skip fire constantly).
#[test]
fn event_driven_matches_reference_on_stall_heavy_config() {
    let cfg = SimConfig::paper_single_thread_4wide().with_l2_latency(256);
    let (event_driven, reference) = run_both(&cfg, 99, 12_000);
    assert_results_match(&event_driven, &reference);
}

/// The multithreaded arbitration shape (rotation-exact slot attribution
/// across a 4-way round-robin).
#[test]
fn event_driven_matches_reference_on_multithreaded_config() {
    let cfg = SimConfig::paper_multithreaded(4)
        .with_l2_latency(64)
        .with_queue_scaling(true);
    let (event_driven, reference) = run_both(&cfg, 1234, 20_000);
    assert_results_match(&event_driven, &reference);
}

/// The event-driven path must actually engage on a stall-heavy run —
/// otherwise the equivalence above is vacuous.
#[test]
fn event_driven_path_actually_skips() {
    let cfg = SimConfig::paper_single_thread_4wide().with_l2_latency(256);
    let mut cpu = Processor::with_spec_workload(cfg, 99);
    let _ = cpu.run(12_000);
    assert!(
        cpu.perf().busy_cycles_skipped > 0,
        "stall fast-forward never fired on a 256-cycle-L2 run"
    );
    assert!(cpu.perf().skip_windows > 0);
}

/// Slicing a run into quanta (the sweep layer's batched-cell drive loop)
/// splits skip windows at arbitrary boundaries; the accounting replay is
/// additive, so results stay bit-identical to one `run` call.
#[test]
fn run_quantum_slicing_matches_monolithic_run() {
    let cfg = SimConfig::paper_multithreaded(2).with_l2_latency(256);
    let budget = 15_000u64;
    let monolithic = Processor::with_spec_workload(cfg.clone(), 7).run(budget);
    for quantum in [64u64, 1_000, 8_192] {
        let mut cpu = Processor::with_spec_workload(cfg.clone(), 7);
        let cap = cpu.run_cap(budget);
        let mut quanta = 0usize;
        while !cpu.run_quantum(budget, cap, quantum) {
            quanta += 1;
            assert!(quanta < 1_000_000, "run_quantum failed to make progress");
        }
        assert_results_match(&cpu.results(), &monolithic);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random machine shapes × seeds: the wake-list scheduler and the
    /// naive every-cycle re-probe model produce bit-identical results.
    #[test]
    fn event_driven_scheduler_matches_naive_reprobe(
        threads in 1usize..5,
        l2_pick in 0usize..3,
        decoupled in prop::bool::ANY,
        queue_scaling in prop::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let l2 = [16u64, 64, 256][l2_pick];
        let cfg = SimConfig::paper_multithreaded(threads)
            .with_l2_latency(l2)
            .with_decoupled(decoupled)
            .with_queue_scaling(queue_scaling);
        let (event_driven, reference) = run_both(&cfg, seed, 6_000);
        assert_results_match(&event_driven, &reference);
    }
}
