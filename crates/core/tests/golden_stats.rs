//! Hot-loop equivalence: golden statistics pinned before the
//! allocation-free rewrite of the simulator core (event wheel, ring
//! buffers, scratch issue/fetch buffers, O(1) FU occupancy).
//!
//! The two scenarios below exercise every path the rewrite touched:
//! multithreading (issue arbitration, I-COUNT fetch), decoupling (deep
//! instruction queues), cache misses with bus contention (l2 = 64/256),
//! queue scaling, and branch mispredictions. Every field of [`SimResults`]
//! must match the values produced by the pre-optimization simulator
//! bit-for-bit — any drift means the "optimization" changed behaviour.

use dsmt_core::{PerceivedLatency, Processor, SimConfig, SimResults, UnitSlots};
use dsmt_mem::MemStats;

fn assert_results_match(actual: &SimResults, expected: &SimResults) {
    // Field-by-field so a failure names the drifting statistic instead of
    // dumping two full structs.
    assert_eq!(actual.cycles, expected.cycles, "cycles");
    assert_eq!(actual.instructions, expected.instructions, "instructions");
    assert_eq!(
        actual.per_thread_instructions, expected.per_thread_instructions,
        "per_thread_instructions"
    );
    assert_eq!(actual.ap_slots, expected.ap_slots, "ap_slots");
    assert_eq!(actual.ep_slots, expected.ep_slots, "ep_slots");
    assert_eq!(actual.perceived, expected.perceived, "perceived");
    assert_eq!(actual.mem, expected.mem, "mem");
    assert_eq!(
        actual.bus_utilization.to_bits(),
        expected.bus_utilization.to_bits(),
        "bus_utilization"
    );
    assert_eq!(
        actual.branch_accuracy.to_bits(),
        expected.branch_accuracy.to_bits(),
        "branch_accuracy"
    );
    assert_eq!(actual.loads, expected.loads, "loads");
    assert_eq!(actual.stores, expected.stores, "stores");
    assert_eq!(actual.branches, expected.branches, "branches");
    assert_eq!(
        actual.mispredictions, expected.mispredictions,
        "mispredictions"
    );
}

/// 4 threads, decoupled, 64-cycle L2 with queue scaling, SPEC mix: the
/// Figure-4-shaped stress case (multithreaded arbitration + misses +
/// mispredictions + MSHR merges + write-backs).
#[test]
fn golden_multithreaded_decoupled_l2_64() {
    let cfg = SimConfig::paper_multithreaded(4)
        .with_l2_latency(64)
        .with_queue_scaling(true);
    let actual = Processor::with_spec_workload(cfg, 1234).run(60_000);
    let expected = SimResults {
        cycles: 13_566,
        instructions: 60_003,
        per_thread_instructions: vec![17_867, 17_196, 9_468, 15_472],
        ap_slots: UnitSlots {
            useful: 36_176,
            wait_memory: 16_694,
            wait_fu: 1_386,
            wrong_path_or_idle: 8,
            other: 0,
        },
        ep_slots: UnitSlots {
            useful: 24_249,
            wait_memory: 19_662,
            wait_fu: 10_341,
            wrong_path_or_idle: 12,
            other: 0,
        },
        perceived: PerceivedLatency {
            fp_stall_cycles: 17_231,
            int_stall_cycles: 10_312,
            fp_load_misses: 1_747,
            int_load_misses: 267,
        },
        mem: MemStats {
            load_hits: 15_256,
            load_misses: 2_014,
            store_hits: 4_907,
            store_misses: 752,
            mshr_merges: 5_862,
            mshr_full_rejections: 0,
            port_rejections: 0,
            writebacks: 492,
            bus_busy_cycles: 6_516,
            bus_transfers: 3_258,
            bus_bytes: 104_256,
        },
        bus_utilization: 0.480_318_443_166_740_4,
        branch_accuracy: 0.956_372_289_793_759_9,
        loads: 17_270,
        stores: 5_659,
        branches: 3_782,
        mispredictions: 165,
    };
    assert_results_match(&actual, &expected);
}

/// Single-threaded 4-wide machine at 256-cycle L2: long-latency event-wheel
/// deltas (fills land hundreds of cycles out) plus deep scaled queues.
#[test]
fn golden_single_thread_l2_256() {
    let cfg = SimConfig::paper_single_thread_4wide().with_l2_latency(256);
    let actual = Processor::with_spec_workload(cfg, 99).run(30_000);
    let expected = SimResults {
        cycles: 46_532,
        instructions: 30_000,
        per_thread_instructions: vec![30_000],
        ap_slots: UnitSlots {
            useful: 17_898,
            wait_memory: 69_392,
            wait_fu: 5_470,
            wrong_path_or_idle: 304,
            other: 0,
        },
        ep_slots: UnitSlots {
            useful: 12_187,
            wait_memory: 70_802,
            wait_fu: 10_047,
            wrong_path_or_idle: 28,
            other: 0,
        },
        perceived: PerceivedLatency {
            fp_stall_cycles: 18_367,
            int_stall_cycles: 15_566,
            fp_load_misses: 864,
            int_load_misses: 70,
        },
        mem: MemStats {
            load_hits: 7_544,
            load_misses: 934,
            store_hits: 2_470,
            store_misses: 353,
            mshr_merges: 3_241,
            mshr_full_rejections: 0,
            port_rejections: 0,
            writebacks: 95,
            bus_busy_cycles: 2_764,
            bus_transfers: 1_382,
            bus_bytes: 44_224,
        },
        bus_utilization: 0.059_399_982_807_530_304,
        branch_accuracy: 0.969_247_083_775_185_5,
        loads: 8_478,
        stores: 2_823,
        branches: 1_886,
        mispredictions: 58,
    };
    assert_results_match(&actual, &expected);
}

/// The same simulation run twice stays bit-identical (the golden values
/// above are stable, not flaky).
#[test]
fn golden_runs_are_reproducible() {
    let cfg = SimConfig::paper_multithreaded(2).with_l2_latency(64);
    let a = Processor::with_spec_workload(cfg.clone(), 7).run(20_000);
    let b = Processor::with_spec_workload(cfg, 7).run(20_000);
    assert_results_match(&a, &b);
}

/// Fully-enabled telemetry (debug-level JSONL tracing + the metrics
/// registry) observes the simulation without steering it: every statistic
/// stays bit-identical to an untraced run.
#[test]
fn golden_runs_survive_full_telemetry() {
    let cfg = SimConfig::paper_multithreaded(2).with_l2_latency(64);
    let baseline = Processor::with_spec_workload(cfg.clone(), 7).run(20_000);

    let trace =
        std::env::temp_dir().join(format!("dsmt-golden-trace-{}.jsonl", std::process::id()));
    dsmt_obs::init_from_spec(&format!("jsonl:{}", trace.display()));
    let traced = Processor::with_spec_workload(cfg, 7).run(20_000);
    traced.record_metrics();
    dsmt_obs::info!("golden.telemetry_check", cycles = traced.cycles);
    dsmt_obs::init_from_spec("off");

    assert_results_match(&traced, &baseline);
    let snapshot = dsmt_obs::registry().snapshot();
    assert!(
        snapshot
            .counters
            .iter()
            .any(|(name, v)| name == "core.cycles" && *v >= baseline.cycles),
        "record_metrics must land in the registry"
    );
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(
        text.lines().any(|l| l.contains("golden.telemetry_check")),
        "trace must carry the emitted event"
    );
    let _ = std::fs::remove_file(&trace);
}
