//! Simulator configuration.

use dsmt_mem::MemConfig;
use serde::{Deserialize, Serialize};

/// Which threads win the per-cycle fetch slots.
///
/// The paper's machine uses I-COUNT ("those with less instructions pending
/// to be dispatched"); Section 3.1 discusses it against the plain RR-2.8
/// rotation this knob also exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchPolicy {
    /// Prefer the threads with the fewest fetched-but-undispatched
    /// instructions (ties rotate). The paper's default.
    #[default]
    ICount,
    /// Plain rotation over the eligible threads, ignoring their load.
    RoundRobin,
}

impl FetchPolicy {
    /// Short label used in sweep records and CSV cells.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FetchPolicy::ICount => "icount",
            FetchPolicy::RoundRobin => "round-robin",
        }
    }
}

/// Configuration of the multithreaded decoupled processor.
///
/// The defaults mirror the paper's Figure 2 parameters. Use
/// [`SimConfig::paper_multithreaded`] for the Section 3 machine and
/// [`SimConfig::paper_single_thread_4wide`] for the Section 2 machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of hardware contexts (threads).
    pub num_threads: usize,
    /// Whether the architecture is decoupled (instruction queues enabled).
    /// When `false`, the per-thread EP instruction queue is restricted to
    /// [`SimConfig::non_decoupled_iq_capacity`] entries, which prevents the
    /// AP from slipping ahead of the EP — the paper's "degenerated version
    /// ... where the instruction queues are disabled".
    pub decoupled: bool,
    /// How many threads may access the I-cache (fetch) per cycle (paper: 2).
    pub fetch_threads_per_cycle: usize,
    /// How the fetch slots are awarded among eligible threads (paper:
    /// I-COUNT).
    pub fetch_policy: FetchPolicy,
    /// Instructions fetched per selected thread per cycle (paper: 8).
    pub fetch_width: usize,
    /// Per-thread dispatch width (paper: 8).
    pub dispatch_width: usize,
    /// Per-thread graduation width.
    pub retire_width: usize,
    /// Number of AP functional units shared by all threads (paper: 4).
    pub ap_units: usize,
    /// Number of EP functional units shared by all threads (paper: 4).
    pub ep_units: usize,
    /// AP functional unit latency in cycles (paper: 1).
    pub ap_latency: u64,
    /// EP functional unit latency in cycles (paper: 4).
    pub ep_latency: u64,
    /// Maximum unresolved conditional branches per thread (paper: 4).
    pub max_unresolved_branches: usize,
    /// Branch history table entries per thread (paper: 2K × 2 bits).
    pub bht_entries: usize,
    /// Per-thread EP Instruction Queue capacity (paper: 48).
    pub iq_capacity: usize,
    /// Per-thread Store Address Queue capacity (paper: 32).
    pub saq_capacity: usize,
    /// Per-thread AP in-order issue window capacity.
    pub ap_window_capacity: usize,
    /// Per-thread reorder buffer capacity.
    pub rob_capacity: usize,
    /// Per-thread AP (integer) physical registers (paper: 64).
    pub ap_phys_regs: usize,
    /// Per-thread EP (floating-point) physical registers (paper: 96).
    pub ep_phys_regs: usize,
    /// Per-thread fetch buffer capacity (fetched, waiting for dispatch).
    pub fetch_buffer_capacity: usize,
    /// EP instruction queue capacity used when `decoupled` is `false`.
    pub non_decoupled_iq_capacity: usize,
    /// Scale queues, windows, ROB and physical register files proportionally
    /// to the L2 latency (relative to the 16-cycle baseline), as the paper
    /// does for its Section 2 latency sweeps.
    pub scale_queues_with_latency: bool,
    /// Memory system configuration (L1D geometry, L2 latency, bus).
    pub mem: MemConfig,
}

impl SimConfig {
    /// The paper's Section 3 multithreaded decoupled machine (Figure 2):
    /// 8-wide issue to 4 AP + 4 EP units, 2-thread/8-wide fetch with
    /// I-COUNT, per-thread 48-entry IQ, 32-entry SAQ, 64 AP + 96 EP physical
    /// registers, 2K-entry BHT, 64 KB L1D, 16-cycle L2.
    ///
    /// The lockup-free miss tracking (16 MSHRs) is replicated per hardware
    /// context, like the other per-context resources the paper replicates:
    /// with a single shared 16-entry file, a 16-thread machine could never
    /// generate the outstanding-miss traffic (and hence the ~90–98% bus
    /// utilisation) that the paper reports in Figure 5.
    #[must_use]
    pub fn paper_multithreaded(num_threads: usize) -> Self {
        let mut mem = MemConfig::paper_default();
        mem.l1d.mshrs = 16 * num_threads.max(1);
        SimConfig {
            num_threads,
            decoupled: true,
            fetch_threads_per_cycle: 2,
            fetch_policy: FetchPolicy::ICount,
            fetch_width: 8,
            dispatch_width: 8,
            retire_width: 8,
            ap_units: 4,
            ep_units: 4,
            ap_latency: 1,
            ep_latency: 4,
            max_unresolved_branches: 4,
            bht_entries: 2048,
            iq_capacity: 48,
            saq_capacity: 32,
            ap_window_capacity: 16,
            rob_capacity: 128,
            ap_phys_regs: 64,
            ep_phys_regs: 96,
            fetch_buffer_capacity: 32,
            non_decoupled_iq_capacity: 8,
            scale_queues_with_latency: false,
            mem,
        }
    }

    /// The paper's Section 2 machine: a single-threaded, 4-way issue
    /// decoupled processor with 4 general-purpose functional units
    /// (2 AP + 2 EP here) and a 2-port L1 data cache. Queue scaling with L2
    /// latency is enabled, as in the paper's Section 2 experiments.
    #[must_use]
    pub fn paper_single_thread_4wide() -> Self {
        let mut cfg = SimConfig::paper_multithreaded(1);
        cfg.fetch_threads_per_cycle = 1;
        cfg.dispatch_width = 4;
        cfg.retire_width = 4;
        cfg.ap_units = 2;
        cfg.ep_units = 2;
        cfg.scale_queues_with_latency = true;
        cfg.mem.l1d.ports = 2;
        cfg
    }

    /// Sets the L2 hit latency (the paper's main sweep variable).
    #[must_use]
    pub fn with_l2_latency(mut self, latency: u64) -> Self {
        self.mem.l2_latency = latency;
        self
    }

    /// Enables or disables decoupling.
    #[must_use]
    pub fn with_decoupled(mut self, decoupled: bool) -> Self {
        self.decoupled = decoupled;
        self
    }

    /// Sets the number of hardware threads, keeping the per-context MSHR
    /// replication in step (16 outstanding misses per thread).
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        if self.mem.l1d.mshrs == 16 * self.num_threads.max(1) {
            self.mem.l1d.mshrs = 16 * n.max(1);
        }
        self.num_threads = n;
        self
    }

    /// Enables or disables queue scaling with L2 latency.
    #[must_use]
    pub fn with_queue_scaling(mut self, scale: bool) -> Self {
        self.scale_queues_with_latency = scale;
        self
    }

    /// Sets the fetch policy (I-COUNT vs plain round-robin).
    #[must_use]
    pub fn with_fetch_policy(mut self, policy: FetchPolicy) -> Self {
        self.fetch_policy = policy;
        self
    }

    /// The queue/register scaling factor implied by the configuration.
    #[must_use]
    pub fn scale_factor(&self) -> f64 {
        if self.scale_queues_with_latency {
            (self.mem.l2_latency as f64 / 16.0).max(1.0)
        } else {
            1.0
        }
    }

    /// Effective per-thread EP instruction queue capacity after applying the
    /// decoupling mode and latency scaling.
    #[must_use]
    pub fn effective_iq_capacity(&self) -> usize {
        if self.decoupled {
            scale(self.iq_capacity, self.scale_factor())
        } else {
            self.non_decoupled_iq_capacity
        }
    }

    /// Effective AP window capacity after latency scaling.
    #[must_use]
    pub fn effective_ap_window_capacity(&self) -> usize {
        if self.decoupled {
            scale(self.ap_window_capacity, self.scale_factor())
        } else {
            self.ap_window_capacity.min(self.non_decoupled_iq_capacity)
        }
    }

    /// Effective SAQ capacity after latency scaling.
    #[must_use]
    pub fn effective_saq_capacity(&self) -> usize {
        scale(self.saq_capacity, self.scale_factor())
    }

    /// Effective ROB capacity after latency scaling.
    #[must_use]
    pub fn effective_rob_capacity(&self) -> usize {
        scale(self.rob_capacity, self.scale_factor())
    }

    /// Effective AP physical register count after latency scaling
    /// (only the registers beyond the architectural 32 are scaled).
    #[must_use]
    pub fn effective_ap_phys_regs(&self) -> usize {
        32 + scale(self.ap_phys_regs.saturating_sub(32), self.scale_factor())
    }

    /// Effective EP physical register count after latency scaling.
    #[must_use]
    pub fn effective_ep_phys_regs(&self) -> usize {
        32 + scale(self.ep_phys_regs.saturating_sub(32), self.scale_factor())
    }

    /// Effective memory configuration: when queue scaling is enabled, the
    /// lockup-free miss tracking (MSHRs) scales with the L2 latency along
    /// with the other structures that bound the AP's run-ahead distance.
    #[must_use]
    pub fn effective_mem(&self) -> MemConfig {
        let mut mem = self.mem;
        mem.l1d.mshrs = scale(mem.l1d.mshrs, self.scale_factor());
        mem
    }

    /// Total issue width (AP units + EP units).
    #[must_use]
    pub fn issue_width(&self) -> usize {
        self.ap_units + self.ep_units
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found (zero widths, too
    /// few physical registers, invalid memory configuration, ...).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_threads == 0 {
            return Err("num_threads must be non-zero".to_string());
        }
        if self.fetch_threads_per_cycle == 0 || self.fetch_width == 0 {
            return Err("fetch parameters must be non-zero".to_string());
        }
        if self.dispatch_width == 0 || self.retire_width == 0 {
            return Err("dispatch/retire width must be non-zero".to_string());
        }
        if self.ap_units == 0 || self.ep_units == 0 {
            return Err("both units need at least one functional unit".to_string());
        }
        if self.ap_latency == 0 || self.ep_latency == 0 {
            return Err("functional unit latencies must be non-zero".to_string());
        }
        if self.ap_phys_regs < 33 || self.ep_phys_regs < 33 {
            return Err("need more than 32 physical registers per file".to_string());
        }
        if self.iq_capacity == 0
            || self.saq_capacity == 0
            || self.ap_window_capacity == 0
            || self.rob_capacity == 0
            || self.fetch_buffer_capacity == 0
            || self.non_decoupled_iq_capacity == 0
        {
            return Err("queue capacities must be non-zero".to_string());
        }
        if self.bht_entries == 0 {
            return Err("bht_entries must be non-zero".to_string());
        }
        self.mem.validate()?;
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_multithreaded(1)
    }
}

fn scale(value: usize, factor: f64) -> usize {
    ((value as f64 * factor).round() as usize).max(value.min(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_multithreaded_matches_figure_2() {
        let c = SimConfig::paper_multithreaded(4);
        assert_eq!(c.num_threads, 4);
        assert_eq!(c.ap_units, 4);
        assert_eq!(c.ep_units, 4);
        assert_eq!(c.ap_latency, 1);
        assert_eq!(c.ep_latency, 4);
        assert_eq!(c.iq_capacity, 48);
        assert_eq!(c.saq_capacity, 32);
        assert_eq!(c.ap_phys_regs, 64);
        assert_eq!(c.ep_phys_regs, 96);
        assert_eq!(c.bht_entries, 2048);
        assert_eq!(c.max_unresolved_branches, 4);
        assert_eq!(c.mem.l2_latency, 16);
        assert_eq!(c.mem.l1d.ports, 4);
        assert_eq!(c.issue_width(), 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn paper_single_thread_is_4_wide() {
        let c = SimConfig::paper_single_thread_4wide();
        assert_eq!(c.num_threads, 1);
        assert_eq!(c.dispatch_width, 4);
        assert_eq!(c.ap_units + c.ep_units, 4);
        assert_eq!(c.mem.l1d.ports, 2);
        assert!(c.scale_queues_with_latency);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_override_fields() {
        let c = SimConfig::paper_multithreaded(2)
            .with_l2_latency(256)
            .with_decoupled(false)
            .with_threads(6)
            .with_queue_scaling(true);
        assert_eq!(c.mem.l2_latency, 256);
        assert!(!c.decoupled);
        assert_eq!(c.num_threads, 6);
        assert!(c.scale_queues_with_latency);
    }

    #[test]
    fn non_decoupled_restricts_iq() {
        let dec = SimConfig::paper_multithreaded(1);
        let non = dec.clone().with_decoupled(false);
        assert_eq!(dec.effective_iq_capacity(), 48);
        assert_eq!(non.effective_iq_capacity(), non.non_decoupled_iq_capacity);
        assert!(non.effective_ap_window_capacity() <= non.non_decoupled_iq_capacity);
    }

    #[test]
    fn queue_scaling_tracks_l2_latency() {
        let base = SimConfig::paper_multithreaded(1).with_queue_scaling(true);
        let fast = base.clone().with_l2_latency(1);
        let slow = base.clone().with_l2_latency(256);
        assert_eq!(fast.scale_factor(), 1.0);
        assert_eq!(slow.scale_factor(), 16.0);
        assert_eq!(fast.effective_iq_capacity(), 48);
        assert_eq!(slow.effective_iq_capacity(), 48 * 16);
        assert_eq!(slow.effective_saq_capacity(), 32 * 16);
        assert!(slow.effective_ap_phys_regs() > fast.effective_ap_phys_regs());
        assert_eq!(fast.effective_ap_phys_regs(), 64);
        assert_eq!(fast.effective_mem().l1d.mshrs, 16);
        assert_eq!(slow.effective_mem().l1d.mshrs, 16 * 16);
        // Without scaling enabled the latency has no effect on sizes.
        let unscaled = SimConfig::paper_multithreaded(1).with_l2_latency(256);
        assert_eq!(unscaled.effective_iq_capacity(), 48);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(SimConfig::paper_multithreaded(0).validate().is_err());
        let mut c = SimConfig::paper_multithreaded(1);
        c.ap_units = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_multithreaded(1);
        c.ep_latency = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_multithreaded(1);
        c.ap_phys_regs = 32;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_multithreaded(1);
        c.iq_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_multithreaded(1);
        c.mem.bus_bytes_per_cycle = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_single_threaded_paper_machine() {
        let d = SimConfig::default();
        assert_eq!(d.num_threads, 1);
        assert!(d.decoupled);
        assert_eq!(d.fetch_policy, FetchPolicy::ICount);
    }

    #[test]
    fn fetch_policy_knob_round_trips() {
        let c = SimConfig::paper_multithreaded(2).with_fetch_policy(FetchPolicy::RoundRobin);
        assert_eq!(c.fetch_policy, FetchPolicy::RoundRobin);
        assert!(c.validate().is_ok());
        let text = serde::to_string(&c);
        assert!(text.contains("RoundRobin"));
        let back: SimConfig = serde::from_str(&text).expect("config round-trips");
        assert_eq!(back, c);
        assert_eq!(FetchPolicy::default(), FetchPolicy::ICount);
        assert_ne!(FetchPolicy::ICount.label(), FetchPolicy::RoundRobin.label());
    }
}
