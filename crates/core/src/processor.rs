//! The cycle-by-cycle multithreaded decoupled processor model.
//!
//! The per-cycle loop is allocation-free in steady state: completion events
//! live in a fixed [`EventWheel`], windows and the ROB are ring buffers,
//! and the issue/fetch stages reuse scratch buffers owned by the
//! [`Processor`] instead of collecting fresh `Vec`s every cycle.
//!
//! Head scheduling is event-driven: when a window head is proven blocked
//! until a known cycle, the verdict is parked on a per-thread, per-side
//! [`WakeList`] keyed by the blocking operand's ready cycle. Until the
//! wake fires, the issue stage replays the verdict in O(1) instead of
//! re-reading register files, and the stall fast-forward reuses the same
//! recorded verdicts (plus the wheel's next-due bound) to jump fully
//! blocked windows. Both paths are bit-identical to naive per-cycle
//! re-probing — pinned by `golden_stats.rs` and the differential proptests
//! against [`Processor::set_reference_model`].

use dsmt_isa::{steer, OpClass, RegClass, Unit};
use dsmt_mem::{AccessKind, AccessResponse, MemorySystem};
use dsmt_trace::{ThreadWorkload, TraceSource};
use dsmt_uarch::{
    icount_pick_into, round_robin_pick_into, EventWheel, FuPool, RoundRobin, WakeList,
};

use crate::thread::{
    DestOperand, FetchedInst, InflightInst, RobPayload, SaqEntry, SrcOperand, ThreadContext,
};
use crate::{PerceivedLatency, SimConfig, SimResults, SlotUse, UnitSlots};

/// The payload a [`WakeList`] verdict replays for a blocked head: the
/// issue-slot classification and the perceived-latency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockedCause {
    kind: SlotUse,
    /// `Some` when the blocking operand comes from a load that missed —
    /// the register class drives the perceived-latency metric.
    miss_class: Option<RegClass>,
}

/// Scheduler-throughput counters, deliberately separate from
/// [`SimResults`] (whose serialized layout is pinned by golden `.dsr`
/// fixtures): how much per-cycle work the event-driven core avoided.
/// Folded into the metrics registry post-run by
/// [`record_metrics`](CorePerf::record_metrics) — the hot loop never
/// touches an atomic.
#[derive(Debug, Clone)]
pub struct CorePerf {
    /// Cycles the stall fast-forward skipped instead of stepping (the
    /// idle-skip path; zero means every cycle was stepped).
    pub busy_cycles_skipped: u64,
    /// Number of contiguous skip windows taken.
    pub skip_windows: u64,
    /// Log2-bucketed wake-list depth (pending wake tokens), sampled each
    /// time a blocked-head verdict is recorded.
    wake_depth_buckets: [u64; dsmt_obs::metrics::HISTOGRAM_BUCKETS],
}

impl Default for CorePerf {
    fn default() -> Self {
        CorePerf {
            busy_cycles_skipped: 0,
            skip_windows: 0,
            wake_depth_buckets: [0; dsmt_obs::metrics::HISTOGRAM_BUCKETS],
        }
    }
}

impl CorePerf {
    #[inline]
    fn sample_wake_depth(&mut self, depth: usize) {
        self.wake_depth_buckets[dsmt_obs::metrics::bucket_index(depth as u64)] += 1;
    }

    /// Folds these counters into the process-wide metrics registry
    /// (`core.busy_cycles_skipped`, `core.skip_windows`, and the
    /// `core.wake_list_depth` histogram).
    pub fn record_metrics(&self) {
        dsmt_obs::counter!("core.busy_cycles_skipped").add(self.busy_cycles_skipped);
        dsmt_obs::counter!("core.skip_windows").add(self.skip_windows);
        let depth = dsmt_obs::histogram!("core.wake_list_depth");
        for (i, &n) in self.wake_depth_buckets.iter().enumerate() {
            if n > 0 {
                depth.record_n(dsmt_obs::metrics::bucket_bounds(i).0, n);
            }
        }
    }
}

/// A deferred "instruction finishes executing" event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompletionEvent {
    thread: usize,
    rob: dsmt_uarch::RobToken,
    /// `Some(seq)` when the completing instruction is a conditional branch
    /// whose resolution may unblock fetch.
    branch_seq: Option<u64>,
}

/// The outcome of probing the head of an in-order window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeadProbe {
    Ready,
    Blocked {
        kind: SlotUse,
        /// When the blocking operand was produced by a load that missed,
        /// the register class of that operand (FP loads feed FP registers,
        /// integer loads feed integer registers) — used for the
        /// perceived-latency metric.
        miss_class: Option<RegClass>,
        /// The first cycle at which the blocking condition can clear, when
        /// it is known exactly (the blocking operand's recorded ready
        /// cycle). `None` when the bound is unknown (producer not issued
        /// yet, or a store-address-queue conflict).
        until: Option<u64>,
    },
}

/// The multithreaded access/execute-decoupled processor.
///
/// Shared across all hardware contexts: the issue logic (round-robin over
/// threads), the AP and EP functional units, and the memory hierarchy.
/// Everything else (fetch, dispatch, rename tables, register files, queues,
/// reorder buffer, branch predictor) is per-thread state held in the thread
/// contexts.
///
/// # Example
///
/// ```
/// use dsmt_core::{Processor, SimConfig};
///
/// let config = SimConfig::paper_multithreaded(2);
/// let mut cpu = Processor::with_spec_workload(config, 42);
/// let results = cpu.run(20_000);
/// assert!(results.ipc() > 0.5);
/// ```
pub struct Processor {
    config: SimConfig,
    threads: Vec<ThreadContext>,
    ap_fus: FuPool,
    ep_fus: FuPool,
    mem: MemorySystem,
    arbiter: RoundRobin,
    cycle: u64,
    completions: EventWheel<CompletionEvent>,
    /// Per-thread, per-side blocked-head verdicts with wheel-driven expiry
    /// (side 0 = AP window, side 1 = EP instruction queue).
    wakes: WakeList<BlockedCause>,
    /// When set, disables the wake list and the stall fast-forward: every
    /// head is re-probed every cycle. Differential-testing aid only.
    reference_model: bool,
    perf: CorePerf,
    ap_slots: UnitSlots,
    ep_slots: UnitSlots,
    perceived: PerceivedLatency,
    loads: u64,
    stores: u64,
    branches: u64,
    mispredictions: u64,
    /// Scratch buffers reused across cycles so the pipeline stages never
    /// allocate in steady state.
    scratch: Scratch,
}

/// Per-cycle scratch storage (see the stage methods for what each holds).
#[derive(Debug, Default)]
struct Scratch {
    /// This cycle's round-robin thread ordering (issue stage).
    order: Vec<usize>,
    /// Stall causes of the oldest non-issuable instructions (issue stage).
    blocked: Vec<SlotUse>,
    /// Per-thread pending-dispatch counts (fetch stage, I-COUNT metric).
    pending: Vec<usize>,
    /// Per-thread fetch eligibility (fetch stage).
    eligible: Vec<bool>,
    /// Threads selected to fetch this cycle (fetch stage).
    picks: Vec<usize>,
    /// Fast-forward replay: blocked-head kinds in rotation order.
    kinds: Vec<SlotUse>,
}

impl std::fmt::Debug for Processor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Processor")
            .field("cycle", &self.cycle)
            .field("threads", &self.threads.len())
            .field("retired", &self.total_retired())
            .finish_non_exhaustive()
    }
}

impl Processor {
    /// Creates a processor running `traces` (one per hardware thread) under
    /// `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the number of traces does
    /// not match `config.num_threads`.
    #[must_use]
    pub fn new(config: SimConfig, traces: Vec<Box<dyn TraceSource>>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid simulator config: {e}"));
        assert_eq!(
            traces.len(),
            config.num_threads,
            "need exactly one trace per hardware thread"
        );
        let threads = traces
            .into_iter()
            .enumerate()
            .map(|(id, trace)| ThreadContext::new(id, &config, trace))
            .collect();
        let mem_cfg = config.effective_mem();
        // Fast-path horizon for the completion wheel: an unqueued fill
        // (L1 detect + L2 + some bus slack) or a functional-unit latency,
        // whichever is larger. Deeper bus queueing spills to the wheel's
        // overflow heap, so this is a performance hint, not a correctness
        // bound.
        let horizon = (mem_cfg.l1d.hit_latency + mem_cfg.l2_latency + 64)
            .max(config.ap_latency.max(config.ep_latency) + 1);
        Processor {
            ap_fus: FuPool::new(config.ap_units, config.ap_latency, true),
            ep_fus: FuPool::new(config.ep_units, config.ep_latency, true),
            mem: MemorySystem::new(mem_cfg),
            arbiter: RoundRobin::new(config.num_threads),
            wakes: WakeList::new(config.num_threads, horizon),
            reference_model: false,
            perf: CorePerf::default(),
            threads,
            cycle: 0,
            completions: EventWheel::with_horizon(horizon),
            ap_slots: UnitSlots::default(),
            ep_slots: UnitSlots::default(),
            perceived: PerceivedLatency::default(),
            loads: 0,
            stores: 0,
            branches: 0,
            mispredictions: 0,
            scratch: Scratch::default(),
            config,
        }
    }

    /// Creates a processor running the paper's multithreaded SPEC FP95
    /// workload: each thread executes a sequence of all ten benchmark
    /// traces, rotated per thread, with per-thread address spaces.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_spec_workload(config: SimConfig, seed: u64) -> Self {
        let workload = ThreadWorkload::spec_fp95(seed);
        Self::with_workload(config, &workload)
    }

    /// Creates a processor running the given [`ThreadWorkload`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_workload(config: SimConfig, workload: &ThreadWorkload) -> Self {
        let traces: Vec<Box<dyn TraceSource>> = workload
            .build(config.num_threads)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn TraceSource>)
            .collect();
        Self::new(config, traces)
    }

    /// The configuration this processor was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current simulated cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total graduated instructions across all threads.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.threads.iter().map(|t| t.retired).sum()
    }

    /// Whether every thread has exhausted its trace and drained its
    /// pipeline.
    #[must_use]
    pub fn all_drained(&self) -> bool {
        self.threads.iter().all(ThreadContext::drained)
    }

    /// Scheduler-throughput counters accumulated so far (cycles skipped,
    /// wake-list depth). Not part of [`SimResults`]; see [`CorePerf`].
    #[must_use]
    pub fn perf(&self) -> &CorePerf {
        &self.perf
    }

    /// Switches to the naive reference scheduler: every window head is
    /// re-probed every cycle and stall windows are stepped cycle by cycle
    /// (no wake-list replay, no fast-forward). Statistics must stay
    /// bit-identical to the event-driven default — differential tests pin
    /// this.
    pub fn set_reference_model(&mut self, enabled: bool) {
        self.reference_model = enabled;
    }

    /// Simulates one cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        self.mem.begin_cycle(cycle);
        self.wakes.begin_cycle(cycle);
        self.process_completions(cycle);
        self.retire();
        let mut order = std::mem::take(&mut self.scratch.order);
        self.arbiter.ordering_into(&mut order);
        self.issue(Unit::Ap, &order, cycle);
        self.issue(Unit::Ep, &order, cycle);
        self.scratch.order = order;
        self.dispatch();
        self.fetch(cycle);
        self.cycle += 1;
    }

    /// Runs until `max_instructions` have graduated (or every trace has
    /// drained) and returns the accumulated results.
    pub fn run(&mut self, max_instructions: u64) -> SimResults {
        let cycle_cap = self.run_cap(max_instructions);
        while self.total_retired() < max_instructions
            && self.cycle < cycle_cap
            && !self.all_drained()
        {
            self.advance(cycle_cap - self.cycle);
        }
        self.results()
    }

    /// The safety-valve cycle cap a `run(max_instructions)` started now
    /// would use: even a pathologically stalled configuration retires at
    /// least one instruction every few hundred cycles, so the cap only
    /// guards against modelling bugs. Precompute it once when driving a
    /// sliced run via [`run_quantum`](Self::run_quantum).
    #[must_use]
    pub fn run_cap(&self, max_instructions: u64) -> u64 {
        self.cycle + max_instructions.saturating_mul(64) + 100_000
    }

    /// One quantum of a sliced run: advances exactly as
    /// `run(max_instructions)` would, but yields after at most `quantum`
    /// additional cycles so a driver can interleave several independent
    /// processors (the sweep layer's batched-cell drive loop). `cycle_cap`
    /// must be the value [`run_cap`](Self::run_cap) returned before the
    /// first quantum. Returns `true` once the run condition is met (budget
    /// retired, all traces drained, or cap hit). Accumulated statistics
    /// are bit-identical to a single `run` call: a stall skip clipped at a
    /// quantum boundary replays its per-cycle accounting additively, so
    /// splitting a window changes nothing.
    pub fn run_quantum(&mut self, max_instructions: u64, cycle_cap: u64, quantum: u64) -> bool {
        let slice_end = cycle_cap.min(self.cycle.saturating_add(quantum));
        while self.total_retired() < max_instructions
            && self.cycle < slice_end
            && !self.all_drained()
        {
            self.advance(slice_end - self.cycle);
        }
        self.total_retired() >= max_instructions || self.cycle >= cycle_cap || self.all_drained()
    }

    /// Runs for exactly `cycles` additional cycles.
    pub fn run_cycles(&mut self, cycles: u64) -> SimResults {
        let target = self.cycle + cycles;
        while self.cycle < target {
            if self.all_drained() {
                break;
            }
            self.advance(target - self.cycle);
        }
        self.results()
    }

    /// Advances the simulation by at least one and at most `max_cycles`
    /// cycles, fast-forwarding through provably inactive stall windows.
    /// Statistics and architectural state are bit-identical to stepping
    /// cycle by cycle.
    fn advance(&mut self, max_cycles: u64) {
        if max_cycles > 1 {
            if let Some(skipped) = self.try_fast_forward(max_cycles) {
                debug_assert!(skipped >= 2);
                return;
            }
        }
        self.step();
    }

    /// Attempts to batch-simulate a stall window starting at the current
    /// cycle. Succeeds only when the next `n >= 2` cycles are provably
    /// no-ops apart from per-cycle accounting:
    ///
    /// * no completion event is due (bounded via the event wheel);
    /// * no thread may fetch (buffer full, wrong path, branch limit, or
    ///   trace drained) — fetch eligibility only changes through completions;
    /// * no thread can dispatch (empty fetch buffer or a structural stall
    ///   that only retirement/issue could clear);
    /// * no ROB head is completed (so retirement does nothing);
    /// * every non-empty window head is blocked with an exactly known
    ///   wake-up cycle (the blocking operand's recorded ready cycle).
    ///
    /// Head verdicts come from the wake list: verdicts the issue stage
    /// already recorded are reused without touching the register files,
    /// and any head probed fresh here is recorded for the issue stage in
    /// turn. The skip target is the earliest of the verdict wake-ups and
    /// the completion wheel's next due event.
    ///
    /// On success it replays the per-cycle bookkeeping those `n` steps
    /// would have performed — issue-slot attribution (rotation-exact),
    /// perceived-latency stalls, arbiter rotation — and jumps the clock.
    /// Returns the number of cycles skipped.
    fn try_fast_forward(&mut self, max_cycles: u64) -> Option<u64> {
        let cycle = self.cycle;
        let max_unresolved = self.config.max_unresolved_branches;
        if self.reference_model {
            return None;
        }
        // Exclusive upper bound on the cycles we may skip.
        let mut wake = cycle.checked_add(max_cycles)?;

        let n_threads = self.threads.len();
        for t in 0..n_threads {
            {
                let thread = &self.threads[t];
                if thread.fetch_eligible(max_unresolved) {
                    return None;
                }
                if thread.rob.head_completed() {
                    return None;
                }
                if let Some(fetched) = thread.fetch_buffer.front() {
                    let inst = fetched.inst;
                    let unit = steer(inst.op);
                    let dispatch_blocked = thread.rob.is_full()
                        || thread.window(unit).is_full()
                        || (inst.op.is_store() && thread.saq.is_full())
                        || inst
                            .real_dest()
                            .is_some_and(|d| !thread.regs(d.class()).can_rename());
                    if !dispatch_blocked {
                        return None;
                    }
                }
            }
            for (side, unit) in [(0usize, Unit::Ap), (1usize, Unit::Ep)] {
                // Reuse the recorded verdict, or probe and record so the
                // issue stage replays it after the skip lands.
                let (until, fresh) = {
                    let thread = &self.threads[t];
                    let Some(head) = thread.window(unit).front() else {
                        continue;
                    };
                    if let Some((seq, until, _)) = self.wakes.blocked(t, side) {
                        debug_assert_eq!(seq, head.seq, "wake list tracks a stale head");
                        (until, None)
                    } else {
                        match probe_head(thread, head, cycle) {
                            HeadProbe::Blocked {
                                kind,
                                miss_class,
                                until: Some(u),
                            } => (u, Some((head.seq, BlockedCause { kind, miss_class }))),
                            // Ready, or blocked without a known bound.
                            _ => return None,
                        }
                    }
                };
                if let Some((seq, cause)) = fresh {
                    self.wakes.record_blocked(t, side, seq, until, cause);
                    self.perf.sample_wake_depth(self.wakes.pending());
                }
                wake = wake.min(until);
            }
        }

        // Completion events bound the window too. The wake wheel cannot:
        // every parked token belongs to a live verdict whose `until`
        // already bounds `wake` (heads only leave a window via issue, which
        // requires the probe state), so nothing on it fires earlier.
        if let Some(due) = self.completions.next_due_before(wake) {
            wake = due;
        }
        let skip = wake.saturating_sub(cycle);
        if skip < 2 {
            return None;
        }

        // Replay the accounting of `skip` idle cycles exactly. Slot-waste
        // attribution rotates with the round-robin ordering; rotation r is
        // used ceil/floor(skip / n) times depending on its offset from the
        // current start.
        let start = self.arbiter.next_start();
        let mut kinds = std::mem::take(&mut self.scratch.kinds);
        for (side, slots_total) in [(0usize, self.config.ap_units), (1, self.config.ep_units)] {
            let slots = if side == 0 {
                &mut self.ap_slots
            } else {
                &mut self.ep_slots
            };
            // Every blocked head carries a wake-list verdict here (empty
            // windows carry none), so the wake list *is* the entry table.
            let blocked_count = (0..n_threads)
                .filter(|&i| self.wakes.blocked(i, side).is_some())
                .count();
            if blocked_count == 0 {
                slots.record_n(SlotUse::WrongPathOrIdle, slots_total as u64 * skip);
                continue;
            }
            for rot in 0..n_threads {
                // Cycles in the window whose ordering starts at thread
                // `(start + rot) % n_threads`.
                let uses =
                    skip / n_threads as u64 + u64::from((rot as u64) < skip % n_threads as u64);
                if uses == 0 {
                    continue;
                }
                let first = (start + rot) % n_threads;
                // The blocked list in thread-priority order for this
                // rotation; wasted slots round-robin over it.
                kinds.clear();
                for i in 0..n_threads {
                    if let Some((_, _, cause)) = self.wakes.blocked((first + i) % n_threads, side) {
                        kinds.push(cause.kind);
                    }
                }
                debug_assert_eq!(kinds.len(), blocked_count);
                for slot in 0..slots_total {
                    slots.record_n(kinds[slot % kinds.len()], uses);
                }
            }
            // Perceived-latency stalls accrue once per blocked head per
            // cycle, independent of rotation.
            for i in 0..n_threads {
                if let Some((_, _, cause)) = self.wakes.blocked(i, side) {
                    match cause.miss_class {
                        Some(RegClass::Fp) => self.perceived.fp_stall_cycles += skip,
                        Some(RegClass::Int) => self.perceived.int_stall_cycles += skip,
                        None => {}
                    }
                }
            }
        }
        self.scratch.kinds = kinds;

        self.arbiter.advance(skip);
        self.completions.skip_to(wake);
        self.wakes.skip_to(wake);
        self.cycle = wake;
        self.perf.busy_cycles_skipped += skip;
        self.perf.skip_windows += 1;
        Some(skip)
    }

    /// A snapshot of the statistics accumulated so far.
    #[must_use]
    pub fn results(&self) -> SimResults {
        let mem_stats = self.mem.stats();
        let (mut predictions, mut mispredictions) = (0u64, 0u64);
        for t in &self.threads {
            let s = t.predictor.stats();
            predictions += s.predictions;
            mispredictions += s.mispredictions;
        }
        let branch_accuracy = if predictions == 0 {
            1.0
        } else {
            1.0 - mispredictions as f64 / predictions as f64
        };
        SimResults {
            cycles: self.cycle,
            instructions: self.total_retired(),
            per_thread_instructions: self.threads.iter().map(|t| t.retired).collect(),
            ap_slots: self.ap_slots,
            ep_slots: self.ep_slots,
            perceived: self.perceived,
            mem: mem_stats,
            bus_utilization: self.mem.bus_utilization(self.cycle.max(1)),
            branch_accuracy,
            loads: self.loads,
            stores: self.stores,
            branches: self.branches,
            mispredictions: self.mispredictions,
        }
    }

    // ------------------------------------------------------------------
    // Pipeline stages
    // ------------------------------------------------------------------

    fn process_completions(&mut self, cycle: u64) {
        // Destructured so the drain closure can borrow the thread array
        // while the wheel is mutably borrowed. Delivery order within a
        // cycle does not affect architectural state: each event touches
        // only its own ROB entry and its own branch bookkeeping.
        let Processor {
            completions,
            threads,
            ..
        } = self;
        completions.drain_due(cycle, |ev| {
            let thread = &mut threads[ev.thread];
            if thread.rob.contains(ev.rob) {
                thread.rob.mark_completed(ev.rob);
            }
            if let Some(seq) = ev.branch_seq {
                thread.unresolved_branches = thread.unresolved_branches.saturating_sub(1);
                if thread.blocked_on_mispredict == Some(seq) {
                    thread.blocked_on_mispredict = None;
                }
            }
        });
    }

    fn retire(&mut self) {
        let width = self.config.retire_width;
        for thread in &mut self.threads {
            // Borrow the ROB and the structures the retirement side-effects
            // touch disjointly, so retire_with can stream payloads without
            // collecting them into a Vec first.
            let ThreadContext {
                rob,
                ap_regs,
                ep_regs,
                saq,
                retired,
                ..
            } = thread;
            let n = rob.retire_with(width, |payload| {
                if let Some((class, phys)) = payload.prev_dest {
                    match class {
                        RegClass::Int => ap_regs.release(phys),
                        RegClass::Fp => ep_regs.release(phys),
                    }
                }
                if payload.is_store {
                    // Stores graduate in SAQ order; drop the oldest entry.
                    let popped = saq.pop();
                    debug_assert!(popped.is_some(), "store graduated without a SAQ entry");
                }
            });
            *retired += n as u64;
        }
    }

    fn issue(&mut self, unit: Unit, order: &[usize], cycle: u64) {
        let slots_total = match unit {
            Unit::Ap => self.config.ap_units,
            Unit::Ep => self.config.ep_units,
        };
        let mut used = 0usize;
        let mut blocked = std::mem::take(&mut self.scratch.blocked);
        blocked.clear();

        let side = match unit {
            Unit::Ap => 0usize,
            Unit::Ep => 1usize,
        };
        'threads: for &t in order {
            loop {
                if used >= slots_total {
                    break 'threads;
                }
                // O(1) replay: a recorded verdict still live this cycle
                // (the wake would have fired otherwise) means the head is
                // provably blocked — no register-file reads.
                if !self.reference_model {
                    if let Some((seq, _, cause)) = self.wakes.blocked(t, side) {
                        debug_assert_eq!(
                            self.threads[t].window(unit).front().map(|h| h.seq),
                            Some(seq),
                            "wake list tracks a stale head"
                        );
                        match cause.miss_class {
                            Some(RegClass::Fp) => self.perceived.fp_stall_cycles += 1,
                            Some(RegClass::Int) => self.perceived.int_stall_cycles += 1,
                            None => {}
                        }
                        blocked.push(cause.kind);
                        break;
                    }
                }
                let (probe, head_seq) = {
                    let thread = &self.threads[t];
                    match thread.window(unit).front() {
                        None => break,
                        Some(head) => (probe_head(thread, head, cycle), head.seq),
                    }
                };
                match probe {
                    HeadProbe::Ready => match self.issue_head(t, unit, cycle) {
                        Ok(()) => used += 1,
                        Err(kind) => {
                            blocked.push(kind);
                            break;
                        }
                    },
                    HeadProbe::Blocked {
                        kind,
                        miss_class,
                        until,
                    } => {
                        // Park the verdict on the wake list when the bound
                        // is known; the wheel re-arms the probe at exactly
                        // `until`.
                        if !self.reference_model {
                            if let Some(u) = until {
                                self.wakes.record_blocked(
                                    t,
                                    side,
                                    head_seq,
                                    u,
                                    BlockedCause { kind, miss_class },
                                );
                                self.perf.sample_wake_depth(self.wakes.pending());
                            }
                        }
                        // Perceived-latency accounting: the head cannot issue
                        // although an issue slot is free, because it waits on
                        // data from a load that missed.
                        match miss_class {
                            Some(RegClass::Fp) => self.perceived.fp_stall_cycles += 1,
                            Some(RegClass::Int) => self.perceived.int_stall_cycles += 1,
                            None => {}
                        }
                        blocked.push(kind);
                        break;
                    }
                }
            }
        }

        let slots = match unit {
            Unit::Ap => &mut self.ap_slots,
            Unit::Ep => &mut self.ep_slots,
        };
        slots.record_n(SlotUse::Useful, used as u64);
        let wasted = slots_total - used;
        if blocked.is_empty() {
            // Nothing was even available to consider: fetch starvation after
            // a misprediction, empty windows, or exhausted threads.
            slots.record_n(SlotUse::WrongPathOrIdle, wasted as u64);
        } else {
            // Attribute the wasted slots to the stall causes of the oldest
            // non-issuable instructions, round-robin when several threads
            // were blocked for different reasons.
            for i in 0..wasted {
                slots.record(blocked[i % blocked.len()]);
            }
        }
        self.scratch.blocked = blocked;
    }

    /// Issues the head instruction of thread `t`'s window for `unit`.
    /// Returns `Err` with a stall classification when a structural hazard
    /// (cache port, MSHR, functional unit) prevents issue after all.
    fn issue_head(&mut self, t: usize, unit: Unit, cycle: u64) -> Result<(), SlotUse> {
        let head: InflightInst = *self.threads[t]
            .window(unit)
            .front()
            .expect("issue_head called with an empty window");

        // Memory access first: it may be rejected for structural reasons, in
        // which case the instruction stays at the head and retries.
        let mut mem_outcome: Option<(bool, u64)> = None;
        if head.op.is_mem() {
            let mem_ref = head.mem.expect("memory instruction without address");
            let kind = if head.op.is_load() {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            match self.mem.try_access(cycle, mem_ref.addr, kind) {
                AccessResponse::Done { hit, ready_cycle } => {
                    mem_outcome = Some((hit, ready_cycle));
                }
                AccessResponse::NoPort | AccessResponse::NoMshr => return Err(SlotUse::Other),
            }
        }

        let fu_done = {
            let fus = match unit {
                Unit::Ap => &mut self.ap_fus,
                Unit::Ep => &mut self.ep_fus,
            };
            match fus.try_issue(cycle) {
                Some(done) => done,
                None => return Err(SlotUse::Other),
            }
        };
        let completion = match mem_outcome {
            Some((_, mem_ready)) => mem_ready.max(fu_done),
            None => fu_done,
        };

        {
            let thread = &mut self.threads[t];
            if let Some(DestOperand { class, phys }) = head.dest {
                thread.regs_mut(class).set_ready_cycle(phys, completion);
                if head.op.is_load() {
                    let missed = !mem_outcome.expect("load issued without memory outcome").0;
                    thread.flags_mut(class).set_load(phys, missed);
                }
            }
            if head.op.is_store() {
                thread.mark_store_executed(head.seq);
            }
        }

        if head.op.is_load() {
            self.loads += 1;
            if !mem_outcome.expect("load issued without memory outcome").0 {
                match head.op {
                    OpClass::LoadFp => self.perceived.fp_load_misses += 1,
                    OpClass::LoadInt => self.perceived.int_load_misses += 1,
                    _ => unreachable!("is_load covers exactly the two load classes"),
                }
            }
        } else if head.op.is_store() {
            self.stores += 1;
        }

        let branch_seq = if head.is_cond_branch {
            Some(head.seq)
        } else {
            None
        };
        self.completions.push(
            completion,
            CompletionEvent {
                thread: t,
                rob: head.rob,
                branch_seq,
            },
        );
        self.threads[t].window_mut(unit).pop();
        Ok(())
    }

    fn dispatch(&mut self) {
        let width = self.config.dispatch_width;
        for thread in &mut self.threads {
            let mut dispatched = 0usize;
            while dispatched < width {
                let Some(fetched) = thread.fetch_buffer.front().copied() else {
                    break;
                };
                let inst = fetched.inst;
                let unit = steer(inst.op);

                // Structural checks: ROB, target window, SAQ, rename registers.
                if thread.rob.is_full() || thread.window(unit).is_full() {
                    break;
                }
                if inst.op.is_store() && thread.saq.is_full() {
                    break;
                }
                if let Some(d) = inst.real_dest() {
                    if !thread.regs(d.class()).can_rename() {
                        break;
                    }
                }

                // Rename sources (current mappings).
                let mut srcs: [Option<SrcOperand>; 2] = [None, None];
                for (i, src) in [inst.src1, inst.src2].into_iter().enumerate() {
                    if let Some(r) = src {
                        if r.is_zero() {
                            continue;
                        }
                        let phys = thread.regs(r.class()).lookup(r.index() as usize);
                        // Store data (src1 of a store) is consumed at
                        // graduation, not at issue: it never gates the AP.
                        let gates_issue = !(inst.op.is_store() && i == 0);
                        srcs[i] = Some(SrcOperand {
                            class: r.class(),
                            phys,
                            gates_issue,
                        });
                    }
                }

                // Rename the destination.
                let mut dest = None;
                let mut prev_dest = None;
                if let Some(d) = inst.real_dest() {
                    let outcome = thread
                        .regs_mut(d.class())
                        .rename_dest(d.index() as usize)
                        .expect("rename availability was checked");
                    thread.flags_mut(d.class()).clear(outcome.new);
                    dest = Some(DestOperand {
                        class: d.class(),
                        phys: outcome.new,
                    });
                    prev_dest = Some((d.class(), outcome.previous));
                }

                let rob = thread
                    .rob
                    .push(RobPayload {
                        prev_dest,
                        is_store: inst.op.is_store(),
                    })
                    .expect("ROB fullness was checked");

                if inst.op.is_store() {
                    thread
                        .saq
                        .push(SaqEntry {
                            seq: fetched.seq,
                            mem: inst.mem.expect("store without address"),
                            executed: false,
                        })
                        .expect("SAQ fullness was checked");
                }

                let inflight = InflightInst {
                    seq: fetched.seq,
                    op: inst.op,
                    srcs,
                    dest,
                    rob,
                    mem: inst.mem,
                    is_cond_branch: inst.op.is_cond_branch(),
                };
                thread
                    .window_mut(unit)
                    .push(inflight)
                    .expect("window fullness was checked");
                thread.fetch_buffer.pop_front();
                dispatched += 1;
            }
        }
    }

    fn fetch(&mut self, cycle: u64) {
        let max_unresolved = self.config.max_unresolved_branches;
        let mut pending = std::mem::take(&mut self.scratch.pending);
        let mut eligible = std::mem::take(&mut self.scratch.eligible);
        let mut picks = std::mem::take(&mut self.scratch.picks);
        pending.clear();
        eligible.clear();
        pending.extend(self.threads.iter().map(ThreadContext::pending_dispatch));
        eligible.extend(
            self.threads
                .iter()
                .map(|t| t.fetch_eligible(max_unresolved)),
        );
        match self.config.fetch_policy {
            crate::FetchPolicy::ICount => icount_pick_into(
                &pending,
                &eligible,
                self.config.fetch_threads_per_cycle,
                cycle as usize,
                &mut picks,
            ),
            crate::FetchPolicy::RoundRobin => round_robin_pick_into(
                &eligible,
                self.config.fetch_threads_per_cycle,
                cycle as usize,
                &mut picks,
            ),
        }
        for &t in &picks {
            let thread = &mut self.threads[t];
            for _ in 0..self.config.fetch_width {
                if thread.fetch_buffer.len() >= thread.fetch_buffer_capacity {
                    break;
                }
                if thread.unresolved_branches >= max_unresolved {
                    break;
                }
                let Some(inst) = thread.trace.next_instruction() else {
                    thread.trace_done = true;
                    break;
                };
                let seq = thread.next_seq;
                thread.next_seq += 1;
                let mut stop_group = false;
                if inst.op.is_cond_branch() {
                    let actual = inst.branch.map(|b| b.taken).unwrap_or(false);
                    let correct = thread.predictor.predict_and_train(inst.pc, actual);
                    thread.unresolved_branches += 1;
                    self.branches += 1;
                    if !correct {
                        self.mispredictions += 1;
                        // Fetch continues down the wrong path (useless work)
                        // until the branch resolves: model it by blocking
                        // fetch for this thread until resolution.
                        thread.blocked_on_mispredict = Some(seq);
                        stop_group = true;
                    }
                    if actual {
                        // Fetch groups end at the first taken branch.
                        stop_group = true;
                    }
                } else if inst.op.is_control() {
                    stop_group = true;
                }
                thread.fetch_buffer.push_back(FetchedInst { seq, inst });
                if stop_group {
                    break;
                }
            }
        }
        self.scratch.pending = pending;
        self.scratch.eligible = eligible;
        self.scratch.picks = picks;
    }
}

/// Decides whether the head of an in-order window can issue this cycle, and
/// if not, why.
fn probe_head(thread: &ThreadContext, head: &InflightInst, cycle: u64) -> HeadProbe {
    for src in head.srcs.iter().flatten() {
        if !src.gates_issue {
            continue;
        }
        let ready_cycle = thread.regs(src.class).ready_cycle(src.phys);
        if ready_cycle > cycle {
            let flags = thread.flags(src.class);
            let from_load = flags.is_from_load(src.phys);
            let missed = flags.is_load_miss(src.phys);
            return HeadProbe::Blocked {
                kind: if from_load {
                    SlotUse::WaitMemory
                } else {
                    SlotUse::WaitFu
                },
                miss_class: if missed { Some(src.class) } else { None },
                // A finite ready cycle never moves once recorded (the
                // producer has issued, and the physical register cannot be
                // re-renamed while this instruction still references it),
                // so the head is provably blocked for this exact reason
                // until then.
                until: (ready_cycle != u64::MAX).then_some(ready_cycle),
            };
        }
    }
    if head.op.is_load() {
        let mem = head.mem.expect("load without address");
        if thread.load_blocked_by_store(head.seq, &mem) {
            return HeadProbe::Blocked {
                kind: SlotUse::Other,
                miss_class: None,
                // Cleared by a store graduating: not known in advance.
                until: None,
            };
        }
    }
    HeadProbe::Ready
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmt_isa::{ArchReg, BranchInfo, Instruction};
    use dsmt_trace::{BenchmarkProfile, SyntheticTrace, VecTrace};

    fn single_thread_config() -> SimConfig {
        SimConfig::paper_multithreaded(1)
    }

    fn boxed(trace: VecTrace) -> Vec<Box<dyn TraceSource>> {
        vec![Box::new(trace) as Box<dyn TraceSource>]
    }

    /// A tiny independent-ALU kernel: every instruction writes a different
    /// register with no dependences, so nothing should ever stall.
    fn independent_alu_kernel(n: usize) -> VecTrace {
        let insts = (0..n)
            .map(|i| {
                Instruction::new(i as u64 * 4, OpClass::IntAlu)
                    .with_dest(ArchReg::int((i % 8 + 1) as u8))
                    .with_src1(ArchReg::int(16))
            })
            .collect();
        VecTrace::new("alu", insts)
    }

    #[test]
    fn empty_trace_drains_immediately() {
        let mut cpu = Processor::new(single_thread_config(), boxed(VecTrace::new("e", vec![])));
        let r = cpu.run(1000);
        assert_eq!(r.instructions, 0);
        assert!(cpu.all_drained());
    }

    #[test]
    fn independent_alu_retires_everything() {
        let mut cpu = Processor::new(single_thread_config(), boxed(independent_alu_kernel(1000)));
        let r = cpu.run(10_000);
        assert_eq!(r.instructions, 1000);
        // 4 AP units, no dependences: IPC should approach 4.
        assert!(r.ipc() > 2.5, "IPC was {}", r.ipc());
        // Everything is an AP instruction; the EP should be completely idle.
        assert_eq!(r.ep_slots.useful, 0);
        assert!(r.ap_slots.useful >= 1000);
    }

    #[test]
    fn dependent_fp_chain_is_limited_by_ep_latency() {
        // A single serial FP chain: IPC cannot exceed 1/ep_latency on the EP
        // side, and the whole program is EP-bound.
        let n = 400;
        let insts: Vec<Instruction> = (0..n)
            .map(|i| {
                Instruction::new(i as u64 * 4, OpClass::FpAdd)
                    .with_dest(ArchReg::fp(1))
                    .with_src1(ArchReg::fp(1))
                    .with_src2(ArchReg::fp(2))
            })
            .collect();
        let mut cpu = Processor::new(single_thread_config(), boxed(VecTrace::new("chain", insts)));
        let r = cpu.run(10_000);
        assert_eq!(r.instructions, n as u64);
        let ipc = r.ipc();
        assert!(ipc < 0.35, "serial chain IPC should be ~0.25, was {ipc}");
        assert!(
            r.ep_slots.wait_fu > r.ep_slots.useful,
            "most EP slots should be lost waiting on FU results"
        );
    }

    #[test]
    fn load_miss_latency_is_exposed_without_decoupling_hidden_with_it() {
        // One load followed (far later in the EP stream) by its consumer:
        // with a deep IQ the consumer is reached long after the data
        // arrives; with the IQ disabled the consumer waits.
        let make_trace = || {
            let mut insts = Vec::new();
            for k in 0..200u64 {
                // A streaming load: one miss per 32-byte line (every 4th load),
                // so outstanding misses stay well below the MSHR limit.
                insts.push(
                    Instruction::new(0x1000 + k * 4, OpClass::LoadFp)
                        .with_dest(ArchReg::fp((1 + (k % 8)) as u8))
                        .with_src1(ArchReg::int(1))
                        .with_mem(0x10_0000 + k * 8, 8),
                );
                // Independent AP work to keep the AP busy (writing the zero
                // register so the AP free list never throttles dispatch —
                // this test isolates the effect of the instruction queue).
                for j in 0..4u64 {
                    insts.push(
                        Instruction::new(0x2000 + j * 4, OpClass::IntAlu)
                            .with_dest(ArchReg::int(31))
                            .with_src1(ArchReg::int(16)),
                    );
                }
                // EP consumer of the load plus some EP work.
                insts.push(
                    Instruction::new(0x3000 + k * 4, OpClass::FpAdd)
                        .with_dest(ArchReg::fp(20))
                        .with_src1(ArchReg::fp(20))
                        .with_src2(ArchReg::fp((1 + (k % 8)) as u8)),
                );
            }
            VecTrace::new("loads", insts)
        };
        let decoupled_cfg = single_thread_config().with_l2_latency(64);
        let non_decoupled_cfg = decoupled_cfg.clone().with_decoupled(false);

        let r_dec = Processor::new(decoupled_cfg, boxed(make_trace())).run(10_000);
        let r_non = Processor::new(non_decoupled_cfg, boxed(make_trace())).run(10_000);

        // 200 loads streaming over 50 distinct 32-byte lines: 50 primary misses.
        assert!(r_dec.perceived.fp_load_misses >= 40);
        assert!(r_non.perceived.fp_load_misses >= 40);
        assert!(
            r_dec.perceived.fp() < r_non.perceived.fp(),
            "decoupling must hide more latency: dec {} vs non {}",
            r_dec.perceived.fp(),
            r_non.perceived.fp()
        );
        assert!(r_dec.ipc() > r_non.ipc());
    }

    #[test]
    fn branch_mispredictions_cost_fetch_cycles() {
        // Alternating taken/not-taken branches defeat the 2-bit predictor.
        let mut insts = Vec::new();
        for k in 0..500u64 {
            insts.push(
                Instruction::new(0x100, OpClass::CondBranch)
                    .with_src1(ArchReg::int(1))
                    .with_branch(BranchInfo::new(k % 2 == 0, 0x100)),
            );
            insts.push(
                Instruction::new(0x104 + k * 4, OpClass::IntAlu)
                    .with_dest(ArchReg::int(2))
                    .with_src1(ArchReg::int(16)),
            );
        }
        let mut cpu = Processor::new(single_thread_config(), boxed(VecTrace::new("br", insts)));
        let r = cpu.run(10_000);
        assert!(r.branch_accuracy < 0.8, "accuracy {}", r.branch_accuracy);
        assert!(r.mispredictions > 100);
        assert!(
            r.ap_slots.wrong_path_or_idle > 0,
            "mispredictions must show up as idle slots"
        );
    }

    #[test]
    fn store_load_conflict_blocks_until_graduation() {
        // A store followed immediately by a load of the same address: the
        // load must wait for the store to leave the SAQ.
        let insts = vec![
            Instruction::new(0x0, OpClass::StoreFp)
                .with_src1(ArchReg::fp(1))
                .with_src2(ArchReg::int(1))
                .with_mem(0x8000, 8),
            Instruction::new(0x4, OpClass::LoadFp)
                .with_dest(ArchReg::fp(2))
                .with_src1(ArchReg::int(1))
                .with_mem(0x8000, 8),
        ];
        let mut cpu = Processor::new(single_thread_config(), boxed(VecTrace::new("st-ld", insts)));
        let r = cpu.run(100);
        assert_eq!(r.instructions, 2);
        assert!(
            r.ap_slots.other > 0,
            "the blocked load must show as 'other'"
        );
    }

    #[test]
    fn multithreading_increases_throughput_on_ep_bound_code() {
        // EP-bound synthetic benchmark: one thread cannot fill 4 EP units,
        // four threads nearly can.
        let profile = BenchmarkProfile::baseline("epbound");
        let run = |threads: usize| {
            let cfg = SimConfig::paper_multithreaded(threads);
            let traces: Vec<Box<dyn TraceSource>> = (0..threads)
                .map(|t| {
                    Box::new(SyntheticTrace::with_offset(
                        &profile,
                        7,
                        t as u64 * (0x0800_0000 + 0x1_a000),
                    )) as Box<dyn TraceSource>
                })
                .collect();
            Processor::new(cfg, traces).run(40_000).ipc()
        };
        let one = run(1);
        let four = run(4);
        assert!(one > 1.0, "single-thread IPC {one}");
        assert!(four > 1.7 * one, "4-thread IPC {four} vs 1-thread {one}");
        assert!(four < 8.0);
    }

    #[test]
    fn slot_accounting_is_conserved() {
        let cfg = SimConfig::paper_multithreaded(2);
        let mut cpu = Processor::with_spec_workload(cfg.clone(), 3);
        let r = cpu.run(30_000);
        assert_eq!(r.ap_slots.total(), r.cycles * cfg.ap_units as u64);
        assert_eq!(r.ep_slots.total(), r.cycles * cfg.ep_units as u64);
        assert!(r.instructions >= 30_000);
        // Useful slots must equal issued instructions (every retired
        // instruction issued exactly once, plus those still in flight).
        assert!(r.ap_slots.useful + r.ep_slots.useful >= r.instructions);
    }

    #[test]
    fn results_snapshot_is_stable_between_runs() {
        let cfg = SimConfig::paper_multithreaded(2);
        let a = Processor::with_spec_workload(cfg.clone(), 11).run(20_000);
        let b = Processor::with_spec_workload(cfg, 11).run(20_000);
        assert_eq!(a, b, "simulation must be deterministic");
    }

    /// Not a correctness test: prints a breakdown used while calibrating the
    /// model. Run with `cargo test -p dsmt-core diag -- --ignored --nocapture`.
    #[test]
    #[ignore = "diagnostic output only"]
    fn diag_thread_scaling_breakdown() {
        for threads in [1usize, 2, 3, 4, 6] {
            let cfg = SimConfig::paper_multithreaded(threads);
            let r = Processor::with_spec_workload(cfg, 42).run(120_000);
            println!(
                "threads={threads} ipc={:.2} ap(useful/mem/fu/idle/other)={:.2}/{:.2}/{:.2}/{:.2}/{:.2} \
                 ep={:.2}/{:.2}/{:.2}/{:.2}/{:.2} ld_miss={:.3} st_miss={:.3} bus={:.2} \
                 perc_fp={:.1} perc_int={:.1} acc={:.2}",
                r.ipc(),
                r.ap_slots.fraction(SlotUse::Useful),
                r.ap_slots.fraction(SlotUse::WaitMemory),
                r.ap_slots.fraction(SlotUse::WaitFu),
                r.ap_slots.fraction(SlotUse::WrongPathOrIdle),
                r.ap_slots.fraction(SlotUse::Other),
                r.ep_slots.fraction(SlotUse::Useful),
                r.ep_slots.fraction(SlotUse::WaitMemory),
                r.ep_slots.fraction(SlotUse::WaitFu),
                r.ep_slots.fraction(SlotUse::WrongPathOrIdle),
                r.ep_slots.fraction(SlotUse::Other),
                r.load_miss_ratio(),
                r.store_miss_ratio(),
                r.bus_utilization,
                r.perceived.fp(),
                r.perceived.int(),
                r.branch_accuracy,
            );
        }
    }

    #[test]
    #[should_panic(expected = "one trace per hardware thread")]
    fn wrong_trace_count_panics() {
        let _ = Processor::new(
            SimConfig::paper_multithreaded(2),
            boxed(VecTrace::new("x", vec![])),
        );
    }

    #[test]
    #[should_panic(expected = "invalid simulator config")]
    fn invalid_config_panics() {
        let mut cfg = SimConfig::paper_multithreaded(1);
        cfg.ap_units = 0;
        let _ = Processor::new(cfg, boxed(VecTrace::new("x", vec![])));
    }
}
