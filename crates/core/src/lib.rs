//! # dsmt-core
//!
//! A cycle-accurate simulator of a **multithreaded access/execute-decoupled
//! processor**, reproducing the architecture evaluated in
//! *"The Synergy of Multithreading and Access/Execute Decoupling"*
//! (Parcerisa & González, HPCA 1999).
//!
//! ## The architecture in one paragraph
//!
//! Every hardware context executes in decoupled mode: its instruction
//! stream is split at dispatch into an **Address Processor** (integer
//! computation, all memory operations, branches; 1-cycle functional units)
//! and an **Execute Processor** (floating-point computation; 4-cycle
//! functional units). Both issue *in order*, per thread, per unit. A
//! per-thread **Instruction Queue** in front of the EP lets the AP slip
//! ahead, so load data usually arrives long before the EP reaches the
//! consumer — that is how decoupling hides memory latency without
//! out-of-order issue. Simultaneous multithreading shares the 8 issue slots,
//! the functional units and the caches among contexts (round-robin priority,
//! 2-thread/8-wide I-COUNT fetch), supplying the parallelism that a single
//! in-order thread lacks to cover functional-unit latency.
//!
//! ## Quick start
//!
//! ```
//! use dsmt_core::{Processor, SimConfig};
//!
//! // The paper's Figure-2 machine with 3 hardware threads and a 16-cycle L2.
//! let config = SimConfig::paper_multithreaded(3);
//! let mut cpu = Processor::with_spec_workload(config, 42);
//! let results = cpu.run(50_000);
//! println!("IPC = {:.2}", results.ipc());
//! assert!(results.ipc() > 1.0);
//! ```
//!
//! The crate exposes everything the paper's figures need:
//! [`SimResults::ipc`], the per-unit issue-slot breakdown
//! ([`SimResults::ap_slots`] / [`SimResults::ep_slots`], Figure 3), the
//! perceived load-miss latency ([`SimResults::perceived`], Figures 1 and 4),
//! cache miss ratios and external-bus utilisation (Figures 1-c and 5).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod processor;
mod stats;
mod thread;

pub use config::{FetchPolicy, SimConfig};
pub use processor::{CorePerf, Processor};
pub use stats::{PerceivedLatency, SimResults, SlotUse, UnitSlots};
