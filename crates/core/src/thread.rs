//! Per-hardware-context state.
//!
//! The paper replicates, per context: the fetch and dispatch stages
//! (including branch prediction and register map tables), the register
//! files, the instruction queue, and the store address queue. This module
//! holds exactly that per-thread state; everything shared (functional
//! units, issue slots, caches, bus) lives in [`crate::Processor`].

use std::collections::VecDeque;

use dsmt_isa::{Instruction, MemRef, OpClass, RegClass, Unit};
use dsmt_trace::TraceSource;
use dsmt_uarch::{BoundedQueue, BranchPredictor, PhysReg, RegisterFile, Rob, RobToken};

use crate::SimConfig;

/// A renamed source operand.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SrcOperand {
    pub class: RegClass,
    pub phys: PhysReg,
    /// Whether this operand must be ready before the instruction may issue.
    /// Store *data* operands do not gate issue (the SAQ holds the store
    /// until its data arrives, without blocking the AP).
    pub gates_issue: bool,
}

/// A renamed destination operand.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DestOperand {
    pub class: RegClass,
    pub phys: PhysReg,
}

/// A dispatched, renamed, in-flight instruction waiting in an in-order
/// issue window (the AP window or the EP instruction queue).
///
/// `Copy` on purpose: the issue stage reads the window head by value every
/// cycle, and a plain bitwise copy keeps that path allocation- and
/// clone-free.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InflightInst {
    /// Per-thread program-order sequence number (assigned at fetch).
    pub seq: u64,
    pub op: OpClass,
    pub srcs: [Option<SrcOperand>; 2],
    pub dest: Option<DestOperand>,
    pub rob: RobToken,
    pub mem: Option<MemRef>,
    pub is_cond_branch: bool,
}

/// Retirement bookkeeping carried through the reorder buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RobPayload {
    /// Physical register superseded by this instruction's rename, released
    /// at graduation.
    pub prev_dest: Option<(RegClass, PhysReg)>,
    pub is_store: bool,
}

/// A store tracked by the store address queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SaqEntry {
    pub seq: u64,
    pub mem: MemRef,
    /// Whether the store has executed (address known to the hardware).
    pub executed: bool,
}

/// An instruction that has been fetched but not yet dispatched.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchedInst {
    pub seq: u64,
    pub inst: Instruction,
}

/// Per-physical-register producer metadata used for stall classification
/// and the perceived-latency metric.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProducerFlags {
    from_load: Vec<bool>,
    load_missed: Vec<bool>,
}

impl ProducerFlags {
    fn new(n: usize) -> Self {
        ProducerFlags {
            from_load: vec![false; n],
            load_missed: vec![false; n],
        }
    }

    pub fn clear(&mut self, reg: PhysReg) {
        self.from_load[reg.0 as usize] = false;
        self.load_missed[reg.0 as usize] = false;
    }

    pub fn set_load(&mut self, reg: PhysReg, missed: bool) {
        self.from_load[reg.0 as usize] = true;
        self.load_missed[reg.0 as usize] = missed;
    }

    pub fn is_from_load(&self, reg: PhysReg) -> bool {
        self.from_load[reg.0 as usize]
    }

    pub fn is_load_miss(&self, reg: PhysReg) -> bool {
        self.load_missed[reg.0 as usize]
    }
}

/// All per-context state of the multithreaded decoupled processor.
pub(crate) struct ThreadContext {
    pub id: usize,
    pub trace: Box<dyn TraceSource>,
    pub fetch_buffer: VecDeque<FetchedInst>,
    pub fetch_buffer_capacity: usize,
    /// Integer (AP) rename map + physical register file.
    pub ap_regs: RegisterFile,
    /// Floating-point (EP) rename map + physical register file.
    pub ep_regs: RegisterFile,
    pub ap_flags: ProducerFlags,
    pub ep_flags: ProducerFlags,
    /// The AP's in-order issue window.
    pub ap_window: BoundedQueue<InflightInst>,
    /// The EP's instruction queue — the structure that provides decoupling.
    pub iq: BoundedQueue<InflightInst>,
    /// The store address queue.
    pub saq: BoundedQueue<SaqEntry>,
    pub rob: Rob<RobPayload>,
    pub predictor: BranchPredictor,
    /// Next program-order sequence number to assign at fetch.
    pub next_seq: u64,
    /// Conditional branches fetched but not yet resolved.
    pub unresolved_branches: usize,
    /// When `Some(seq)`, fetch is on the wrong path of the branch with that
    /// sequence number and stays blocked until it resolves.
    pub blocked_on_mispredict: Option<u64>,
    /// Whether the trace has been exhausted.
    pub trace_done: bool,
    /// Graduated instructions.
    pub retired: u64,
}

impl std::fmt::Debug for ThreadContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadContext")
            .field("id", &self.id)
            .field("retired", &self.retired)
            .field("fetch_buffer", &self.fetch_buffer.len())
            .field("ap_window", &self.ap_window.len())
            .field("iq", &self.iq.len())
            .field("saq", &self.saq.len())
            .field("rob", &self.rob.len())
            .finish_non_exhaustive()
    }
}

impl ThreadContext {
    /// Creates the per-thread state for thread `id` under `config`, fed by
    /// `trace`.
    pub fn new(id: usize, config: &SimConfig, trace: Box<dyn TraceSource>) -> Self {
        let ap_phys = config.effective_ap_phys_regs();
        let ep_phys = config.effective_ep_phys_regs();
        ThreadContext {
            id,
            trace,
            fetch_buffer: VecDeque::with_capacity(config.fetch_buffer_capacity),
            fetch_buffer_capacity: config.fetch_buffer_capacity,
            ap_regs: RegisterFile::new(32, ap_phys),
            ep_regs: RegisterFile::new(32, ep_phys),
            ap_flags: ProducerFlags::new(ap_phys),
            ep_flags: ProducerFlags::new(ep_phys),
            ap_window: BoundedQueue::new(config.effective_ap_window_capacity()),
            iq: BoundedQueue::new(config.effective_iq_capacity()),
            saq: BoundedQueue::new(config.effective_saq_capacity()),
            rob: Rob::new(config.effective_rob_capacity()),
            predictor: BranchPredictor::new(config.bht_entries),
            next_seq: 0,
            unresolved_branches: 0,
            blocked_on_mispredict: None,
            trace_done: false,
            retired: 0,
        }
    }

    /// The in-order window for the given unit.
    pub fn window(&self, unit: Unit) -> &BoundedQueue<InflightInst> {
        match unit {
            Unit::Ap => &self.ap_window,
            Unit::Ep => &self.iq,
        }
    }

    /// The in-order window for the given unit (mutable).
    pub fn window_mut(&mut self, unit: Unit) -> &mut BoundedQueue<InflightInst> {
        match unit {
            Unit::Ap => &mut self.ap_window,
            Unit::Ep => &mut self.iq,
        }
    }

    /// Register file for a register class.
    pub fn regs(&self, class: RegClass) -> &RegisterFile {
        match class {
            RegClass::Int => &self.ap_regs,
            RegClass::Fp => &self.ep_regs,
        }
    }

    /// Register file for a register class (mutable).
    pub fn regs_mut(&mut self, class: RegClass) -> &mut RegisterFile {
        match class {
            RegClass::Int => &mut self.ap_regs,
            RegClass::Fp => &mut self.ep_regs,
        }
    }

    /// Producer flags for a register class.
    pub fn flags(&self, class: RegClass) -> &ProducerFlags {
        match class {
            RegClass::Int => &self.ap_flags,
            RegClass::Fp => &self.ep_flags,
        }
    }

    /// Producer flags for a register class (mutable).
    pub fn flags_mut(&mut self, class: RegClass) -> &mut ProducerFlags {
        match class {
            RegClass::Int => &mut self.ap_flags,
            RegClass::Fp => &mut self.ep_flags,
        }
    }

    /// Number of instructions pending dispatch (the I-COUNT metric used by
    /// the fetch policy).
    pub fn pending_dispatch(&self) -> usize {
        self.fetch_buffer.len()
    }

    /// Whether the thread may fetch this cycle.
    pub fn fetch_eligible(&self, max_unresolved_branches: usize) -> bool {
        !self.trace_done
            && self.blocked_on_mispredict.is_none()
            && self.unresolved_branches < max_unresolved_branches
            && self.fetch_buffer.len() < self.fetch_buffer_capacity
    }

    /// Whether the thread has completely drained (no work anywhere).
    pub fn drained(&self) -> bool {
        self.trace_done
            && self.fetch_buffer.is_empty()
            && self.ap_window.is_empty()
            && self.iq.is_empty()
            && self.rob.is_empty()
    }

    /// Whether a load with sequence number `load_seq` and memory reference
    /// `mem` must wait because an older store in the SAQ may conflict.
    ///
    /// A load is blocked by an older store that overlaps its bytes until
    /// that store leaves the SAQ at graduation (no forwarding network is
    /// modelled). Older stores whose address is not yet known do not block
    /// (optimistic disambiguation, as allowed by the SAQ design).
    pub fn load_blocked_by_store(&self, load_seq: u64, mem: &MemRef) -> bool {
        self.saq
            .iter()
            .any(|e| e.seq < load_seq && e.mem.overlaps(mem))
    }

    /// Marks the SAQ entry of the store with sequence `seq` as executed.
    pub fn mark_store_executed(&mut self, seq: u64) {
        for e in self.saq.iter_mut() {
            if e.seq == seq {
                e.executed = true;
                return;
            }
        }
    }
}
