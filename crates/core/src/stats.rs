//! Simulation statistics and results.

use dsmt_mem::MemStats;
use serde::{Deserialize, Serialize};

/// Why an issue slot went unused in a given cycle.
///
/// These are the categories of the paper's Figure 3 ("issue slots
/// breakdown"): useful work, waiting for an operand from memory, waiting for
/// an operand from a functional unit, wrong-path/idle, and other
/// (structural) causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotUse {
    /// The slot issued an instruction.
    Useful,
    /// The oldest candidate instruction was waiting for a value produced by
    /// an in-flight load (the load data has not returned from the memory
    /// hierarchy yet).
    WaitMemory,
    /// The oldest candidate instruction was waiting for a value still being
    /// computed by a functional unit.
    WaitFu,
    /// No instruction was available to issue (fetch starvation after a
    /// branch misprediction, empty windows, thread exhausted).
    WrongPathOrIdle,
    /// Structural causes: functional units busy, no cache port, MSHRs full,
    /// store-address-queue conflicts.
    Other,
}

impl SlotUse {
    /// All categories in display order.
    pub const ALL: [SlotUse; 5] = [
        SlotUse::Useful,
        SlotUse::WaitMemory,
        SlotUse::WaitFu,
        SlotUse::WrongPathOrIdle,
        SlotUse::Other,
    ];

    /// Short label used in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SlotUse::Useful => "useful",
            SlotUse::WaitMemory => "wait-mem",
            SlotUse::WaitFu => "wait-fu",
            SlotUse::WrongPathOrIdle => "idle",
            SlotUse::Other => "other",
        }
    }
}

/// Issue-slot usage counters for one processing unit (AP or EP).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitSlots {
    /// Slots that issued an instruction.
    pub useful: u64,
    /// Slots lost waiting for load data.
    pub wait_memory: u64,
    /// Slots lost waiting for functional-unit results.
    pub wait_fu: u64,
    /// Slots lost to fetch starvation / wrong path / empty windows.
    pub wrong_path_or_idle: u64,
    /// Slots lost to structural hazards.
    pub other: u64,
}

impl UnitSlots {
    /// Total slots accounted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.useful + self.wait_memory + self.wait_fu + self.wrong_path_or_idle + self.other
    }

    /// Records one slot of the given kind.
    pub fn record(&mut self, kind: SlotUse) {
        match kind {
            SlotUse::Useful => self.useful += 1,
            SlotUse::WaitMemory => self.wait_memory += 1,
            SlotUse::WaitFu => self.wait_fu += 1,
            SlotUse::WrongPathOrIdle => self.wrong_path_or_idle += 1,
            SlotUse::Other => self.other += 1,
        }
    }

    /// Records `n` slots of the given kind.
    pub fn record_n(&mut self, kind: SlotUse, n: u64) {
        match kind {
            SlotUse::Useful => self.useful += n,
            SlotUse::WaitMemory => self.wait_memory += n,
            SlotUse::WaitFu => self.wait_fu += n,
            SlotUse::WrongPathOrIdle => self.wrong_path_or_idle += n,
            SlotUse::Other => self.other += n,
        }
    }

    /// The fraction of slots in the given category, in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self, kind: SlotUse) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let count = match kind {
            SlotUse::Useful => self.useful,
            SlotUse::WaitMemory => self.wait_memory,
            SlotUse::WaitFu => self.wait_fu,
            SlotUse::WrongPathOrIdle => self.wrong_path_or_idle,
            SlotUse::Other => self.other,
        };
        count as f64 / total as f64
    }

    /// Utilisation = fraction of useful slots.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.fraction(SlotUse::Useful)
    }
}

/// Perceived load-miss latency accounting.
///
/// The paper's metric: "the average number of stall cycles of instructions
/// that use data from a previous uncompleted load", counted only for loads
/// that *missed* (load hits are excluded), and only when a free issue slot
/// was available.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerceivedLatency {
    /// Stall cycles charged to waiting on missed FP-load data.
    pub fp_stall_cycles: u64,
    /// Stall cycles charged to waiting on missed integer-load data.
    pub int_stall_cycles: u64,
    /// Number of FP loads that missed in the L1.
    pub fp_load_misses: u64,
    /// Number of integer loads that missed in the L1.
    pub int_load_misses: u64,
}

impl PerceivedLatency {
    /// Average perceived FP-load miss latency (cycles per missed FP load).
    #[must_use]
    pub fn fp(&self) -> f64 {
        avg(self.fp_stall_cycles, self.fp_load_misses)
    }

    /// Average perceived integer-load miss latency.
    #[must_use]
    pub fn int(&self) -> f64 {
        avg(self.int_stall_cycles, self.int_load_misses)
    }

    /// Average perceived latency over all load misses.
    #[must_use]
    pub fn combined(&self) -> f64 {
        avg(
            self.fp_stall_cycles + self.int_stall_cycles,
            self.fp_load_misses + self.int_load_misses,
        )
    }
}

fn avg(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The complete results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResults {
    /// Simulated cycles.
    pub cycles: u64,
    /// Graduated (retired) instructions, summed over threads.
    pub instructions: u64,
    /// Graduated instructions per thread.
    pub per_thread_instructions: Vec<u64>,
    /// Issue-slot breakdown for the Address Processor.
    pub ap_slots: UnitSlots,
    /// Issue-slot breakdown for the Execute Processor.
    pub ep_slots: UnitSlots,
    /// Perceived load-miss latency accounting.
    pub perceived: PerceivedLatency,
    /// Memory system statistics (miss ratios, bus traffic).
    pub mem: MemStats,
    /// External L1–L2 bus utilisation over the run.
    pub bus_utilization: f64,
    /// Branch prediction accuracy over all threads.
    pub branch_accuracy: f64,
    /// Total loads executed (hits + misses).
    pub loads: u64,
    /// Total stores executed.
    pub stores: u64,
    /// Total conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredictions: u64,
}

impl SimResults {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Relative IPC loss (in percent, positive = slower) versus a baseline
    /// result — the metric of the paper's Figures 1-d and 4-b.
    #[must_use]
    pub fn ipc_loss_pct_vs(&self, baseline: &SimResults) -> f64 {
        let base = baseline.ipc();
        if base == 0.0 {
            return 0.0;
        }
        (1.0 - self.ipc() / base) * 100.0
    }

    /// Combined load miss ratio.
    #[must_use]
    pub fn load_miss_ratio(&self) -> f64 {
        self.mem.load_miss_ratio()
    }

    /// Combined store miss ratio.
    #[must_use]
    pub fn store_miss_ratio(&self) -> f64 {
        self.mem.store_miss_ratio()
    }

    /// Folds this run's counters into the process-wide metrics registry
    /// (`core.cycles`, `core.instructions`, and the per-phase issue-slot
    /// attribution `core.slots.*` summed over both processing units).
    ///
    /// Called once per completed simulation from the sweep layer — a
    /// post-hoc accumulation over already-collected counters, so the
    /// simulator's hot loop pays nothing whether or not telemetry is on.
    pub fn record_metrics(&self) {
        dsmt_obs::counter!("core.cycles").add(self.cycles);
        dsmt_obs::counter!("core.instructions").add(self.instructions);
        let both = |pick: fn(&UnitSlots) -> u64| pick(&self.ap_slots) + pick(&self.ep_slots);
        dsmt_obs::counter!("core.slots.useful").add(both(|u| u.useful));
        dsmt_obs::counter!("core.slots.wait_memory").add(both(|u| u.wait_memory));
        dsmt_obs::counter!("core.slots.wait_fu").add(both(|u| u.wait_fu));
        dsmt_obs::counter!("core.slots.wrong_path_or_idle").add(both(|u| u.wrong_path_or_idle));
        dsmt_obs::counter!("core.slots.other").add(both(|u| u.other));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_results(instructions: u64, cycles: u64) -> SimResults {
        SimResults {
            cycles,
            instructions,
            per_thread_instructions: vec![instructions],
            ap_slots: UnitSlots::default(),
            ep_slots: UnitSlots::default(),
            perceived: PerceivedLatency::default(),
            mem: MemStats::default(),
            bus_utilization: 0.0,
            branch_accuracy: 1.0,
            loads: 0,
            stores: 0,
            branches: 0,
            mispredictions: 0,
        }
    }

    #[test]
    fn slot_recording_and_fractions() {
        let mut s = UnitSlots::default();
        s.record(SlotUse::Useful);
        s.record(SlotUse::Useful);
        s.record(SlotUse::WaitMemory);
        s.record_n(SlotUse::WaitFu, 3);
        s.record(SlotUse::WrongPathOrIdle);
        s.record(SlotUse::Other);
        assert_eq!(s.total(), 8);
        assert!((s.fraction(SlotUse::Useful) - 0.25).abs() < 1e-12);
        assert!((s.fraction(SlotUse::WaitFu) - 0.375).abs() < 1e-12);
        assert!((s.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_slots_have_zero_fractions() {
        let s = UnitSlots::default();
        for kind in SlotUse::ALL {
            assert_eq!(s.fraction(kind), 0.0);
        }
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn slot_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = SlotUse::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), SlotUse::ALL.len());
    }

    #[test]
    fn perceived_latency_averages() {
        let p = PerceivedLatency {
            fp_stall_cycles: 100,
            int_stall_cycles: 30,
            fp_load_misses: 50,
            int_load_misses: 10,
        };
        assert!((p.fp() - 2.0).abs() < 1e-12);
        assert!((p.int() - 3.0).abs() < 1e-12);
        assert!((p.combined() - 130.0 / 60.0).abs() < 1e-12);
        assert_eq!(PerceivedLatency::default().fp(), 0.0);
        assert_eq!(PerceivedLatency::default().combined(), 0.0);
    }

    #[test]
    fn ipc_and_loss() {
        let base = dummy_results(1000, 200); // IPC 5
        let slow = dummy_results(1000, 400); // IPC 2.5
        assert!((base.ipc() - 5.0).abs() < 1e-12);
        assert!((slow.ipc_loss_pct_vs(&base) - 50.0).abs() < 1e-12);
        assert!((base.ipc_loss_pct_vs(&base)).abs() < 1e-12);
        let zero = dummy_results(0, 0);
        assert_eq!(zero.ipc(), 0.0);
        assert_eq!(base.ipc_loss_pct_vs(&zero), 0.0);
    }
}
