//! Determinism of the assembled heterogeneous grid: the
//! `fetch-policy-hetero` figure must produce bit-identical records at any
//! worker count and any `DSMT_SWEEP_BATCH` size, and a sharded fleet's
//! merged `.dsr` must encode to the same bytes as a monolithic run —
//! assembled `ProgramWorkload`s get no special dispensation from the
//! sweep engine's reproducibility contract.

use dsmt_experiments::{fetch_policy_hetero, ExperimentParams};
use dsmt_shard::{merge_shards, plan, run_shard, DsrFile, ShardStrategy};
use dsmt_sweep::SweepEngine;

fn tiny() -> ExperimentParams {
    ExperimentParams {
        instructions_per_point: 8_000,
        insts_per_program: 3_000,
        seed: 42,
        workers: 1,
    }
}

#[test]
fn hetero_grid_is_bit_identical_across_workers_and_batch_sizes() {
    let grid = fetch_policy_hetero::grid(&tiny());
    let reference = SweepEngine::new(1).without_cache().with_batch(1).run(&grid);
    for (workers, batch) in [(2, 1), (4, 3), (3, 64)] {
        let report = SweepEngine::new(workers)
            .without_cache()
            .with_batch(batch)
            .run(&grid);
        assert_eq!(
            report.records, reference.records,
            "workers={workers} batch={batch}: records differ from single-worker run"
        );
    }
}

#[test]
fn sharded_hetero_grid_merges_byte_identical_to_monolithic() {
    let grid = fetch_policy_hetero::grid(&tiny());
    let mono = SweepEngine::new(2).without_cache().run(&grid);
    let mono_dsr = DsrFile::from_report(&grid, &mono, 0, 1);

    let manifest = plan(&grid, 3, ShardStrategy::Strided).expect("plan");
    // Arbitrary execution order, mixed worker counts per shard.
    let mut shard_files = Vec::new();
    for (slot, index) in [2usize, 0, 1].into_iter().enumerate() {
        let engine = SweepEngine::new(1 + slot).without_cache();
        let run = run_shard(&manifest, index, &engine).expect("shard run");
        shard_files.push(run.dsr);
    }
    let merged = merge_shards(&manifest, &shard_files).expect("merge");

    assert_eq!(merged.records, mono.records);
    assert_eq!(
        DsrFile::from_report(&grid, &merged, 0, 1).encode(),
        mono_dsr.encode(),
        "merged sharded .dsr bytes differ from the monolithic run"
    );
}
