//! Plain-text table formatting (markdown and CSV) for experiment reports.

use dsmt_sweep::SweepReport;

/// A simple column-oriented table that renders to markdown or CSV.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row length must match header count"
        );
        self.rows.push(cells);
    }

    /// Convenience for rows of displayable values.
    pub fn add_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as GitHub-flavoured markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Builds a generic per-cell table straight from a sweep report:
    /// `workload | <axes...> | IPC | perceived | bus util | load miss`.
    ///
    /// Figure modules distil bespoke tables; this is the uniform view for
    /// ad-hoc grids (see `examples/sweep_custom.rs`).
    #[must_use]
    pub fn from_report(report: &SweepReport) -> Table {
        let axes = report.axis_names();
        let mut headers = vec!["workload".to_string()];
        headers.extend(axes.iter().cloned());
        headers.extend(
            ["IPC", "perceived", "bus util", "load miss"]
                .iter()
                .map(|s| (*s).to_string()),
        );
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(format!("Sweep: {}", report.grid), &headers_ref);
        for record in &report.records {
            let mut row = vec![record.workload.clone()];
            for axis in &axes {
                row.push(record.label(axis).unwrap_or("-").to_string());
            }
            let r = &record.results;
            row.push(fmt_f(r.ipc(), 2));
            row.push(fmt_f(r.perceived.combined(), 1));
            row.push(fmt_pct(r.bus_utilization));
            row.push(fmt_pct(r.load_miss_ratio()));
            table.add_row(row);
        }
        table
    }

    /// Renders the table as CSV (title omitted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals (helper for tables).
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["bench", "ipc"]);
        t.add_row(vec!["tomcatv".to_string(), "2.52".to_string()]);
        t.add_display_row(&["swim", "2.60"]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| bench   | ipc  |"));
        assert!(md.contains("| tomcatv | 2.52 |"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.add_row(vec!["1".to_string(), "2".to_string()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.add_row(vec!["1".to_string()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.123), "12.3%");
    }
}
