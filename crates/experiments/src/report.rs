//! Plain-text table formatting (markdown and CSV) for experiment reports.

/// A simple column-oriented table that renders to markdown or CSV.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row length must match header count"
        );
        self.rows.push(cells);
    }

    /// Convenience for rows of displayable values.
    pub fn add_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as GitHub-flavoured markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (title omitted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals (helper for tables).
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["bench", "ipc"]);
        t.add_row(vec!["tomcatv".to_string(), "2.52".to_string()]);
        t.add_display_row(&["swim", "2.60"]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| bench   | ipc  |"));
        assert!(md.contains("| tomcatv | 2.52 |"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.add_row(vec!["1".to_string(), "2".to_string()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.add_row(vec!["1".to_string()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(3.14159, 2), "3.14");
        assert_eq!(fmt_pct(0.123), "12.3%");
    }
}
