//! Ablation studies beyond the paper's figures.
//!
//! These quantify the design choices the paper takes as given:
//!
//! * **Instruction-queue depth** — how much slippage is actually required to
//!   hide a given L2 latency (the paper fixes 48 entries and scales them).
//! * **MSHR count** — how much lockup-freedom the latency tolerance needs.
//! * **Issue-width asymmetry** — Section 3.1 notes a 15% peak loss from
//!   AP/EP load imbalance and leaves asymmetric widths as future work.
//! * **L1 associativity** — the paper's cache is direct mapped; inter-thread
//!   conflicts are part of why miss ratios grow with the thread count.

use dsmt_core::SimConfig;
use dsmt_sweep::{Axis, Setting, SweepGrid, SweepReport};
use serde::{Deserialize, Serialize};

use crate::report::{fmt_f, fmt_pct};
use crate::{ExperimentParams, Table};

/// One ablation data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Which study this point belongs to.
    pub study: String,
    /// Human-readable value of the swept parameter.
    pub setting: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Average perceived load-miss latency.
    pub perceived: f64,
    /// External bus utilisation.
    pub bus_utilization: f64,
}

/// All ablation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResults {
    /// Every evaluated point.
    pub points: Vec<AblationPoint>,
}

/// Instruction-queue depths swept.
pub const IQ_DEPTHS: [usize; 6] = [4, 8, 16, 32, 48, 96];
/// MSHR counts swept.
pub const MSHR_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
/// (AP units, EP units) splits swept (total fixed at 8).
pub const UNIT_SPLITS: [(usize, usize); 3] = [(4, 4), (5, 3), (3, 5)];
/// L1 associativities swept.
pub const L1_ASSOCIATIVITIES: [usize; 3] = [1, 2, 4];

/// The ablation grids, one per study. All studies use the Figure-2 machine
/// with 4 threads and a 64-cycle L2 (a point where both latency tolerance
/// and bandwidth matter).
#[must_use]
pub fn grids(params: &ExperimentParams) -> Vec<SweepGrid> {
    let base = SimConfig::paper_multithreaded(4).with_l2_latency(64);
    let study = |name: &str, axis: Axis| {
        SweepGrid::new(name, base.clone())
            .with_workload(params.spec_mix())
            .with_axis(axis)
            .with_seed(params.seed)
            .with_budget(params.instructions_per_point)
    };
    vec![
        study("ablation-iq-depth", Axis::iq_capacities(&IQ_DEPTHS)),
        study("ablation-mshr", Axis::mshr_counts(&MSHR_COUNTS)),
        study("ablation-unit-split", Axis::unit_splits(&UNIT_SPLITS)),
        study(
            "ablation-l1-assoc",
            Axis::l1_associativities(&L1_ASSOCIATIVITIES),
        ),
    ]
}

/// Human-readable (study, setting) labels for one swept setting.
fn describe(setting: &Setting) -> (String, String) {
    match *setting {
        Setting::IqCapacity(depth) => (
            "instruction-queue depth".to_string(),
            format!("{depth} entries"),
        ),
        Setting::Mshrs(count) => ("MSHR count".to_string(), format!("{count} MSHRs")),
        Setting::UnitSplit { ap, ep } => (
            "issue-width asymmetry".to_string(),
            format!("{ap} AP + {ep} EP units"),
        ),
        Setting::L1Associativity(assoc) => ("L1 associativity".to_string(), format!("{assoc}-way")),
        ref other => (other.axis_name().to_string(), other.value_label()),
    }
}

/// Ablation results plus the merged sweep report they were distilled from.
#[derive(Debug, Clone)]
pub struct AblationSweep {
    /// Raw sweep records (all studies merged) and cache telemetry.
    pub report: SweepReport,
    /// The distilled study data.
    pub results: AblationResults,
}

/// Runs every ablation grid through the engine, keeping the merged report.
#[must_use]
pub fn sweep(params: &ExperimentParams) -> AblationSweep {
    let grids = grids(params);
    // One (study, setting) pair per cell, in grid order, for relabelling.
    // Each study grid is one workload x one axis, so its cells are exactly
    // its axis settings in order.
    let descriptions: Vec<(String, String)> = grids
        .iter()
        .flat_map(|grid| {
            debug_assert!(grid.workloads.len() == 1 && grid.axes.len() == 1);
            grid.axes[0].settings.iter().map(describe)
        })
        .collect();
    // One shared worker pool across all four studies (13 cells interleave
    // instead of running as four small sequential sweeps).
    let reports = params.engine().run_many(&grids);
    let report = SweepReport::merged("ablations", reports);
    let points = report
        .records
        .iter()
        .zip(descriptions)
        .map(|(rec, (study, setting))| AblationPoint {
            study,
            setting,
            ipc: rec.results.ipc(),
            perceived: rec.results.perceived.combined(),
            bus_utilization: rec.results.bus_utilization,
        })
        .collect();
    AblationSweep {
        report,
        results: AblationResults { points },
    }
}

/// Runs every ablation.
#[must_use]
pub fn run(params: &ExperimentParams) -> AblationResults {
    sweep(params).results
}

impl AblationResults {
    /// The points belonging to one study, in sweep order.
    #[must_use]
    pub fn study(&self, name: &str) -> Vec<&AblationPoint> {
        self.points.iter().filter(|p| p.study == name).collect()
    }

    /// The names of the studies present.
    #[must_use]
    pub fn studies(&self) -> Vec<String> {
        let mut names = Vec::new();
        for p in &self.points {
            if !names.contains(&p.study) {
                names.push(p.study.clone());
            }
        }
        names
    }

    /// One table per study, concatenated as markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        for study in self.studies() {
            let mut table = Table::new(
                format!("Ablation: {study} (4 threads, L2 = 64)"),
                &["setting", "IPC", "perceived load-miss latency", "bus util"],
            );
            for p in self.study(&study) {
                table.add_row(vec![
                    p.setting.clone(),
                    fmt_f(p.ipc, 2),
                    fmt_f(p.perceived, 1),
                    fmt_pct(p.bus_utilization),
                ]);
            }
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        out
    }

    /// Qualitative expectations for the ablations.
    #[must_use]
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let mut checks = Vec::new();
        let iq = self.study("instruction-queue depth");
        if iq.len() >= 2 {
            let shallow = iq.first().map(|p| p.ipc).unwrap_or(0.0);
            let deep = iq.last().map(|p| p.ipc).unwrap_or(0.0);
            checks.push((
                format!(
                    "deeper instruction queues improve IPC at L2=64 \
                     ({shallow:.2} with {} -> {deep:.2} with {})",
                    iq.first().map(|p| p.setting.as_str()).unwrap_or("-"),
                    iq.last().map(|p| p.setting.as_str()).unwrap_or("-"),
                ),
                deep > shallow,
            ));
        }
        let mshr = self.study("MSHR count");
        if mshr.len() >= 2 {
            let one = mshr.first().map(|p| p.ipc).unwrap_or(0.0);
            let many = mshr.last().map(|p| p.ipc).unwrap_or(0.0);
            checks.push((
                format!("lockup-freedom matters: 1 MSHR {one:.2} IPC vs 16 MSHRs {many:.2} IPC"),
                many > one,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ablation_sweep() {
        let params = ExperimentParams {
            instructions_per_point: 6_000,
            insts_per_program: 3_000,
            seed: 11,
            workers: 8,
        };
        let r = run(&params);
        assert_eq!(
            r.points.len(),
            IQ_DEPTHS.len() + MSHR_COUNTS.len() + UNIT_SPLITS.len() + L1_ASSOCIATIVITIES.len()
        );
        assert_eq!(r.studies().len(), 4);
        assert_eq!(r.study("MSHR count").len(), MSHR_COUNTS.len());
        let md = r.to_markdown();
        assert!(md.contains("MSHR"));
        assert!(md.contains("associativity"));
        for p in &r.points {
            assert!(p.ipc > 0.0);
        }
    }
}
