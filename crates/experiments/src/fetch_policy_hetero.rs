//! The heterogeneous fetch-policy figure: I-COUNT vs round-robin on
//! assembled multiprogrammed workloads where the policies finally separate.
//!
//! The [`crate::fetch_policy`] figure documents that on the *homogeneous*
//! SPEC FP95 mix the two policies converge — every thread has the same
//! statistics, so it barely matters which one fetches. This figure runs
//! the complementary experiment the paper's Section 3.1 argument actually
//! predicts a winner for: heterogeneous mixes of assembled `dsmt-asm`
//! programs (see [`dsmt_asm::corpus`]), measured where the pick is
//! decisive — a fetch gang of **one** thread per cycle ([`grid`] narrows
//! the paper's RR-2.8 gang to a single slot). With the paper's two-slot
//! gang, fetch bandwidth (2 × 8 wide) is so overprovisioned relative to
//! these workloads' IPC that both policies keep every buffer topped up and
//! converge on *any* mix; with one slot per cycle, each cycle's choice is
//! the whole fetch-allocation decision.
//!
//! Two findings the mixes are chosen to document. First, threads that
//! differ in *drain rate while staying fetch-eligible* — branchy scanners
//! throttled by the 4-unresolved-branch limit next to a steadily draining
//! FP kernel — are exactly where I-COUNT's least-pending pick beats blind
//! rotation. Second, a memory-clogged pointer chaser does **not** reward
//! I-COUNT: its full fetch buffer makes it *ineligible* for both policies
//! alike, so eligibility, not the pick, dominates — those mixes converge.
//!
//! Because the claim is a *difference between policies*, it is asserted as
//! signal, not noise: every (mix, policy) point is simulated
//! [`REPLICAS`] times under decorrelated per-cell seeds, and the shape
//! check requires I-COUNT's advantage to exceed
//! [`SEPARATION_FACTOR`] × the measured relative seed stddev on at least
//! one heterogeneous mix. A homogeneous assembled control mix rides along
//! to show the separation is a property of heterogeneity, not of assembled
//! workloads per se.

use dsmt_asm::corpus;
use dsmt_core::{FetchPolicy, SimConfig};
use dsmt_sweep::{Axis, SeedMode, SweepGrid, SweepReport, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::report::{fmt_f, fmt_pct};
use crate::seed_variance::{VarianceRow, REPLICAS};
use crate::{ExperimentParams, Table};

/// Hardware contexts (one per corpus mix slot; program `t mod n` runs on
/// thread `t`).
pub const THREADS: usize = 4;

/// The advantage must exceed this multiple of the measured seed noise to
/// count as separation.
pub const SEPARATION_FACTOR: f64 = 3.0;

/// Floor on the noise estimate (relative stddev), so a mix whose samples
/// happen to coincide cannot claim infinite separation.
pub const NOISE_FLOOR: f64 = 0.002;

fn corpus_source(name: &str) -> (&'static str, &'static str) {
    corpus::CORPUS
        .iter()
        .copied()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown corpus program `{name}`"))
}

/// The evaluated mixes: heterogeneous combinations of the corpus programs
/// plus one homogeneous control. Labels are the workload labels
/// (`asm:<names>`); a `+` marks a heterogeneous mix.
///
/// * `branchy ×3 + fp_kernel` — the headline separator: branch-throttled
///   threads next to a steady FP drain.
/// * `ptr_chase + fp_kernel + branchy (+ ptr_chase)` — all three
///   characters; the chasers' ineligibility mutes the pick.
/// * `ptr_chase + fp_kernel` — memory-clogged vs compute: converges
///   (eligibility dominates).
/// * `fp_kernel` alone — homogeneous control, must not separate.
#[must_use]
pub fn mixes() -> Vec<WorkloadSpec> {
    let chase = corpus_source("ptr_chase");
    let fp = corpus_source("fp_kernel");
    let branchy = corpus_source("branchy");
    vec![
        WorkloadSpec::programs(&[branchy, branchy, branchy, fp]),
        WorkloadSpec::programs(&[chase, fp, branchy]),
        WorkloadSpec::programs(&[chase, fp]),
        WorkloadSpec::programs(&[fp]),
    ]
}

/// The hetero fetch-policy sweep: every mix replicated [`REPLICAS`] times
/// under decorrelated per-cell seeds, crossed with the two fetch policies,
/// on the paper's 4-context machine narrowed to a one-thread fetch gang
/// (see the module docs for why the gang is 1).
#[must_use]
pub fn grid(params: &ExperimentParams) -> SweepGrid {
    let workloads = mixes()
        .into_iter()
        .flat_map(|m| std::iter::repeat_n(m, REPLICAS));
    let mut base = SimConfig::paper_multithreaded(THREADS);
    base.fetch_threads_per_cycle = 1;
    SweepGrid::new("fetch-policy-hetero", base)
        .with_workloads(workloads)
        .with_axis(Axis::fetch_policies(&[
            FetchPolicy::ICount,
            FetchPolicy::RoundRobin,
        ]))
        .with_seed(params.seed)
        .with_seed_mode(SeedMode::PerCell)
        .with_budget(params.instructions_per_point)
}

/// One mix's IPC statistics under both policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroRow {
    /// Workload label (`asm:<names>`); heterogeneous mixes contain `+`.
    pub mix: String,
    /// IPC across seeds under I-COUNT.
    pub icount: VarianceRow,
    /// IPC across seeds under round-robin.
    pub round_robin: VarianceRow,
}

impl HeteroRow {
    /// Whether the mix runs different programs on different threads.
    #[must_use]
    pub fn is_heterogeneous(&self) -> bool {
        self.mix.contains('+')
    }

    /// I-COUNT's relative advantage over round-robin (mean over mean,
    /// positive = I-COUNT faster).
    #[must_use]
    pub fn advantage(&self) -> f64 {
        self.icount.mean / self.round_robin.mean.max(1e-12) - 1.0
    }

    /// The seed-noise scale the advantage is compared against: the larger
    /// of the two policies' relative stddevs, floored at [`NOISE_FLOOR`].
    #[must_use]
    pub fn noise(&self) -> f64 {
        self.icount
            .relative_stddev()
            .max(self.round_robin.relative_stddev())
            .max(NOISE_FLOOR)
    }

    /// The advantage in units of seed noise.
    #[must_use]
    pub fn separation(&self) -> f64 {
        self.advantage() / self.noise()
    }

    /// Whether the policies are separated by more than
    /// [`SEPARATION_FACTOR`] × the seed noise.
    #[must_use]
    pub fn separated(&self) -> bool {
        self.separation() > SEPARATION_FACTOR
    }
}

/// The complete hetero fetch-policy data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroResults {
    /// One row per mix, in [`mixes`] order.
    pub rows: Vec<HeteroRow>,
}

/// Hetero results plus the sweep report they were distilled from.
#[derive(Debug, Clone)]
pub struct HeteroSweep {
    /// Raw sweep records and cache telemetry.
    pub report: SweepReport,
    /// The distilled figure data.
    pub results: HeteroResults,
}

/// Distils a hetero report: records are ordered mix-outermost (each mix
/// contiguous for its [`REPLICAS`] replicas) with the policy axis fastest.
///
/// # Panics
///
/// Panics if the record count does not match the grid shape.
#[must_use]
pub fn distill(report: &SweepReport) -> HeteroResults {
    let n = report.records.len();
    let per_mix = REPLICAS * 2;
    assert!(
        n.is_multiple_of(per_mix) && n > 0,
        "hetero report must hold blocks of {per_mix} records, got {n}"
    );
    let rows = (0..n / per_mix)
        .map(|m| {
            let policy_samples = |p: usize| -> (Vec<(String, String)>, Vec<f64>) {
                let records: Vec<_> = (0..REPLICAS)
                    .map(|r| &report.records[(m * REPLICAS + r) * 2 + p])
                    .collect();
                debug_assert!(records
                    .iter()
                    .all(|r| r.labels == records[0].labels && r.workload == records[0].workload));
                (
                    records[0].labels.clone(),
                    records.iter().map(|r| r.results.ipc()).collect(),
                )
            };
            let (ic_labels, ic_samples) = policy_samples(0);
            let (rr_labels, rr_samples) = policy_samples(1);
            HeteroRow {
                mix: report.records[m * per_mix].workload.clone(),
                icount: VarianceRow::from_samples(ic_labels, ic_samples),
                round_robin: VarianceRow::from_samples(rr_labels, rr_samples),
            }
        })
        .collect();
    HeteroResults { rows }
}

/// Runs the hetero fetch-policy sweep through the engine, keeping the raw
/// report.
#[must_use]
pub fn sweep(params: &ExperimentParams) -> HeteroSweep {
    let report = params.engine().run(&grid(params));
    let results = distill(&report);
    HeteroSweep { report, results }
}

/// Runs the hetero fetch-policy sweep.
#[must_use]
pub fn run(params: &ExperimentParams) -> HeteroResults {
    sweep(params).results
}

impl HeteroResults {
    /// The figure table: both policies' mean IPC, I-COUNT's advantage, the
    /// seed noise and the separation in noise units, one row per mix.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Fetch policy on heterogeneous assembled workloads \
             (I-COUNT vs round-robin)",
            &[
                "mix",
                "I-COUNT IPC",
                "round-robin IPC",
                "advantage",
                "seed noise",
                "separation",
            ],
        );
        for row in &self.rows {
            table.add_row(vec![
                row.mix.clone(),
                fmt_f(row.icount.mean, 3),
                fmt_f(row.round_robin.mean, 3),
                fmt_pct(row.advantage()),
                fmt_pct(row.noise()),
                format!("{:.1}x", row.separation()),
            ]);
        }
        table
    }

    /// The claims this figure documents, with pass/fail.
    #[must_use]
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let hetero: Vec<&HeteroRow> = self.rows.iter().filter(|r| r.is_heterogeneous()).collect();
        let homog: Vec<&HeteroRow> = self.rows.iter().filter(|r| !r.is_heterogeneous()).collect();
        let mut checks = vec![(
            format!("every (mix, policy) point carries {REPLICAS} seed samples"),
            !self.rows.is_empty()
                && self.rows.iter().all(|r| {
                    r.icount.samples.len() == REPLICAS && r.round_robin.samples.len() == REPLICAS
                }),
        )];
        checks.push((
            format!(
                "some heterogeneous mix separates the policies \
                 (I-COUNT advantage > {SEPARATION_FACTOR}x seed noise)"
            ),
            hetero.iter().any(|r| r.separated()),
        ));
        checks.push((
            "I-COUNT never loses to round-robin beyond seed noise".to_string(),
            self.rows
                .iter()
                .all(|r| r.advantage() > -SEPARATION_FACTOR * r.noise()),
        ));
        checks.push((
            "the homogeneous assembled control does not separate \
             (heterogeneity, not assembly, is what I-COUNT exploits)"
                .to_string(),
            homog.iter().all(|r| !r.separated()),
        ));
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentParams {
        ExperimentParams {
            instructions_per_point: 30_000,
            insts_per_program: 8_000,
            seed: 42,
            workers: 4,
        }
    }

    #[test]
    fn grid_replicates_every_mix_under_both_policies() {
        let g = grid(&tiny());
        assert_eq!(g.len(), mixes().len() * REPLICAS * 2);
        assert_eq!(g.name, "fetch-policy-hetero");
        assert_eq!(g.seed_mode, SeedMode::PerCell);
        let cells = g.cells();
        // Replicas of one (mix, policy) point differ only in seed.
        let (a, b) = (&cells[0], &cells[2]);
        assert_eq!(a.workload_label, b.workload_label);
        assert_eq!(a.labels, b.labels);
        assert_ne!(a.scenario.seed, b.scenario.seed);
    }

    #[test]
    fn figure_distills_and_passes_its_shape_checks() {
        let sweep = sweep(&tiny());
        assert_eq!(sweep.results.rows.len(), mixes().len());
        let table = sweep.results.table();
        assert_eq!(table.num_rows(), mixes().len());
        for (claim, ok) in sweep.results.shape_checks() {
            assert!(
                ok,
                "shape check failed: {claim}\n{}",
                sweep.results.table().to_markdown()
            );
        }
        // The headline separation survives at the tiny test scale; print
        // the table so threshold drift is easy to diagnose from test logs.
        println!("{}", sweep.results.table().to_markdown());
    }
}
