//! Figure 3 (Section 3.1): sources of wasted issue slots in the
//! multithreaded decoupled processor.
//!
//! The paper runs the Figure-2 machine (8-wide, 4 AP + 4 EP units, 16-cycle
//! L2) on the multiprogrammed SPEC FP95 workload with 1 to 6 hardware
//! contexts and breaks every AP and EP issue slot into: useful work, waiting
//! for an operand from memory, waiting for an operand from a functional
//! unit, wrong-path/idle, and other.

use dsmt_core::{SimConfig, SlotUse, UnitSlots};
use dsmt_sweep::{Axis, SweepGrid, SweepReport};
use serde::{Deserialize, Serialize};

use crate::report::{fmt_f, fmt_pct};
use crate::{ExperimentParams, Table};

/// Thread counts evaluated (the paper's x-axis runs from 1 to 6).
pub const THREAD_COUNTS: [usize; 6] = [1, 2, 3, 4, 5, 6];

/// One row of Figure 3: the breakdown for a given number of threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Number of hardware contexts.
    pub threads: usize,
    /// Instructions per cycle.
    pub ipc: f64,
    /// AP issue-slot breakdown.
    pub ap: UnitSlots,
    /// EP issue-slot breakdown.
    pub ep: UnitSlots,
}

/// The complete Figure 3 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Results {
    /// One row per thread count.
    pub rows: Vec<Fig3Row>,
}

/// The simulator configuration used for Figure 3.
#[must_use]
pub fn fig3_config(threads: usize) -> SimConfig {
    SimConfig::paper_multithreaded(threads)
}

/// The Figure 3 sweep as a declarative grid: the Figure-2 machine over
/// 1–6 hardware contexts on the multiprogrammed SPEC FP95 workload.
#[must_use]
pub fn grid(params: &ExperimentParams) -> SweepGrid {
    SweepGrid::new("fig3", SimConfig::paper_multithreaded(1))
        .with_workload(params.spec_mix())
        .with_axis(Axis::threads(&THREAD_COUNTS))
        .with_seed(params.seed)
        .with_budget(params.instructions_per_point)
}

/// Figure 3 results plus the sweep report they were distilled from.
#[derive(Debug, Clone)]
pub struct Fig3Sweep {
    /// Raw sweep records and cache telemetry.
    pub report: SweepReport,
    /// The distilled figure data.
    pub results: Fig3Results,
}

/// Runs the Figure 3 sweep through the engine, keeping the raw report.
#[must_use]
pub fn sweep(params: &ExperimentParams) -> Fig3Sweep {
    let report = params.engine().run(&grid(params));
    let rows = report
        .records
        .iter()
        .map(|rec| Fig3Row {
            threads: rec.scenario.config.num_threads,
            ipc: rec.results.ipc(),
            ap: rec.results.ap_slots,
            ep: rec.results.ep_slots,
        })
        .collect();
    Fig3Sweep {
        report,
        results: Fig3Results { rows },
    }
}

/// Runs the Figure 3 sweep.
#[must_use]
pub fn run(params: &ExperimentParams) -> Fig3Results {
    sweep(params).results
}

impl Fig3Results {
    /// The row for a given thread count.
    #[must_use]
    pub fn row(&self, threads: usize) -> Option<&Fig3Row> {
        self.rows.iter().find(|r| r.threads == threads)
    }

    /// The Figure 3 table: per-unit slot breakdown (percent of unit slots)
    /// plus IPC, one row per thread count.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Figure 3: issue-slot breakdown (fraction of unit issue slots)",
            &[
                "threads", "IPC", "unit", "useful", "wait-mem", "wait-fu", "idle", "other",
            ],
        );
        for row in &self.rows {
            for (unit_name, slots) in [("AP", &row.ap), ("EP", &row.ep)] {
                table.add_row(vec![
                    row.threads.to_string(),
                    fmt_f(row.ipc, 2),
                    unit_name.to_string(),
                    fmt_pct(slots.fraction(SlotUse::Useful)),
                    fmt_pct(slots.fraction(SlotUse::WaitMemory)),
                    fmt_pct(slots.fraction(SlotUse::WaitFu)),
                    fmt_pct(slots.fraction(SlotUse::WrongPathOrIdle)),
                    fmt_pct(slots.fraction(SlotUse::Other)),
                ]);
            }
        }
        table
    }

    /// Checks the paper's qualitative claims for Figure 3.
    #[must_use]
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let mut checks = Vec::new();
        if let (Some(one), Some(three)) = (self.row(1), self.row(3)) {
            // Claim 1: with one thread, the dominant EP waste is waiting for
            // operands from functional units.
            let ep_waste_fu = one.ep.fraction(SlotUse::WaitFu);
            let other_waste =
                one.ep.fraction(SlotUse::WaitMemory) + one.ep.fraction(SlotUse::Other);
            checks.push((
                "1 thread: EP slots are mostly lost waiting on FU results".to_string(),
                ep_waste_fu > other_waste && ep_waste_fu > 0.3,
            ));
            // Claim 2: going from 1 to 3 threads yields a large speed-up
            // (the paper reports 2.31x).
            checks.push((
                format!(
                    "3 threads speed up 1 thread substantially (got {:.2}x, paper 2.31x)",
                    three.ipc / one.ipc
                ),
                three.ipc / one.ipc > 1.6,
            ));
            // Claim 3: with 3 threads the AP is close to saturation.
            checks.push((
                format!(
                    "3 threads: AP utilisation approaches saturation ({:.0}%, paper 90.7%)",
                    three.ap.utilization() * 100.0
                ),
                three.ap.utilization() > 0.75,
            ));
        }
        if let (Some(three), Some(six)) = (self.row(3), self.row(6)) {
            // Claim 4: beyond 3-4 threads the gains are small.
            checks.push((
                format!(
                    "gains beyond 3 threads are modest (6T/3T = {:.2}x)",
                    six.ipc / three.ipc
                ),
                six.ipc / three.ipc < 1.35,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_config_is_paper_machine() {
        let cfg = fig3_config(4);
        assert_eq!(cfg.num_threads, 4);
        assert_eq!(cfg.mem.l2_latency, 16);
        assert!(cfg.decoupled);
        assert!(!cfg.scale_queues_with_latency);
    }

    #[test]
    fn small_sweep_structure_and_monotonicity() {
        let params = ExperimentParams {
            instructions_per_point: 20_000,
            insts_per_program: 5_000,
            seed: 3,
            workers: 6,
        };
        let r = run(&params);
        assert_eq!(r.rows.len(), THREAD_COUNTS.len());
        let table = r.table();
        assert_eq!(table.num_rows(), THREAD_COUNTS.len() * 2);
        // Multithreading must not reduce throughput.
        let one = r.row(1).unwrap().ipc;
        let four = r.row(4).unwrap().ipc;
        assert!(four > one, "4T {four} vs 1T {one}");
        // Slot fractions sum to ~1 for each unit.
        for row in &r.rows {
            let total: f64 = SlotUse::ALL.iter().map(|k| row.ap.fraction(*k)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
