//! Shared experiment infrastructure: parameters and single runs.
//!
//! All sweep mechanics (parallel scheduling, caching, export) live in
//! [`dsmt_sweep`]; this module only holds the experiment-wide parameters and
//! thin wrappers that express single runs as [`Scenario`]s so every
//! simulation — swept or not — goes down one code path.

use dsmt_core::{SimConfig, SimResults};
use dsmt_shard::{plan, run_shard, ShardStrategy};
use dsmt_sweep::{Scenario, SweepEngine, SweepGrid, WorkloadSpec};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentParams {
    /// Instructions simulated per data point.
    pub instructions_per_point: u64,
    /// Instructions per benchmark segment in multithreaded workloads.
    pub insts_per_program: u64,
    /// Workload / generator seed.
    pub seed: u64,
    /// Maximum worker threads for the parameter sweep.
    pub workers: usize,
}

impl ExperimentParams {
    /// Sensible defaults for regenerating the figures on a laptop:
    /// 400k instructions per point, 40k-instruction program segments.
    #[must_use]
    pub fn standard() -> Self {
        ExperimentParams {
            instructions_per_point: 400_000,
            insts_per_program: 40_000,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// A reduced configuration for quick smoke tests and benchmarks.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentParams {
            instructions_per_point: 60_000,
            insts_per_program: 15_000,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// Reads the scale from the `DSMT_INSTS` environment variable
    /// (instructions per point), falling back to [`ExperimentParams::standard`].
    #[must_use]
    pub fn from_env() -> Self {
        let mut p = ExperimentParams::standard();
        if let Ok(v) = std::env::var("DSMT_INSTS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                p.instructions_per_point = n.max(1_000);
            }
        }
        p
    }

    /// The multithreaded SPEC FP95 workload used by the Section 3
    /// experiments, as a sweep [`WorkloadSpec`].
    #[must_use]
    pub fn spec_mix(&self) -> WorkloadSpec {
        WorkloadSpec::spec_mix(self.insts_per_program)
    }

    /// A sweep engine sized by these parameters (cache policy comes from
    /// `DSMT_SWEEP_CACHE`, see [`dsmt_sweep::CacheMode::from_env`]).
    #[must_use]
    pub fn engine(&self) -> SweepEngine {
        SweepEngine::new(self.workers)
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams::standard()
    }
}

/// Parses a `--shard i/n` (or `--shard=i/n`) selector from explicit
/// argument strings. Returns `None` when the flag is absent.
///
/// # Errors
///
/// A human-readable message when the flag is present but malformed
/// (`i >= n`, zero shards, not two integers).
pub fn parse_shard_selector(args: &[String]) -> Result<Option<(usize, usize)>, String> {
    let mut spec: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--shard" {
            spec = Some(
                it.next()
                    .ok_or("--shard expects a value like `0/4`")?
                    .as_str(),
            );
        } else if let Some(v) = arg.strip_prefix("--shard=") {
            spec = Some(v);
        }
    }
    let Some(spec) = spec else { return Ok(None) };
    let (index, count) = spec
        .split_once('/')
        .ok_or_else(|| format!("--shard expects `i/n`, got `{spec}`"))?;
    let index: usize = index
        .trim()
        .parse()
        .map_err(|_| format!("--shard index `{index}` is not a number"))?;
    let count: usize = count
        .trim()
        .parse()
        .map_err(|_| format!("--shard count `{count}` is not a number"))?;
    if count == 0 {
        return Err("--shard count must be at least 1".to_string());
    }
    if index >= count {
        return Err(format!("--shard index {index} out of range (0..{count})"));
    }
    Ok(Some((index, count)))
}

/// The figure binaries' `--shard i/n` path: if the process arguments carry
/// a shard selector, runs only that shard of each grid (strided plan, so
/// every shard sees a slice of every cost regime) and returns `true` — the
/// caller then skips rendering. Cells land in the shared result cache, so
/// once all `n` shards have run (on any mix of hosts pointing
/// `DSMT_SWEEP_CACHE` at a shared directory), a plain figure run replays
/// everything from cache and renders the tables.
///
/// # Panics
///
/// Panics on a malformed selector or an unplannable grid — argument and
/// grid construction errors, not runtime conditions.
#[must_use]
pub fn maybe_run_shard(grids: &[SweepGrid], params: &ExperimentParams) -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selector = parse_shard_selector(&args).unwrap_or_else(|e| panic!("{e}"));
    let Some((index, count)) = selector else {
        return false;
    };
    let engine = params.engine();
    for grid in grids {
        let manifest = plan(grid, count, ShardStrategy::Strided)
            .unwrap_or_else(|e| panic!("cannot shard `{}`: {e}", grid.name));
        let run = run_shard(&manifest, index, &engine)
            .unwrap_or_else(|e| panic!("cannot run shard {index} of `{}`: {e}", grid.name));
        eprintln!(
            "shard {index}/{count} of `{}`: {} cells ({} cached, {} simulated) in {:.2}s",
            grid.name,
            run.report.records.len(),
            run.report.cache_hits,
            run.report.cache_misses,
            run.report.wall_secs,
        );
    }
    eprintln!(
        "shard {index}/{count} done; run without --shard once all shards finished \
         (shared DSMT_SWEEP_CACHE) to render the figures from cache"
    );
    true
}

/// Runs one simulation of the multithreaded SPEC FP95 workload under
/// `config`.
#[must_use]
pub fn run_spec(config: SimConfig, params: &ExperimentParams) -> SimResults {
    Scenario {
        config,
        workload: params.spec_mix(),
        seed: params.seed,
        budget: params.instructions_per_point,
    }
    .execute()
}

/// Runs one single-benchmark simulation (Section 2 style).
#[must_use]
pub fn run_single_benchmark(
    config: SimConfig,
    profile: &dsmt_trace::BenchmarkProfile,
    params: &ExperimentParams,
) -> SimResults {
    Scenario {
        config,
        workload: WorkloadSpec::Profile {
            profile: profile.clone(),
        },
        seed: params.seed,
        budget: params.instructions_per_point,
    }
    .execute()
}

/// Applies `f` to every item of `inputs`, running up to `workers` items
/// concurrently on the sweep crate's work-stealing pool, and returns the
/// outputs in input order.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    dsmt_sweep::pool::parallel_map(inputs, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..37).collect();
        let out = parallel_map(inputs.clone(), 8, |x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single_worker() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(empty, 4, |x: &u64| *x).is_empty());
        let out = parallel_map(vec![1u64, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn shard_selector_parsing() {
        let args = |s: &[&str]| -> Vec<String> { s.iter().map(ToString::to_string).collect() };
        assert_eq!(parse_shard_selector(&args(&[])), Ok(None));
        assert_eq!(parse_shard_selector(&args(&["--other", "1"])), Ok(None));
        assert_eq!(
            parse_shard_selector(&args(&["--shard", "0/4"])),
            Ok(Some((0, 4)))
        );
        assert_eq!(
            parse_shard_selector(&args(&["--shard=3/4"])),
            Ok(Some((3, 4)))
        );
        // Last occurrence wins, like most CLI flag conventions.
        assert_eq!(
            parse_shard_selector(&args(&["--shard", "0/4", "--shard", "1/2"])),
            Ok(Some((1, 2)))
        );
        assert!(parse_shard_selector(&args(&["--shard"])).is_err());
        assert!(parse_shard_selector(&args(&["--shard", "4"])).is_err());
        assert!(parse_shard_selector(&args(&["--shard", "4/4"])).is_err());
        assert!(parse_shard_selector(&args(&["--shard", "0/0"])).is_err());
        assert!(parse_shard_selector(&args(&["--shard", "x/2"])).is_err());
    }

    #[test]
    fn params_constructors() {
        let std = ExperimentParams::standard();
        assert!(std.instructions_per_point >= 100_000);
        let quick = ExperimentParams::quick();
        assert!(quick.instructions_per_point < std.instructions_per_point);
        assert!(std.workers >= 1);
        assert_eq!(ExperimentParams::default(), std);
    }

    #[test]
    fn quick_spec_run_produces_sane_results() {
        let params = ExperimentParams {
            instructions_per_point: 20_000,
            insts_per_program: 5_000,
            seed: 1,
            workers: 2,
        };
        let r = run_spec(dsmt_core::SimConfig::paper_multithreaded(2), &params);
        assert!(r.instructions >= 20_000);
        assert!(r.ipc() > 0.3 && r.ipc() < 8.0);
    }

    #[test]
    fn quick_single_benchmark_run() {
        let params = ExperimentParams {
            instructions_per_point: 15_000,
            insts_per_program: 5_000,
            seed: 1,
            workers: 1,
        };
        let profile = dsmt_trace::spec_fp95_profile("mgrid").unwrap();
        let cfg = dsmt_core::SimConfig::paper_single_thread_4wide();
        let r = run_single_benchmark(cfg, &profile, &params);
        assert!(r.instructions >= 15_000);
        assert!(r.ipc() > 0.2 && r.ipc() < 4.0);
    }

    #[test]
    fn spec_mix_and_engine_reflect_params() {
        let params = ExperimentParams {
            instructions_per_point: 1_000,
            insts_per_program: 123,
            seed: 5,
            workers: 3,
        };
        assert_eq!(params.spec_mix(), WorkloadSpec::spec_mix(123));
        assert_eq!(params.engine().workers, 3);
    }
}
