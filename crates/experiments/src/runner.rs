//! Shared experiment infrastructure: parameters and single runs.
//!
//! All sweep mechanics (parallel scheduling, caching, export) live in
//! [`dsmt_sweep`]; this module only holds the experiment-wide parameters and
//! thin wrappers that express single runs as [`Scenario`]s so every
//! simulation — swept or not — goes down one code path.

use dsmt_core::{SimConfig, SimResults};
use dsmt_sweep::{Scenario, SweepEngine, WorkloadSpec};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentParams {
    /// Instructions simulated per data point.
    pub instructions_per_point: u64,
    /// Instructions per benchmark segment in multithreaded workloads.
    pub insts_per_program: u64,
    /// Workload / generator seed.
    pub seed: u64,
    /// Maximum worker threads for the parameter sweep.
    pub workers: usize,
}

impl ExperimentParams {
    /// Sensible defaults for regenerating the figures on a laptop:
    /// 400k instructions per point, 40k-instruction program segments.
    #[must_use]
    pub fn standard() -> Self {
        ExperimentParams {
            instructions_per_point: 400_000,
            insts_per_program: 40_000,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// A reduced configuration for quick smoke tests and benchmarks.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentParams {
            instructions_per_point: 60_000,
            insts_per_program: 15_000,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// Reads the scale from the `DSMT_INSTS` environment variable
    /// (instructions per point), falling back to [`ExperimentParams::standard`].
    #[must_use]
    pub fn from_env() -> Self {
        let mut p = ExperimentParams::standard();
        if let Ok(v) = std::env::var("DSMT_INSTS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                p.instructions_per_point = n.max(1_000);
            }
        }
        p
    }

    /// The multithreaded SPEC FP95 workload used by the Section 3
    /// experiments, as a sweep [`WorkloadSpec`].
    #[must_use]
    pub fn spec_mix(&self) -> WorkloadSpec {
        WorkloadSpec::spec_mix(self.insts_per_program)
    }

    /// A sweep engine sized by these parameters (cache policy comes from
    /// `DSMT_SWEEP_CACHE`, see [`dsmt_sweep::CacheMode::from_env`]).
    #[must_use]
    pub fn engine(&self) -> SweepEngine {
        SweepEngine::new(self.workers)
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams::standard()
    }
}

/// Runs one simulation of the multithreaded SPEC FP95 workload under
/// `config`.
#[must_use]
pub fn run_spec(config: SimConfig, params: &ExperimentParams) -> SimResults {
    Scenario {
        config,
        workload: params.spec_mix(),
        seed: params.seed,
        budget: params.instructions_per_point,
    }
    .execute()
}

/// Runs one single-benchmark simulation (Section 2 style).
#[must_use]
pub fn run_single_benchmark(
    config: SimConfig,
    profile: &dsmt_trace::BenchmarkProfile,
    params: &ExperimentParams,
) -> SimResults {
    Scenario {
        config,
        workload: WorkloadSpec::Profile {
            profile: profile.clone(),
        },
        seed: params.seed,
        budget: params.instructions_per_point,
    }
    .execute()
}

/// Applies `f` to every item of `inputs`, running up to `workers` items
/// concurrently on the sweep crate's work-stealing pool, and returns the
/// outputs in input order.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    dsmt_sweep::pool::parallel_map(inputs, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..37).collect();
        let out = parallel_map(inputs.clone(), 8, |x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single_worker() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(empty, 4, |x: &u64| *x).is_empty());
        let out = parallel_map(vec![1u64, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn params_constructors() {
        let std = ExperimentParams::standard();
        assert!(std.instructions_per_point >= 100_000);
        let quick = ExperimentParams::quick();
        assert!(quick.instructions_per_point < std.instructions_per_point);
        assert!(std.workers >= 1);
        assert_eq!(ExperimentParams::default(), std);
    }

    #[test]
    fn quick_spec_run_produces_sane_results() {
        let params = ExperimentParams {
            instructions_per_point: 20_000,
            insts_per_program: 5_000,
            seed: 1,
            workers: 2,
        };
        let r = run_spec(dsmt_core::SimConfig::paper_multithreaded(2), &params);
        assert!(r.instructions >= 20_000);
        assert!(r.ipc() > 0.3 && r.ipc() < 8.0);
    }

    #[test]
    fn quick_single_benchmark_run() {
        let params = ExperimentParams {
            instructions_per_point: 15_000,
            insts_per_program: 5_000,
            seed: 1,
            workers: 1,
        };
        let profile = dsmt_trace::spec_fp95_profile("mgrid").unwrap();
        let cfg = dsmt_core::SimConfig::paper_single_thread_4wide();
        let r = run_single_benchmark(cfg, &profile, &params);
        assert!(r.instructions >= 15_000);
        assert!(r.ipc() > 0.2 && r.ipc() < 4.0);
    }

    #[test]
    fn spec_mix_and_engine_reflect_params() {
        let params = ExperimentParams {
            instructions_per_point: 1_000,
            insts_per_program: 123,
            seed: 5,
            workers: 3,
        };
        assert_eq!(params.spec_mix(), WorkloadSpec::spec_mix(123));
        assert_eq!(params.engine().workers, 3);
    }
}
