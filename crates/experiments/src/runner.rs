//! Shared experiment infrastructure: parameters, single runs, and parallel
//! sweeps over configurations.

use dsmt_core::{Processor, SimConfig, SimResults};
use dsmt_trace::{SyntheticTrace, ThreadWorkload, TraceSource};
use parking_lot::Mutex;

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentParams {
    /// Instructions simulated per data point.
    pub instructions_per_point: u64,
    /// Instructions per benchmark segment in multithreaded workloads.
    pub insts_per_program: u64,
    /// Workload / generator seed.
    pub seed: u64,
    /// Maximum worker threads for the parameter sweep.
    pub workers: usize,
}

impl ExperimentParams {
    /// Sensible defaults for regenerating the figures on a laptop:
    /// 400k instructions per point, 40k-instruction program segments.
    #[must_use]
    pub fn standard() -> Self {
        ExperimentParams {
            instructions_per_point: 400_000,
            insts_per_program: 40_000,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// A reduced configuration for quick smoke tests and benchmarks.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentParams {
            instructions_per_point: 60_000,
            insts_per_program: 15_000,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// Reads the scale from the `DSMT_INSTS` environment variable
    /// (instructions per point), falling back to [`ExperimentParams::standard`].
    #[must_use]
    pub fn from_env() -> Self {
        let mut p = ExperimentParams::standard();
        if let Ok(v) = std::env::var("DSMT_INSTS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                p.instructions_per_point = n.max(1_000);
            }
        }
        p
    }

    /// The multithreaded SPEC FP95 workload used by the Section 3
    /// experiments.
    #[must_use]
    pub fn spec_workload(&self) -> ThreadWorkload {
        ThreadWorkload::spec_fp95(self.seed).with_insts_per_program(self.insts_per_program)
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams::standard()
    }
}

/// Runs one simulation of the multithreaded SPEC FP95 workload under
/// `config`.
#[must_use]
pub fn run_spec(config: SimConfig, params: &ExperimentParams) -> SimResults {
    let workload = params.spec_workload();
    Processor::with_workload(config, &workload).run(params.instructions_per_point)
}

/// Runs one single-benchmark, single-threaded simulation (Section 2 style).
#[must_use]
pub fn run_single_benchmark(
    config: SimConfig,
    profile: &dsmt_trace::BenchmarkProfile,
    params: &ExperimentParams,
) -> SimResults {
    let trace = SyntheticTrace::new(profile, params.seed);
    let traces: Vec<Box<dyn TraceSource>> = vec![Box::new(trace)];
    Processor::new(config, traces).run(params.instructions_per_point)
}

/// Applies `f` to every item of `inputs`, running up to `workers` items
/// concurrently, and returns the outputs in input order.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = Mutex::new(0usize);
    let outputs: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    let inputs_ref = &inputs;
    let f_ref = &f;
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = {
                    let mut guard = next.lock();
                    if *guard >= n {
                        break;
                    }
                    let i = *guard;
                    *guard += 1;
                    i
                };
                let out = f_ref(&inputs_ref[idx]);
                outputs.lock()[idx] = Some(out);
            });
        }
    })
    .expect("experiment worker panicked");
    outputs
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every input produces an output"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..37).collect();
        let out = parallel_map(inputs.clone(), 8, |x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single_worker() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(empty, 4, |x: &u64| *x).is_empty());
        let out = parallel_map(vec![1u64, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn params_constructors() {
        let std = ExperimentParams::standard();
        assert!(std.instructions_per_point >= 100_000);
        let quick = ExperimentParams::quick();
        assert!(quick.instructions_per_point < std.instructions_per_point);
        assert!(std.workers >= 1);
        assert_eq!(ExperimentParams::default(), std);
    }

    #[test]
    fn quick_spec_run_produces_sane_results() {
        let params = ExperimentParams {
            instructions_per_point: 20_000,
            insts_per_program: 5_000,
            seed: 1,
            workers: 2,
        };
        let r = run_spec(dsmt_core::SimConfig::paper_multithreaded(2), &params);
        assert!(r.instructions >= 20_000);
        assert!(r.ipc() > 0.3 && r.ipc() < 8.0);
    }

    #[test]
    fn quick_single_benchmark_run() {
        let params = ExperimentParams {
            instructions_per_point: 15_000,
            insts_per_program: 5_000,
            seed: 1,
            workers: 1,
        };
        let profile = dsmt_trace::spec_fp95_profile("mgrid").unwrap();
        let cfg = dsmt_core::SimConfig::paper_single_thread_4wide();
        let r = run_single_benchmark(cfg, &profile, &params);
        assert!(r.instructions >= 15_000);
        assert!(r.ipc() > 0.2 && r.ipc() < 4.0);
    }
}
