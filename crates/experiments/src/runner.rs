//! Shared experiment infrastructure: parameters and single runs.
//!
//! All sweep mechanics (parallel scheduling, caching, export) live in
//! [`dsmt_sweep`]; this module only holds the experiment-wide parameters and
//! thin wrappers that express single runs as [`Scenario`]s so every
//! simulation — swept or not — goes down one code path.

use dsmt_core::{SimConfig, SimResults};
use dsmt_shard::{plan, run_shard, ShardManifest, ShardRun, ShardStrategy, Transport};
use dsmt_sweep::{CacheMode, Scenario, SweepEngine, SweepGrid, WorkloadSpec};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentParams {
    /// Instructions simulated per data point.
    pub instructions_per_point: u64,
    /// Instructions per benchmark segment in multithreaded workloads.
    pub insts_per_program: u64,
    /// Workload / generator seed.
    pub seed: u64,
    /// Maximum worker threads for the parameter sweep.
    pub workers: usize,
}

impl ExperimentParams {
    /// Sensible defaults for regenerating the figures on a laptop:
    /// 400k instructions per point, 40k-instruction program segments.
    #[must_use]
    pub fn standard() -> Self {
        ExperimentParams {
            instructions_per_point: 400_000,
            insts_per_program: 40_000,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// A reduced configuration for quick smoke tests and benchmarks.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentParams {
            instructions_per_point: 60_000,
            insts_per_program: 15_000,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }

    /// Reads the scale from the `DSMT_INSTS` environment variable
    /// (instructions per point), falling back to [`ExperimentParams::standard`].
    #[must_use]
    pub fn from_env() -> Self {
        let mut p = ExperimentParams::standard();
        if let Ok(v) = std::env::var("DSMT_INSTS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                p.instructions_per_point = n.max(1_000);
            }
        }
        p
    }

    /// The multithreaded SPEC FP95 workload used by the Section 3
    /// experiments, as a sweep [`WorkloadSpec`].
    #[must_use]
    pub fn spec_mix(&self) -> WorkloadSpec {
        WorkloadSpec::spec_mix(self.insts_per_program)
    }

    /// A sweep engine sized by these parameters (cache policy comes from
    /// `DSMT_SWEEP_CACHE`, see [`dsmt_sweep::CacheMode::from_env`]).
    #[must_use]
    pub fn engine(&self) -> SweepEngine {
        SweepEngine::new(self.workers)
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams::standard()
    }
}

/// Parses a `--shard i/n` (or `--shard=i/n`) selector from explicit
/// argument strings. Returns `None` when the flag is absent.
///
/// # Errors
///
/// A human-readable message when the flag is present but malformed
/// (`i >= n`, zero shards, not two integers).
pub fn parse_shard_selector(args: &[String]) -> Result<Option<(usize, usize)>, String> {
    let mut spec: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--shard" {
            spec = Some(
                it.next()
                    .ok_or("--shard expects a value like `0/4`")?
                    .as_str(),
            );
        } else if let Some(v) = arg.strip_prefix("--shard=") {
            spec = Some(v);
        }
    }
    let Some(spec) = spec else { return Ok(None) };
    let (index, count) = spec
        .split_once('/')
        .ok_or_else(|| format!("--shard expects `i/n`, got `{spec}`"))?;
    let index: usize = index
        .trim()
        .parse()
        .map_err(|_| format!("--shard index `{index}` is not a number"))?;
    let count: usize = count
        .trim()
        .parse()
        .map_err(|_| format!("--shard count `{count}` is not a number"))?;
    if count == 0 {
        return Err("--shard count must be at least 1".to_string());
    }
    if index >= count {
        return Err(format!("--shard index {index} out of range (0..{count})"));
    }
    Ok(Some((index, count)))
}

/// One grid's shard executed by [`run_shard_grids`]: the strided plan it
/// belongs to, the executed run, and whether its shard-output record made
/// it into the engine's cache store.
#[derive(Debug)]
pub struct ShardedGridRun {
    /// The strided plan the shard was cut from.
    pub manifest: ShardManifest,
    /// The executed shard (partial report plus packaged `.dsr`).
    pub run: ShardRun,
    /// `Some(Ok(()))` when the output record (and the grid's `plan.json`)
    /// was published to the engine's cache directory, `Some(Err(..))` when
    /// publishing was attempted but failed, `None` when the engine has no
    /// cache directory to publish into.
    pub published: Option<Result<(), String>>,
}

/// The conventional name of a figure grid's shard plan inside a store
/// directory: `<grid>.plan.json`. Every shard of the same fleet writes the
/// identical (deterministic) manifest, so the write is idempotent.
#[must_use]
pub fn plan_file_name(grid: &SweepGrid) -> String {
    format!("{}.plan.json", grid.name)
}

/// Runs shard `index` of `count` for every grid, and — when the engine
/// caches to a directory — publishes each shard's output record into that
/// store, next to the scenario cache ("one store directory"), along with
/// the grid's manifest as [`plan_file_name`]. That is what lets
/// `dsmt shard status <store>/<grid>.plan.json --store <store>` watch a
/// full-figure fleet live; before, the figure binaries' shards shared only
/// the scenario cache, so fleet progress was invisible until the final
/// replay run.
///
/// Publishing is best-effort: the cells are already safe in the scenario
/// cache, so a failure (e.g. a legacy cache directory that is not a store)
/// is reported in [`ShardedGridRun::published`] rather than aborting the
/// run.
///
/// # Panics
///
/// Panics on an unplannable grid or an out-of-range shard index — argument
/// and grid construction errors, not runtime conditions.
#[must_use]
pub fn run_shard_grids(
    grids: &[SweepGrid],
    index: usize,
    count: usize,
    engine: &SweepEngine,
) -> Vec<ShardedGridRun> {
    grids
        .iter()
        .map(|grid| {
            let manifest = plan(grid, count, ShardStrategy::Strided)
                .unwrap_or_else(|e| panic!("cannot shard `{}`: {e}", grid.name));
            let run = run_shard(&manifest, index, engine)
                .unwrap_or_else(|e| panic!("cannot run shard {index} of `{}`: {e}", grid.name));
            let published = match &engine.cache {
                CacheMode::Dir(dir) => Some(publish_to_store(dir, grid, &manifest, &run)),
                CacheMode::Disabled => None,
            };
            ShardedGridRun {
                manifest,
                run,
                published,
            }
        })
        .collect()
}

/// Publishes one grid-shard's plan and output record into the store at
/// `dir` (the engine's cache directory).
fn publish_to_store(
    dir: &std::path::Path,
    grid: &SweepGrid,
    manifest: &ShardManifest,
    run: &ShardRun,
) -> Result<(), String> {
    manifest
        .save(dir.join(plan_file_name(grid)))
        .map_err(|e| format!("cannot save plan for `{}`: {e}", grid.name))?;
    Transport::store(dir)?.publish(manifest, &run.dsr)
}

/// The figure binaries' `--shard i/n` path: if the process arguments carry
/// a shard selector, runs only that shard of each grid (strided plan, so
/// every shard sees a slice of every cost regime) and returns `true` — the
/// caller then skips rendering. Cells land in the shared result cache and
/// each grid's shard-output record is published to the same store (see
/// [`run_shard_grids`]), so `dsmt shard status` can watch the fleet and,
/// once all `n` shards have run (on any mix of hosts pointing
/// `DSMT_SWEEP_CACHE` at a shared directory), a plain figure run replays
/// everything from cache and renders the tables.
///
/// # Panics
///
/// Panics on a malformed selector or an unplannable grid — argument and
/// grid construction errors, not runtime conditions.
#[must_use]
pub fn maybe_run_shard(grids: &[SweepGrid], params: &ExperimentParams) -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selector = parse_shard_selector(&args).unwrap_or_else(|e| panic!("{e}"));
    let Some((index, count)) = selector else {
        return false;
    };
    let engine = params.engine();
    for sharded in run_shard_grids(grids, index, count, &engine) {
        let grid = &sharded.manifest.grid;
        eprintln!(
            "shard {index}/{count} of `{}`: {} cells ({} cached, {} simulated) in {:.2}s",
            grid.name,
            sharded.run.report.records.len(),
            sharded.run.report.cache_hits,
            sharded.run.report.cache_misses,
            sharded.run.report.wall_secs,
        );
        match &sharded.published {
            Some(Ok(())) => eprintln!(
                "  published shard output; watch with: dsmt shard status \
                 <cache>/{} --store <cache> (same DSMT_INSTS)",
                plan_file_name(grid),
            ),
            Some(Err(e)) => eprintln!("  warn: shard output not published: {e}"),
            None => {}
        }
    }
    eprintln!(
        "shard {index}/{count} done; run without --shard once all shards finished \
         (shared DSMT_SWEEP_CACHE) to render the figures from cache"
    );
    true
}

/// Runs one simulation of the multithreaded SPEC FP95 workload under
/// `config`.
#[must_use]
pub fn run_spec(config: SimConfig, params: &ExperimentParams) -> SimResults {
    Scenario {
        config,
        workload: params.spec_mix(),
        seed: params.seed,
        budget: params.instructions_per_point,
    }
    .execute()
}

/// Runs one single-benchmark simulation (Section 2 style).
#[must_use]
pub fn run_single_benchmark(
    config: SimConfig,
    profile: &dsmt_trace::BenchmarkProfile,
    params: &ExperimentParams,
) -> SimResults {
    Scenario {
        config,
        workload: WorkloadSpec::Profile {
            profile: profile.clone(),
        },
        seed: params.seed,
        budget: params.instructions_per_point,
    }
    .execute()
}

/// Applies `f` to every item of `inputs`, running up to `workers` items
/// concurrently on the sweep crate's work-stealing pool, and returns the
/// outputs in input order.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    dsmt_sweep::pool::parallel_map(inputs, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..37).collect();
        let out = parallel_map(inputs.clone(), 8, |x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single_worker() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(empty, 4, |x: &u64| *x).is_empty());
        let out = parallel_map(vec![1u64, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn shard_selector_parsing() {
        let args = |s: &[&str]| -> Vec<String> { s.iter().map(ToString::to_string).collect() };
        assert_eq!(parse_shard_selector(&args(&[])), Ok(None));
        assert_eq!(parse_shard_selector(&args(&["--other", "1"])), Ok(None));
        assert_eq!(
            parse_shard_selector(&args(&["--shard", "0/4"])),
            Ok(Some((0, 4)))
        );
        assert_eq!(
            parse_shard_selector(&args(&["--shard=3/4"])),
            Ok(Some((3, 4)))
        );
        // Last occurrence wins, like most CLI flag conventions.
        assert_eq!(
            parse_shard_selector(&args(&["--shard", "0/4", "--shard", "1/2"])),
            Ok(Some((1, 2)))
        );
        assert!(parse_shard_selector(&args(&["--shard"])).is_err());
        assert!(parse_shard_selector(&args(&["--shard", "4"])).is_err());
        assert!(parse_shard_selector(&args(&["--shard", "4/4"])).is_err());
        assert!(parse_shard_selector(&args(&["--shard", "0/0"])).is_err());
        assert!(parse_shard_selector(&args(&["--shard", "x/2"])).is_err());
    }

    #[test]
    fn params_constructors() {
        let std = ExperimentParams::standard();
        assert!(std.instructions_per_point >= 100_000);
        let quick = ExperimentParams::quick();
        assert!(quick.instructions_per_point < std.instructions_per_point);
        assert!(std.workers >= 1);
        assert_eq!(ExperimentParams::default(), std);
    }

    #[test]
    fn quick_spec_run_produces_sane_results() {
        let params = ExperimentParams {
            instructions_per_point: 20_000,
            insts_per_program: 5_000,
            seed: 1,
            workers: 2,
        };
        let r = run_spec(dsmt_core::SimConfig::paper_multithreaded(2), &params);
        assert!(r.instructions >= 20_000);
        assert!(r.ipc() > 0.3 && r.ipc() < 8.0);
    }

    #[test]
    fn quick_single_benchmark_run() {
        let params = ExperimentParams {
            instructions_per_point: 15_000,
            insts_per_program: 5_000,
            seed: 1,
            workers: 1,
        };
        let profile = dsmt_trace::spec_fp95_profile("mgrid").unwrap();
        let cfg = dsmt_core::SimConfig::paper_single_thread_4wide();
        let r = run_single_benchmark(cfg, &profile, &params);
        assert!(r.instructions >= 15_000);
        assert!(r.ipc() > 0.2 && r.ipc() < 4.0);
    }

    #[test]
    fn sharded_grids_publish_status_records_to_the_cache_store() {
        let dir =
            std::env::temp_dir().join(format!("dsmt-exp-shard-publish-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grids = vec![
            SweepGrid::new("exp-shard-a", SimConfig::paper_multithreaded(1))
                .with_workload(WorkloadSpec::spec_mix(1_500))
                .with_axis(dsmt_sweep::Axis::l2_latencies(&[1, 16, 64]))
                .with_budget(4_000),
            SweepGrid::new("exp-shard-b", SimConfig::paper_single_thread_4wide())
                .with_workload(WorkloadSpec::spec_mix(1_500))
                .with_axis(dsmt_sweep::Axis::l2_latencies(&[16, 256]))
                .with_budget(4_000),
        ];
        let engine = SweepEngine::new(2).with_cache_dir(&dir);
        let count = 2;
        for index in 0..count {
            for sharded in run_shard_grids(&grids, index, count, &engine) {
                assert_eq!(sharded.run.shard_index, index);
                assert_eq!(sharded.published, Some(Ok(())), "publish failed");
            }
        }
        // Every grid's fleet is now watchable from the one store directory:
        // the plan is on disk and `status` over the store sees every shard.
        for grid in &grids {
            let manifest = ShardManifest::load(dir.join(plan_file_name(grid))).expect("plan saved");
            assert_eq!(&manifest.grid, grid);
            let mut transport = Transport::store(&dir).expect("store transport");
            let status = transport.status(&manifest);
            assert_eq!(status.done(), count);
            assert!(status.complete());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_grids_without_cache_skip_publishing() {
        let grids = vec![
            SweepGrid::new("exp-shard-nocache", SimConfig::paper_multithreaded(1))
                .with_workload(WorkloadSpec::spec_mix(1_500))
                .with_axis(dsmt_sweep::Axis::l2_latencies(&[16]))
                .with_budget(3_000),
        ];
        let engine = SweepEngine::new(1).without_cache();
        let runs = run_shard_grids(&grids, 0, 1, &engine);
        assert_eq!(runs.len(), 1);
        assert!(runs[0].published.is_none());
        assert_eq!(runs[0].run.report.records.len(), 1);
    }

    #[test]
    fn spec_mix_and_engine_reflect_params() {
        let params = ExperimentParams {
            instructions_per_point: 1_000,
            insts_per_program: 123,
            seed: 5,
            workers: 3,
        };
        assert_eq!(params.spec_mix(), WorkloadSpec::spec_mix(123));
        assert_eq!(params.engine().workers, 3);
    }
}
