//! Figure 1 (Section 2): latency-hiding effectiveness of a single-threaded
//! decoupled processor.
//!
//! The paper runs each SPEC FP95 benchmark on a 4-way-issue, single-threaded
//! decoupled machine (4 general-purpose functional units, 2-port L1D) while
//! sweeping the L2 latency from 1 to 256 cycles, with all queues and
//! register files scaled proportionally to the latency. It reports:
//!
//! * **Figure 1-a** — average perceived FP-load miss latency;
//! * **Figure 1-b** — average perceived integer-load miss latency;
//! * **Figure 1-c** — load/store miss ratios at L2 = 256;
//! * **Figure 1-d** — % IPC loss relative to the 1-cycle-latency machine.

use dsmt_core::SimConfig;
use dsmt_sweep::{Axis, SweepGrid, SweepReport, WorkloadSpec};
use dsmt_trace::spec_fp95_profiles;
use serde::{Deserialize, Serialize};

use crate::report::{fmt_f, fmt_pct};
use crate::{ExperimentParams, Table, L2_LATENCIES};

/// One (benchmark, L2 latency) data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Point {
    /// Benchmark name.
    pub benchmark: String,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Average perceived FP-load miss latency in cycles (Figure 1-a).
    pub perceived_fp: f64,
    /// Average perceived integer-load miss latency in cycles (Figure 1-b).
    pub perceived_int: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1 load miss ratio.
    pub load_miss_ratio: f64,
    /// L1 store miss ratio.
    pub store_miss_ratio: f64,
}

/// All Figure 1 data points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Results {
    /// One point per (benchmark, latency) pair.
    pub points: Vec<Fig1Point>,
}

/// The simulator configuration used for the Section 2 experiments.
#[must_use]
pub fn fig1_config(l2_latency: u64) -> SimConfig {
    SimConfig::paper_single_thread_4wide().with_l2_latency(l2_latency)
}

/// The Figure 1 sweep as a declarative grid: every SPEC FP95 profile at
/// every L2 latency on the Section 2 machine.
#[must_use]
pub fn grid(params: &ExperimentParams) -> SweepGrid {
    SweepGrid::new("fig1", SimConfig::paper_single_thread_4wide())
        .with_workloads(
            spec_fp95_profiles()
                .iter()
                .map(|p| WorkloadSpec::benchmark(&p.name)),
        )
        .with_axis(Axis::l2_latencies(&L2_LATENCIES))
        .with_seed(params.seed)
        .with_budget(params.instructions_per_point)
}

/// Figure 1 results plus the sweep report they were distilled from.
#[derive(Debug, Clone)]
pub struct Fig1Sweep {
    /// Raw sweep records and cache telemetry.
    pub report: SweepReport,
    /// The distilled figure data.
    pub results: Fig1Results,
}

/// Runs the Figure 1 sweep through the engine, keeping the raw report.
#[must_use]
pub fn sweep(params: &ExperimentParams) -> Fig1Sweep {
    let report = params.engine().run(&grid(params));
    let points = report
        .records
        .iter()
        .map(|rec| {
            let r = &rec.results;
            Fig1Point {
                benchmark: rec.workload.clone(),
                l2_latency: rec.scenario.config.mem.l2_latency,
                perceived_fp: r.perceived.fp(),
                perceived_int: r.perceived.int(),
                ipc: r.ipc(),
                load_miss_ratio: r.load_miss_ratio(),
                store_miss_ratio: r.store_miss_ratio(),
            }
        })
        .collect();
    Fig1Sweep {
        report,
        results: Fig1Results { points },
    }
}

/// Runs the full Figure 1 sweep: every SPEC FP95 profile at every L2
/// latency.
#[must_use]
pub fn run(params: &ExperimentParams) -> Fig1Results {
    sweep(params).results
}

impl Fig1Results {
    /// Looks up the point for a benchmark at a latency.
    #[must_use]
    pub fn point(&self, benchmark: &str, l2_latency: u64) -> Option<&Fig1Point> {
        self.points
            .iter()
            .find(|p| p.benchmark == benchmark && p.l2_latency == l2_latency)
    }

    /// The benchmarks present, in first-seen order.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<String> {
        let mut names = Vec::new();
        for p in &self.points {
            if !names.contains(&p.benchmark) {
                names.push(p.benchmark.clone());
            }
        }
        names
    }

    /// IPC loss (percent) of `benchmark` at `l2_latency` relative to the
    /// 1-cycle configuration (Figure 1-d's metric).
    #[must_use]
    pub fn ipc_loss_pct(&self, benchmark: &str, l2_latency: u64) -> f64 {
        let base = self.point(benchmark, 1).map(|p| p.ipc).unwrap_or(0.0);
        let now = self
            .point(benchmark, l2_latency)
            .map(|p| p.ipc)
            .unwrap_or(0.0);
        if base == 0.0 {
            0.0
        } else {
            (1.0 - now / base) * 100.0
        }
    }

    fn latency_table(&self, title: &str, value: impl Fn(&Fig1Point) -> String) -> Table {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(L2_LATENCIES.iter().map(|l| format!("L2={l}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(title, &headers_ref);
        for bench in self.benchmarks() {
            let mut row = vec![bench.clone()];
            for &lat in &L2_LATENCIES {
                row.push(
                    self.point(&bench, lat)
                        .map(&value)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            table.add_row(row);
        }
        table
    }

    /// Figure 1-a: average perceived FP-load miss latency (cycles).
    #[must_use]
    pub fn table_fig1a(&self) -> Table {
        self.latency_table(
            "Figure 1-a: avg perceived FP-load miss latency (cycles)",
            |p| fmt_f(p.perceived_fp, 1),
        )
    }

    /// Figure 1-b: average perceived integer-load miss latency (cycles).
    #[must_use]
    pub fn table_fig1b(&self) -> Table {
        self.latency_table(
            "Figure 1-b: avg perceived integer-load miss latency (cycles)",
            |p| fmt_f(p.perceived_int, 1),
        )
    }

    /// Figure 1-c: load and store miss ratios at L2 = 256.
    #[must_use]
    pub fn table_fig1c(&self) -> Table {
        let mut table = Table::new(
            "Figure 1-c: L1 miss ratios at L2 latency = 256",
            &["benchmark", "load miss ratio", "store miss ratio"],
        );
        for bench in self.benchmarks() {
            if let Some(p) = self.point(&bench, 256) {
                table.add_row(vec![
                    bench.clone(),
                    fmt_pct(p.load_miss_ratio),
                    fmt_pct(p.store_miss_ratio),
                ]);
            }
        }
        table
    }

    /// Figure 1-d: % IPC loss relative to the 1-cycle L2.
    #[must_use]
    pub fn table_fig1d(&self) -> Table {
        let benches = self.benchmarks();
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(L2_LATENCIES.iter().map(|l| format!("L2={l}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            "Figure 1-d: % IPC loss relative to L2 latency = 1",
            &headers_ref,
        );
        for bench in benches {
            let mut row = vec![bench.clone()];
            for &lat in &L2_LATENCIES {
                row.push(fmt_f(self.ipc_loss_pct(&bench, lat), 1));
            }
            table.add_row(row);
        }
        table
    }

    /// Checks the paper's qualitative claims for Figure 1 and returns a list
    /// of (claim, holds) pairs.
    #[must_use]
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let mut checks = Vec::new();
        // Claim 1: fpppp has the largest perceived FP-load latency at 256
        // (it is the one program that decouples badly).
        if let Some(fpppp) = self.point("fpppp", 256) {
            let max_other = self
                .points
                .iter()
                .filter(|p| p.l2_latency == 256 && p.benchmark != "fpppp")
                .map(|p| p.perceived_fp)
                .fold(0.0_f64, f64::max);
            checks.push((
                "fpppp perceives the largest FP-load miss latency at L2=256".to_string(),
                fpppp.perceived_fp > max_other,
            ));
        }
        // Claim 2: well-decoupled benchmarks hide the vast majority of the
        // FP-load miss latency even at 256 cycles.
        let hidden_ok = ["tomcatv", "swim", "mgrid", "applu", "apsi"]
            .iter()
            .all(|b| {
                self.point(b, 256)
                    .map(|p| p.perceived_fp < 0.25 * 256.0)
                    .unwrap_or(false)
            });
        checks.push((
            "tomcatv/swim/mgrid/applu/apsi hide >75% of FP-load miss latency at L2=256".to_string(),
            hidden_ok,
        ));
        // Claim 3: programs with poorly scheduled integer loads perceive
        // more integer-load latency than the well-scheduled ones.
        let poor: f64 = ["su2cor", "turb3d", "wave5", "fpppp"]
            .iter()
            .filter_map(|b| self.point(b, 256).map(|p| p.perceived_int))
            .sum::<f64>()
            / 4.0;
        let good: f64 = ["tomcatv", "swim", "mgrid", "applu", "apsi"]
            .iter()
            .filter_map(|b| self.point(b, 256).map(|p| p.perceived_int))
            .sum::<f64>()
            / 5.0;
        checks.push((
            "su2cor/turb3d/wave5/fpppp perceive more integer-load latency than the rest"
                .to_string(),
            poor > good,
        ));
        // Claim 4: fpppp and turb3d have very low miss ratios.
        let low_miss = ["fpppp", "turb3d"].iter().all(|b| {
            self.point(b, 256)
                .map(|p| p.load_miss_ratio < 0.05)
                .unwrap_or(false)
        });
        checks.push((
            "fpppp and turb3d have very low L1 miss ratios".to_string(),
            low_miss,
        ));
        // Claim 5: the most latency-degraded programs include hydro2d,
        // su2cor and wave5 (high perceived latency AND real miss ratios),
        // while fpppp/turb3d are barely degraded.
        let degraded: f64 = ["hydro2d", "su2cor", "wave5"]
            .iter()
            .map(|b| self.ipc_loss_pct(b, 256))
            .sum::<f64>()
            / 3.0;
        let spared: f64 = ["fpppp", "turb3d"]
            .iter()
            .map(|b| self.ipc_loss_pct(b, 256))
            .sum::<f64>()
            / 2.0;
        checks.push((
            "hydro2d/su2cor/wave5 are degraded more by L2 latency than fpppp/turb3d".to_string(),
            degraded > spared,
        ));
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams {
            instructions_per_point: 12_000,
            insts_per_program: 12_000,
            seed: 7,
            workers: 8,
        }
    }

    #[test]
    fn fig1_config_matches_section2_machine() {
        let cfg = fig1_config(64);
        assert_eq!(cfg.num_threads, 1);
        assert_eq!(cfg.ap_units + cfg.ep_units, 4);
        assert_eq!(cfg.mem.l2_latency, 64);
        assert!(cfg.scale_queues_with_latency);
    }

    #[test]
    fn small_sweep_produces_all_points_and_tables() {
        // Only exercise structure on a reduced latency set by filtering after
        // a tiny run would still be 60 points; keep it but with few
        // instructions per point so the debug-mode test stays fast.
        let r = run(&tiny_params());
        assert_eq!(r.points.len(), 10 * L2_LATENCIES.len());
        assert_eq!(r.benchmarks().len(), 10);
        assert!(r.point("tomcatv", 16).is_some());
        assert!(r.point("nonexistent", 16).is_none());
        let a = r.table_fig1a();
        let d = r.table_fig1d();
        assert_eq!(a.num_rows(), 10);
        assert_eq!(d.num_rows(), 10);
        assert!(r.table_fig1c().to_markdown().contains("fpppp"));
        // IPC must drop (or stay equal) as the latency grows for the
        // bandwidth-bound benchmarks; at minimum it must stay positive.
        for p in &r.points {
            assert!(p.ipc > 0.0, "{p:?}");
            assert!(p.perceived_fp >= 0.0);
            assert!(p.perceived_int >= 0.0);
        }
        // Loss relative to itself is zero.
        assert_eq!(r.ipc_loss_pct("tomcatv", 1), 0.0);
    }
}
