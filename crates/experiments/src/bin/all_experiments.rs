//! Runs every experiment (Figures 1, 3, 4, 5 and the ablations) through the
//! `dsmt-sweep` engine, prints a consolidated report suitable for pasting
//! into EXPERIMENTS.md, and writes the raw sweep records as JSON and CSV
//! under `results/`.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin all_experiments`
//!
//! * `DSMT_INSTS=<n>` — instructions per data point (default 400000).
//! * `DSMT_SWEEP_CACHE=<dir>|off` — result cache location (default
//!   `target/sweep-cache`). With the cache enabled, a re-run only simulates
//!   cells whose parameters changed and reports `0 simulated` otherwise.
//! * `DSMT_RESULTS=<dir>` — export directory (default `results`).
//! * `--shard i/n` — run only the i-th of n deterministic shards of every
//!   figure grid (warming the shared cache), skip rendering. Once all
//!   shards have run — on any mix of hosts sharing `DSMT_SWEEP_CACHE` — a
//!   plain run renders everything from cache.

use dsmt_experiments::{
    ablations, fetch_policy, fetch_policy_hetero, fig1, fig3, fig4, fig5, maybe_run_shard,
    seed_variance, ExperimentParams,
};
use dsmt_sweep::{export, SweepReport};

fn print_checks(checks: &[(String, bool)]) {
    for (claim, ok) in checks {
        println!("- [{}] {claim}", if *ok { "x" } else { " " });
    }
    println!();
}

/// Exports a report and returns a one-line summary for the run footer.
fn export_report(report: &SweepReport, out_dir: &str) -> String {
    let json = format!("{out_dir}/{}.json", report.grid);
    let csv = format!("{out_dir}/{}.csv", report.grid);
    export::write_json(report, &json).unwrap_or_else(|e| eprintln!("warn: {json}: {e}"));
    export::write_csv(report, &csv).unwrap_or_else(|e| eprintln!("warn: {csv}: {e}"));
    format!(
        "{:<6} {:>3} cells, {:>3} cached, {:>3} simulated -> {json}, {csv}",
        report.grid, // grid name
        report.records.len(),
        report.cache_hits,
        report.cache_misses,
    )
}

fn main() {
    let params = ExperimentParams::from_env();
    // `--shard i/n`: run the i-th deterministic shard of *every* figure
    // grid (warming the shared cache) and skip rendering — the multi-host
    // path for regenerating the whole paper.
    let mut all_grids = vec![
        fig1::grid(&params),
        fig3::grid(&params),
        fig4::grid(&params),
    ];
    all_grids.extend(fig5::grids(&params));
    all_grids.extend(ablations::grids(&params));
    all_grids.push(fetch_policy::grid(&params));
    all_grids.push(fetch_policy_hetero::grid(&params));
    all_grids.push(seed_variance::grid(&params));
    if maybe_run_shard(&all_grids, &params) {
        return;
    }
    let out_dir = std::env::var("DSMT_RESULTS").unwrap_or_else(|_| "results".to_string());
    eprintln!(
        "running all experiments ({} instructions/point, {} workers)",
        params.instructions_per_point, params.workers
    );
    let mut footer = Vec::new();

    println!("## Figure 1 — latency hiding of single-threaded decoupling\n");
    let f1 = fig1::sweep(&params);
    println!("{}", f1.results.table_fig1a().to_markdown());
    println!("{}", f1.results.table_fig1b().to_markdown());
    println!("{}", f1.results.table_fig1c().to_markdown());
    println!("{}", f1.results.table_fig1d().to_markdown());
    print_checks(&f1.results.shape_checks());
    footer.push(export_report(&f1.report, &out_dir));

    println!("## Figure 3 — issue-slot breakdown vs thread count\n");
    let f3 = fig3::sweep(&params);
    println!("{}", f3.results.table().to_markdown());
    print_checks(&f3.results.shape_checks());
    footer.push(export_report(&f3.report, &out_dir));

    println!("## Figure 4 — latency tolerance of the multithreaded decoupled machine\n");
    let f4 = fig4::sweep(&params);
    println!("{}", f4.results.table_fig4a().to_markdown());
    println!("{}", f4.results.table_fig4b().to_markdown());
    println!("{}", f4.results.table_fig4c().to_markdown());
    print_checks(&f4.results.shape_checks());
    footer.push(export_report(&f4.report, &out_dir));

    println!("## Figure 5 — hardware contexts and bus saturation\n");
    let f5 = fig5::sweep(&params);
    println!("{}", f5.results.table(16).to_markdown());
    println!("{}", f5.results.table(64).to_markdown());
    print_checks(&f5.results.shape_checks());
    footer.push(export_report(&f5.report, &out_dir));

    println!("## Fetch policy (Section 3.1) — I-COUNT vs round-robin\n");
    let fp = fetch_policy::sweep(&params);
    println!("{}", fp.results.table().to_markdown());
    print_checks(&fp.results.shape_checks());
    footer.push(export_report(&fp.report, &out_dir));

    println!("## Fetch policy on heterogeneous assembled workloads\n");
    let fph = fetch_policy_hetero::sweep(&params);
    println!("{}", fph.results.table().to_markdown());
    print_checks(&fph.results.shape_checks());
    footer.push(export_report(&fph.report, &out_dir));

    println!("## Seed variance — how representative are single-seed figures?\n");
    let sv = seed_variance::sweep(&params);
    println!("{}", sv.results.table().to_markdown());
    print_checks(&sv.results.shape_checks());
    footer.push(export_report(&sv.report, &out_dir));

    println!("## Ablations (beyond the paper)\n");
    let ab = ablations::sweep(&params);
    println!("{}", ab.results.to_markdown());
    print_checks(&ab.results.shape_checks());
    footer.push(export_report(&ab.report, &out_dir));

    let (cells, hits, misses) = [
        &f1.report,
        &f3.report,
        &f4.report,
        &f5.report,
        &fp.report,
        &fph.report,
        &sv.report,
        &ab.report,
    ]
    .iter()
    .fold((0, 0, 0), |(c, h, m), r| {
        (c + r.records.len(), h + r.cache_hits, m + r.cache_misses)
    });
    eprintln!("sweep summary:");
    for line in &footer {
        eprintln!("  {line}");
    }
    eprintln!("  total: {cells} cells, {hits} cached, {misses} simulated");
}
