//! Runs every experiment (Figures 1, 3, 4, 5 and the ablations) and prints
//! a single consolidated report suitable for pasting into EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin all_experiments`
//! Set `DSMT_INSTS` to change the number of instructions per data point.

use dsmt_experiments::{ablations, fig1, fig3, fig4, fig5, ExperimentParams};

fn print_checks(checks: &[(String, bool)]) {
    for (claim, ok) in checks {
        println!("- [{}] {claim}", if *ok { "x" } else { " " });
    }
    println!();
}

fn main() {
    let params = ExperimentParams::from_env();
    eprintln!(
        "running all experiments ({} instructions/point, {} workers)",
        params.instructions_per_point, params.workers
    );

    println!("## Figure 1 — latency hiding of single-threaded decoupling\n");
    let f1 = fig1::run(&params);
    println!("{}", f1.table_fig1a().to_markdown());
    println!("{}", f1.table_fig1b().to_markdown());
    println!("{}", f1.table_fig1c().to_markdown());
    println!("{}", f1.table_fig1d().to_markdown());
    print_checks(&f1.shape_checks());

    println!("## Figure 3 — issue-slot breakdown vs thread count\n");
    let f3 = fig3::run(&params);
    println!("{}", f3.table().to_markdown());
    print_checks(&f3.shape_checks());

    println!("## Figure 4 — latency tolerance of the multithreaded decoupled machine\n");
    let f4 = fig4::run(&params);
    println!("{}", f4.table_fig4a().to_markdown());
    println!("{}", f4.table_fig4b().to_markdown());
    println!("{}", f4.table_fig4c().to_markdown());
    print_checks(&f4.shape_checks());

    println!("## Figure 5 — hardware contexts and bus saturation\n");
    let f5 = fig5::run(&params);
    println!("{}", f5.table(16).to_markdown());
    println!("{}", f5.table(64).to_markdown());
    print_checks(&f5.shape_checks());

    println!("## Ablations (beyond the paper)\n");
    let ab = ablations::run(&params);
    println!("{}", ab.to_markdown());
    print_checks(&ab.shape_checks());
}
