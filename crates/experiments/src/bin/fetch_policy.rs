//! Regenerates the Section 3.1 fetch-policy figure: I-COUNT vs
//! round-robin thread selection across hardware-context counts.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fetch_policy`
//! Set `DSMT_INSTS` to change the number of instructions per data point and
//! `DSMT_SWEEP_CACHE` to relocate or disable the result cache. Pass
//! `--shard i/n` to run only the i-th of n deterministic shards (warming
//! the shared cache) instead of rendering the figure.

use dsmt_experiments::{fetch_policy, maybe_run_shard, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    if maybe_run_shard(std::slice::from_ref(&fetch_policy::grid(&params)), &params) {
        return;
    }
    eprintln!(
        "running fetch-policy sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let sweep = fetch_policy::sweep(&params);
    println!("{}", sweep.results.table().to_markdown());
    println!("### Shape checks vs the paper\n");
    for (claim, ok) in sweep.results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
    eprintln!(
        "{} cells ({} cached, {} simulated)",
        sweep.report.records.len(),
        sweep.report.cache_hits,
        sweep.report.cache_misses
    );
}
