//! Regenerates Figure 3: issue-slot breakdown of the multithreaded
//! decoupled processor for 1–6 hardware contexts.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fig3`

use dsmt_experiments::{fig3, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    eprintln!(
        "running Figure 3 sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let results = fig3::run(&params);
    println!("{}", results.table().to_markdown());
    println!("### Shape checks vs the paper\n");
    for (claim, ok) in results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
}
