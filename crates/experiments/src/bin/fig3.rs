//! Regenerates Figure 3: issue-slot breakdown of the multithreaded
//! decoupled processor for 1–6 hardware contexts.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fig3`
//! Set `DSMT_INSTS` to change the number of instructions per data point and
//! `DSMT_SWEEP_CACHE` to relocate or disable the result cache. Pass
//! `--shard i/n` to run only the i-th of n deterministic shards (warming
//! the shared cache) instead of rendering the figure.

use dsmt_experiments::{fig3, maybe_run_shard, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    if maybe_run_shard(std::slice::from_ref(&fig3::grid(&params)), &params) {
        return;
    }
    eprintln!(
        "running Figure 3 sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let sweep = fig3::sweep(&params);
    println!("{}", sweep.results.table().to_markdown());
    println!("### Shape checks vs the paper\n");
    for (claim, ok) in sweep.results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
    eprintln!(
        "{} cells ({} cached, {} simulated)",
        sweep.report.records.len(),
        sweep.report.cache_hits,
        sweep.report.cache_misses
    );
}
