//! Runs the ablation studies that go beyond the paper's figures:
//! instruction-queue depth, MSHR count, issue-width asymmetry and L1
//! associativity.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin ablations`
//! Set `DSMT_INSTS` to change the number of instructions per data point and
//! `DSMT_SWEEP_CACHE` to relocate or disable the result cache. Pass
//! `--shard i/n` to run only the i-th of n deterministic shards (warming
//! the shared cache) instead of rendering the figure.

use dsmt_experiments::{ablations, maybe_run_shard, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    if maybe_run_shard(&ablations::grids(&params), &params) {
        return;
    }
    eprintln!(
        "running ablations ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let sweep = ablations::sweep(&params);
    println!("{}", sweep.results.to_markdown());
    println!("### Shape checks\n");
    for (claim, ok) in sweep.results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
    eprintln!(
        "{} cells ({} cached, {} simulated)",
        sweep.report.records.len(),
        sweep.report.cache_hits,
        sweep.report.cache_misses
    );
}
