//! Runs the ablation studies that go beyond the paper's figures:
//! instruction-queue depth, MSHR count, issue-width asymmetry and L1
//! associativity.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin ablations`

use dsmt_experiments::{ablations, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    eprintln!(
        "running ablations ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let results = ablations::run(&params);
    println!("{}", results.to_markdown());
    println!("### Shape checks\n");
    for (claim, ok) in results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
}
