//! Regenerates Figure 1 (a–d): latency-hiding effectiveness of the
//! single-threaded decoupled processor over the SPEC FP95 profiles.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fig1`
//! Set `DSMT_INSTS` to change the number of instructions per data point and
//! `DSMT_SWEEP_CACHE` to relocate or disable the result cache. Pass
//! `--shard i/n` to run only the i-th of n deterministic shards (warming
//! the shared cache) instead of rendering the figure.

use dsmt_experiments::{fig1, maybe_run_shard, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    if maybe_run_shard(std::slice::from_ref(&fig1::grid(&params)), &params) {
        return;
    }
    eprintln!(
        "running Figure 1 sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let sweep = fig1::sweep(&params);
    println!("{}", sweep.results.table_fig1a().to_markdown());
    println!("{}", sweep.results.table_fig1b().to_markdown());
    println!("{}", sweep.results.table_fig1c().to_markdown());
    println!("{}", sweep.results.table_fig1d().to_markdown());
    println!("### Shape checks vs the paper\n");
    for (claim, ok) in sweep.results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
    eprintln!(
        "{} cells ({} cached, {} simulated)",
        sweep.report.records.len(),
        sweep.report.cache_hits,
        sweep.report.cache_misses
    );
}
