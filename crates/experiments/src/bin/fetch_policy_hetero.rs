//! Regenerates the heterogeneous fetch-policy figure: I-COUNT vs
//! round-robin on assembled `dsmt-asm` corpus mixes, with the advantage
//! asserted against measured seed noise.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fetch_policy_hetero`
//! Set `DSMT_INSTS` to change the number of instructions per data point and
//! `DSMT_SWEEP_CACHE` to relocate or disable the result cache. Pass
//! `--shard i/n` to run only the i-th of n deterministic shards (warming
//! the shared cache) instead of rendering the figure.

use dsmt_experiments::{fetch_policy_hetero, maybe_run_shard, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    if maybe_run_shard(
        std::slice::from_ref(&fetch_policy_hetero::grid(&params)),
        &params,
    ) {
        return;
    }
    eprintln!(
        "running hetero fetch-policy sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let sweep = fetch_policy_hetero::sweep(&params);
    println!("{}", sweep.results.table().to_markdown());
    println!("### Shape checks\n");
    let mut failed = false;
    for (claim, ok) in sweep.results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
        failed |= !ok;
    }
    eprintln!(
        "{} cells ({} cached, {} simulated)",
        sweep.report.records.len(),
        sweep.report.cache_hits,
        sweep.report.cache_misses
    );
    if failed {
        eprintln!("error: shape checks failed");
        std::process::exit(1);
    }
}
