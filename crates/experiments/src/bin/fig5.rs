//! Regenerates Figure 5: IPC versus number of hardware contexts at L2 = 16
//! and L2 = 64 for the decoupled and non-decoupled machines, plus external
//! bus utilisation.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fig5`
//! Set `DSMT_INSTS` to change the number of instructions per data point and
//! `DSMT_SWEEP_CACHE` to relocate or disable the result cache. Pass
//! `--shard i/n` to run only the i-th of n deterministic shards (warming
//! the shared cache) instead of rendering the figure.

use dsmt_experiments::{fig5, maybe_run_shard, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    if maybe_run_shard(&fig5::grids(&params), &params) {
        return;
    }
    eprintln!(
        "running Figure 5 sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let sweep = fig5::sweep(&params);
    println!("{}", sweep.results.table(16).to_markdown());
    println!("{}", sweep.results.table(64).to_markdown());
    println!("### Shape checks vs the paper\n");
    for (claim, ok) in sweep.results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
    eprintln!(
        "{} cells ({} cached, {} simulated)",
        sweep.report.records.len(),
        sweep.report.cache_hits,
        sweep.report.cache_misses
    );
}
