//! Regenerates Figure 5: IPC versus number of hardware contexts at L2 = 16
//! and L2 = 64 for the decoupled and non-decoupled machines, plus external
//! bus utilisation.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fig5`

use dsmt_experiments::{fig5, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    eprintln!(
        "running Figure 5 sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let results = fig5::run(&params);
    println!("{}", results.table(16).to_markdown());
    println!("{}", results.table(64).to_markdown());
    println!("### Shape checks vs the paper\n");
    for (claim, ok) in results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
}
