//! Regenerates the per-cell seed-variance study: every grid point
//! simulated under several decorrelated seeds, with mean/stddev columns.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin seed_variance`
//! Set `DSMT_INSTS` to change the number of instructions per data point and
//! `DSMT_SWEEP_CACHE` to relocate or disable the result cache. Pass
//! `--shard i/n` to run only the i-th of n deterministic shards (warming
//! the shared cache) instead of rendering the study.

use dsmt_experiments::{maybe_run_shard, seed_variance, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    if maybe_run_shard(std::slice::from_ref(&seed_variance::grid(&params)), &params) {
        return;
    }
    eprintln!(
        "running seed-variance sweep ({} instructions/point, {} workers, {} seeds/point)...",
        params.instructions_per_point,
        params.workers,
        seed_variance::REPLICAS
    );
    let sweep = seed_variance::sweep(&params);
    println!("{}", sweep.results.table().to_markdown());
    println!("### Shape checks\n");
    for (claim, ok) in sweep.results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
    eprintln!(
        "{} cells ({} cached, {} simulated)",
        sweep.report.records.len(),
        sweep.report.cache_hits,
        sweep.report.cache_misses
    );
}
