//! Regenerates Figure 4 (a–c): perceived latency, relative IPC loss and IPC
//! for 1–4 threads, with and without decoupling, across L2 latencies.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fig4`
//! Set `DSMT_INSTS` to change the number of instructions per data point and
//! `DSMT_SWEEP_CACHE` to relocate or disable the result cache. Pass
//! `--shard i/n` to run only the i-th of n deterministic shards (warming
//! the shared cache) instead of rendering the figure.

use dsmt_experiments::{fig4, maybe_run_shard, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    if maybe_run_shard(std::slice::from_ref(&fig4::grid(&params)), &params) {
        return;
    }
    eprintln!(
        "running Figure 4 sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let sweep = fig4::sweep(&params);
    println!("{}", sweep.results.table_fig4a().to_markdown());
    println!("{}", sweep.results.table_fig4b().to_markdown());
    println!("{}", sweep.results.table_fig4c().to_markdown());
    println!("### Shape checks vs the paper\n");
    for (claim, ok) in sweep.results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
    eprintln!(
        "{} cells ({} cached, {} simulated)",
        sweep.report.records.len(),
        sweep.report.cache_hits,
        sweep.report.cache_misses
    );
}
