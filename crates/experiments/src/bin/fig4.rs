//! Regenerates Figure 4 (a–c): perceived latency, relative IPC loss and IPC
//! for 1–4 threads, with and without decoupling, across L2 latencies.
//!
//! Usage: `cargo run --release -p dsmt-experiments --bin fig4`

use dsmt_experiments::{fig4, ExperimentParams};

fn main() {
    let params = ExperimentParams::from_env();
    eprintln!(
        "running Figure 4 sweep ({} instructions/point, {} workers)...",
        params.instructions_per_point, params.workers
    );
    let results = fig4::run(&params);
    println!("{}", results.table_fig4a().to_markdown());
    println!("{}", results.table_fig4b().to_markdown());
    println!("{}", results.table_fig4c().to_markdown());
    println!("### Shape checks vs the paper\n");
    for (claim, ok) in results.shape_checks() {
        println!("- [{}] {claim}", if ok { "x" } else { " " });
    }
}
