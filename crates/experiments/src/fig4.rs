//! Figure 4 (Section 3.2): latency-hiding effectiveness of the
//! multithreaded decoupled architecture.
//!
//! Eight configurations (1–4 threads, with and without decoupling) are swept
//! over L2 latencies from 1 to 256 cycles. The paper reports:
//!
//! * **Figure 4-a** — average perceived load-miss latency;
//! * **Figure 4-b** — relative IPC loss versus the 1-cycle-latency machine;
//! * **Figure 4-c** — absolute IPC.
//!
//! As in the paper's Section 2, the architectural queues and register files
//! are scaled with the L2 latency; disabling decoupling restricts the
//! instruction queues regardless of that scaling.

use dsmt_core::SimConfig;
use dsmt_sweep::{Axis, SweepGrid, SweepReport};
use serde::{Deserialize, Serialize};

use crate::report::fmt_f;
use crate::{ExperimentParams, Table, L2_LATENCIES};

/// Thread counts evaluated (1 to 4, as in the paper).
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 4];

/// One configuration's result at one L2 latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Number of hardware contexts.
    pub threads: usize,
    /// Whether decoupling (the instruction queues) was enabled.
    pub decoupled: bool,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Average perceived load-miss latency, all loads (Figure 4-a).
    pub perceived: f64,
    /// Instructions per cycle (Figure 4-c).
    pub ipc: f64,
}

/// The complete Figure 4 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Results {
    /// One point per (threads, decoupled, latency) combination.
    pub points: Vec<Fig4Point>,
}

/// The simulator configuration used for Figure 4.
#[must_use]
pub fn fig4_config(threads: usize, decoupled: bool, l2_latency: u64) -> SimConfig {
    SimConfig::paper_multithreaded(threads)
        .with_decoupled(decoupled)
        .with_l2_latency(l2_latency)
        .with_queue_scaling(true)
}

/// The Figure 4 sweep as a declarative grid: (1–4 threads) × (decoupled
/// on/off) × (six L2 latencies), queues scaled with latency.
#[must_use]
pub fn grid(params: &ExperimentParams) -> SweepGrid {
    SweepGrid::new(
        "fig4",
        SimConfig::paper_multithreaded(1).with_queue_scaling(true),
    )
    .with_workload(params.spec_mix())
    .with_axis(Axis::threads(&THREAD_COUNTS))
    .with_axis(Axis::decoupled(&[true, false]))
    .with_axis(Axis::l2_latencies(&L2_LATENCIES))
    .with_seed(params.seed)
    .with_budget(params.instructions_per_point)
}

/// Figure 4 results plus the sweep report they were distilled from.
#[derive(Debug, Clone)]
pub struct Fig4Sweep {
    /// Raw sweep records and cache telemetry.
    pub report: SweepReport,
    /// The distilled figure data.
    pub results: Fig4Results,
}

/// Runs the Figure 4 sweep through the engine, keeping the raw report.
#[must_use]
pub fn sweep(params: &ExperimentParams) -> Fig4Sweep {
    let report = params.engine().run(&grid(params));
    let points = report
        .records
        .iter()
        .map(|rec| Fig4Point {
            threads: rec.scenario.config.num_threads,
            decoupled: rec.scenario.config.decoupled,
            l2_latency: rec.scenario.config.mem.l2_latency,
            perceived: rec.results.perceived.combined(),
            ipc: rec.results.ipc(),
        })
        .collect();
    Fig4Sweep {
        report,
        results: Fig4Results { points },
    }
}

/// Runs the full Figure 4 sweep (8 configurations × 6 latencies).
#[must_use]
pub fn run(params: &ExperimentParams) -> Fig4Results {
    sweep(params).results
}

impl Fig4Results {
    /// Looks up one point.
    #[must_use]
    pub fn point(&self, threads: usize, decoupled: bool, l2_latency: u64) -> Option<&Fig4Point> {
        self.points.iter().find(|p| {
            p.threads == threads && p.decoupled == decoupled && p.l2_latency == l2_latency
        })
    }

    /// IPC loss (percent) relative to the same configuration at L2 = 1
    /// (Figure 4-b's metric).
    #[must_use]
    pub fn ipc_loss_pct(&self, threads: usize, decoupled: bool, l2_latency: u64) -> f64 {
        let base = self
            .point(threads, decoupled, 1)
            .map(|p| p.ipc)
            .unwrap_or(0.0);
        let now = self
            .point(threads, decoupled, l2_latency)
            .map(|p| p.ipc)
            .unwrap_or(0.0);
        if base == 0.0 {
            0.0
        } else {
            (1.0 - now / base) * 100.0
        }
    }

    fn config_label(threads: usize, decoupled: bool) -> String {
        format!(
            "{threads}T {}",
            if decoupled {
                "decoupled"
            } else {
                "non-decoupled"
            }
        )
    }

    fn grid_table(&self, title: &str, value: impl Fn(&Self, usize, bool, u64) -> String) -> Table {
        let mut headers = vec!["configuration".to_string()];
        headers.extend(L2_LATENCIES.iter().map(|l| format!("L2={l}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(title, &headers_ref);
        for decoupled in [true, false] {
            for &threads in &THREAD_COUNTS {
                let mut row = vec![Self::config_label(threads, decoupled)];
                for &lat in &L2_LATENCIES {
                    row.push(value(self, threads, decoupled, lat));
                }
                table.add_row(row);
            }
        }
        table
    }

    /// Figure 4-a: perceived load-miss latency (cycles).
    #[must_use]
    pub fn table_fig4a(&self) -> Table {
        self.grid_table(
            "Figure 4-a: avg perceived load-miss latency (cycles)",
            |s, t, d, l| {
                s.point(t, d, l)
                    .map(|p| fmt_f(p.perceived, 1))
                    .unwrap_or_else(|| "-".to_string())
            },
        )
    }

    /// Figure 4-b: % IPC loss relative to L2 = 1.
    #[must_use]
    pub fn table_fig4b(&self) -> Table {
        self.grid_table(
            "Figure 4-b: % IPC loss relative to L2 latency = 1",
            |s, t, d, l| fmt_f(s.ipc_loss_pct(t, d, l), 1),
        )
    }

    /// Figure 4-c: absolute IPC.
    #[must_use]
    pub fn table_fig4c(&self) -> Table {
        self.grid_table("Figure 4-c: IPC", |s, t, d, l| {
            s.point(t, d, l)
                .map(|p| fmt_f(p.ipc, 2))
                .unwrap_or_else(|| "-".to_string())
        })
    }

    /// Checks the paper's qualitative claims for Figure 4.
    #[must_use]
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let mut checks = Vec::new();

        // Claim 1: decoupled configurations hide almost all of the load miss
        // latency even at 256 cycles; non-decoupled ones do not.
        let dec_perc: f64 = THREAD_COUNTS
            .iter()
            .filter_map(|&t| self.point(t, true, 256).map(|p| p.perceived))
            .fold(0.0, f64::max);
        let non_perc: f64 = THREAD_COUNTS
            .iter()
            .filter_map(|&t| self.point(t, false, 256).map(|p| p.perceived))
            .fold(f64::INFINITY, f64::min);
        checks.push((
            format!(
                "at L2=256 every decoupled config perceives less latency than every \
                 non-decoupled one (max dec {dec_perc:.1} < min non-dec {non_perc:.1})"
            ),
            dec_perc < non_perc,
        ));

        // Claim 2: at L2=32 decoupled configurations lose only a small
        // fraction of their IPC while non-decoupled ones lose much more.
        let dec_loss_32: f64 = THREAD_COUNTS
            .iter()
            .map(|&t| self.ipc_loss_pct(t, true, 32))
            .fold(0.0, f64::max);
        let non_loss_32: f64 = THREAD_COUNTS
            .iter()
            .map(|&t| self.ipc_loss_pct(t, false, 32))
            .fold(f64::INFINITY, f64::min);
        checks.push((
            format!(
                "at L2=32 decoupled IPC loss (max {dec_loss_32:.1}%) is far below \
                 non-decoupled loss (min {non_loss_32:.1}%); paper: <4% vs >23%"
            ),
            dec_loss_32 < non_loss_32,
        ));

        // Claim 3: at L2=256 decoupled loss stays well below non-decoupled
        // loss (paper: <39% vs >79%).
        let dec_loss_256: f64 = THREAD_COUNTS
            .iter()
            .map(|&t| self.ipc_loss_pct(t, true, 256))
            .fold(0.0, f64::max);
        let non_loss_256: f64 = THREAD_COUNTS
            .iter()
            .map(|&t| self.ipc_loss_pct(t, false, 256))
            .fold(f64::INFINITY, f64::min);
        checks.push((
            format!(
                "at L2=256 decoupled IPC loss (max {dec_loss_256:.1}%) stays below \
                 non-decoupled loss (min {non_loss_256:.1}%); paper: <39% vs >79%"
            ),
            dec_loss_256 < non_loss_256,
        ));

        // Claim 4: multithreading raises the IPC curves (more threads, more
        // IPC at the baseline latency), decoupling flattens them.
        let raising = self
            .point(4, true, 16)
            .zip(self.point(1, true, 16))
            .map(|(four, one)| four.ipc > one.ipc)
            .unwrap_or(false);
        checks.push((
            "multithreading raises the IPC curves (4T > 1T at L2=16)".to_string(),
            raising,
        ));
        let dec_slope = self.ipc_loss_pct(4, true, 256);
        let non_slope = self.ipc_loss_pct(4, false, 256);
        checks.push((
            format!(
                "decoupling flattens the latency curve (4T loss at 256: {dec_slope:.1}% \
                 decoupled vs {non_slope:.1}% non-decoupled)"
            ),
            dec_slope < non_slope,
        ));
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_config_combines_knobs() {
        let cfg = fig4_config(3, false, 128);
        assert_eq!(cfg.num_threads, 3);
        assert!(!cfg.decoupled);
        assert_eq!(cfg.mem.l2_latency, 128);
        assert!(cfg.scale_queues_with_latency);
        assert_eq!(cfg.effective_iq_capacity(), cfg.non_decoupled_iq_capacity);
    }

    #[test]
    fn reduced_grid_has_expected_shape() {
        // Full 48-point grid with tiny runs (debug-mode friendly).
        let params = ExperimentParams {
            instructions_per_point: 8_000,
            insts_per_program: 4_000,
            seed: 9,
            workers: 8,
        };
        let r = run(&params);
        assert_eq!(r.points.len(), THREAD_COUNTS.len() * 2 * L2_LATENCIES.len());
        assert!(r.point(2, true, 64).is_some());
        assert_eq!(r.table_fig4a().num_rows(), 8);
        assert_eq!(r.table_fig4b().num_rows(), 8);
        assert_eq!(r.table_fig4c().num_rows(), 8);
        for p in &r.points {
            assert!(p.ipc > 0.0);
            assert!(p.perceived >= 0.0);
        }
        assert_eq!(r.ipc_loss_pct(1, true, 1), 0.0);
    }
}
