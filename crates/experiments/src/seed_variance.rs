//! Per-cell seed variance study: how sensitive the headline numbers are
//! to the synthetic-workload seed.
//!
//! Every figure of the reproduction uses [`SeedMode::Shared`] for
//! continuity with the seed harness — one seed, so a swept knob is the
//! only difference between neighbouring cells. This study quantifies what
//! that choice hides: the same grid point is simulated [`REPLICAS`] times
//! under decorrelated seeds ([`SeedMode::PerCell`] over replicated
//! workload entries), and the report carries mean, standard deviation and
//! spread of IPC per configuration. Small relative deviations are what
//! justify quoting single-seed numbers everywhere else.

use dsmt_core::SimConfig;
use dsmt_sweep::{Axis, RunRecord, SeedMode, SweepGrid, SweepReport};
use serde::{Deserialize, Serialize};

use crate::report::{fmt_f, fmt_pct};
use crate::{ExperimentParams, Table};

/// Seeds per grid point.
pub const REPLICAS: usize = 4;

/// The variance grid: the paper's multithreaded machine at 2 and 4
/// contexts, L2 at 16 and 64 cycles, with the spec mix replicated
/// [`REPLICAS`] times under per-cell seeding.
#[must_use]
pub fn grid(params: &ExperimentParams) -> SweepGrid {
    SweepGrid::new("seed-variance", SimConfig::paper_multithreaded(1))
        .with_workloads(std::iter::repeat_n(params.spec_mix(), REPLICAS))
        .with_axis(Axis::threads(&[2, 4]))
        .with_axis(Axis::l2_latencies(&[16, 64]))
        .with_seed(params.seed)
        .with_seed_mode(SeedMode::PerCell)
        .with_budget(params.instructions_per_point)
}

/// Mean/deviation of one grid point across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarianceRow {
    /// (axis name, value label) pairs identifying the configuration.
    pub labels: Vec<(String, String)>,
    /// Per-replica IPC samples, in replica order.
    pub samples: Vec<f64>,
    /// Mean IPC across replicas.
    pub mean: f64,
    /// Population standard deviation of IPC across replicas.
    pub stddev: f64,
}

impl VarianceRow {
    /// Builds a row from raw IPC samples, computing mean and population
    /// standard deviation (also used by the fetch-policy-hetero figure to
    /// quote its separations in units of seed noise).
    #[must_use]
    pub fn from_samples(labels: Vec<(String, String)>, samples: Vec<f64>) -> Self {
        let n = samples.len().max(1) as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        VarianceRow {
            labels,
            samples,
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Coefficient of variation (stddev over mean).
    #[must_use]
    pub fn relative_stddev(&self) -> f64 {
        self.stddev / self.mean.max(1e-12)
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The complete variance data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarianceResults {
    /// One row per grid configuration.
    pub rows: Vec<VarianceRow>,
}

/// Variance results plus the sweep report they were distilled from.
#[derive(Debug, Clone)]
pub struct VarianceSweep {
    /// Raw sweep records and cache telemetry.
    pub report: SweepReport,
    /// The distilled study data.
    pub results: VarianceResults,
}

/// Distils a seed-variance report: records are grouped by their position
/// within each workload-replica block (replicas are the outermost grid
/// dimension, so cell `i` belongs to configuration `i % block`).
#[must_use]
pub fn distill(report: &SweepReport) -> VarianceResults {
    let n = report.records.len();
    assert!(
        n.is_multiple_of(REPLICAS) && n > 0,
        "seed-variance report must hold {REPLICAS} full replica blocks, got {n} records"
    );
    let block = n / REPLICAS;
    let rows = (0..block)
        .map(|j| {
            let samples: Vec<&RunRecord> = (0..REPLICAS)
                .map(|w| &report.records[w * block + j])
                .collect();
            debug_assert!(samples
                .iter()
                .all(|r| r.labels == samples[0].labels && r.workload == samples[0].workload));
            VarianceRow::from_samples(
                samples[0].labels.clone(),
                samples.iter().map(|r| r.results.ipc()).collect(),
            )
        })
        .collect();
    VarianceResults { rows }
}

/// Runs the seed-variance sweep through the engine, keeping the raw
/// report.
#[must_use]
pub fn sweep(params: &ExperimentParams) -> VarianceSweep {
    let report = params.engine().run(&grid(params));
    let results = distill(&report);
    VarianceSweep { report, results }
}

/// Runs the seed-variance sweep.
#[must_use]
pub fn run(params: &ExperimentParams) -> VarianceResults {
    sweep(params).results
}

impl VarianceResults {
    /// The study table: mean, stddev and spread per configuration.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut headers: Vec<String> = self
            .rows
            .first()
            .map(|r| r.labels.iter().map(|(k, _)| k.clone()).collect())
            .unwrap_or_default();
        headers.extend(
            ["mean IPC", "stddev", "rel dev", "min", "max", "seeds"]
                .iter()
                .map(ToString::to_string),
        );
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            format!("Seed variance ({REPLICAS} decorrelated seeds per point)"),
            &headers_ref,
        );
        for row in &self.rows {
            let mut cells: Vec<String> = row.labels.iter().map(|(_, v)| v.clone()).collect();
            cells.push(fmt_f(row.mean, 3));
            cells.push(fmt_f(row.stddev, 4));
            cells.push(fmt_pct(row.relative_stddev()));
            cells.push(fmt_f(row.min(), 3));
            cells.push(fmt_f(row.max(), 3));
            cells.push(row.samples.len().to_string());
            table.add_row(cells);
        }
        table
    }

    /// The claims this study documents, with pass/fail.
    #[must_use]
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let mut checks = vec![(
            format!("every configuration carries {REPLICAS} seed samples"),
            !self.rows.is_empty() && self.rows.iter().all(|r| r.samples.len() == REPLICAS),
        )];
        checks.push((
            "seeds genuinely differ (no configuration has all-identical samples)".to_string(),
            self.rows
                .iter()
                .all(|r| r.samples.iter().any(|&s| s != r.samples[0])),
        ));
        checks.push((
            "single-seed figures are representative (relative stddev < 10% everywhere)".to_string(),
            self.rows.iter().all(|r| r.relative_stddev() < 0.10),
        ));
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentParams {
        ExperimentParams {
            instructions_per_point: 20_000,
            insts_per_program: 6_000,
            seed: 42,
            workers: 4,
        }
    }

    #[test]
    fn grid_replicates_workloads_under_per_cell_seeding() {
        let g = grid(&tiny());
        assert_eq!(g.len(), REPLICAS * 4);
        assert_eq!(g.seed_mode, SeedMode::PerCell);
        let cells = g.cells();
        // Replicas of one configuration differ only in seed.
        let block = cells.len() / REPLICAS;
        let (a, b) = (&cells[0], &cells[block]);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.scenario.config, b.scenario.config);
        assert_ne!(a.scenario.seed, b.scenario.seed);
    }

    #[test]
    fn study_distills_and_passes_its_shape_checks() {
        let sweep = sweep(&tiny());
        assert_eq!(sweep.results.rows.len(), 4);
        assert_eq!(sweep.results.table().num_rows(), 4);
        for (claim, ok) in sweep.results.shape_checks() {
            assert!(ok, "shape check failed: {claim}");
        }
        // Mean sits inside the sample spread.
        for row in &sweep.results.rows {
            assert!(row.min() <= row.mean && row.mean <= row.max());
            assert!(row.stddev >= 0.0);
        }
    }
}
