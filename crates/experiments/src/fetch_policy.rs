//! The Section 3.1 fetch-policy study: I-COUNT vs plain round-robin
//! thread selection, across hardware-context counts.
//!
//! The paper argues (Section 3.1) that fetching from the two
//! least-represented threads — Tullsen's I-COUNT — keeps the instruction
//! mix balanced and should do no worse than blind round-robin rotation.
//! On the multiprogrammed SPEC FP95 workload the threads are statistically
//! homogeneous, so the two policies converge: this figure documents that
//! I-COUNT matches round-robin within a small tolerance at every thread
//! count (and is bit-identical below the fetch-gang width, where the
//! policy cannot make a different choice), rather than claiming a dramatic
//! win the workload cannot show.

use dsmt_core::{FetchPolicy, SimConfig};
use dsmt_sweep::{Axis, SweepGrid, SweepReport};
use serde::{Deserialize, Serialize};

use crate::report::fmt_f;
use crate::{ExperimentParams, Table};

/// Thread counts evaluated (the paper's Section 3 x-axis).
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 6];

/// Round-robin may beat I-COUNT by at most this relative margin on the
/// homogeneous mix (measured drift is under 0.5% across budgets; the
/// paper's claim is that I-COUNT does not lose, not that it dominates).
pub const TOLERANCE: f64 = 0.01;

/// The fetch-policy sweep: I-COUNT vs round-robin across thread counts at
/// the paper's 16-cycle L2.
#[must_use]
pub fn grid(params: &ExperimentParams) -> SweepGrid {
    SweepGrid::new("fetch-policy", SimConfig::paper_multithreaded(1))
        .with_workload(params.spec_mix())
        .with_axis(Axis::threads(&THREAD_COUNTS))
        .with_axis(Axis::fetch_policies(&[
            FetchPolicy::ICount,
            FetchPolicy::RoundRobin,
        ]))
        .with_seed(params.seed)
        .with_budget(params.instructions_per_point)
}

/// One row of the figure: both policies' IPC at a thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FetchPolicyRow {
    /// Number of hardware contexts.
    pub threads: usize,
    /// IPC under I-COUNT selection.
    pub icount_ipc: f64,
    /// IPC under round-robin selection.
    pub round_robin_ipc: f64,
}

impl FetchPolicyRow {
    /// I-COUNT's relative advantage over round-robin (positive = I-COUNT
    /// faster).
    #[must_use]
    pub fn advantage_pct(&self) -> f64 {
        (self.icount_ipc / self.round_robin_ipc - 1.0) * 100.0
    }
}

/// The complete fetch-policy data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FetchPolicyResults {
    /// One row per thread count.
    pub rows: Vec<FetchPolicyRow>,
}

/// Fetch-policy results plus the sweep report they were distilled from.
#[derive(Debug, Clone)]
pub struct FetchPolicySweep {
    /// Raw sweep records and cache telemetry.
    pub report: SweepReport,
    /// The distilled figure data.
    pub results: FetchPolicyResults,
}

/// Runs the fetch-policy sweep through the engine, keeping the raw report.
///
/// # Panics
///
/// Panics if the sweep records do not cover both policies at every thread
/// count (a grid construction bug).
#[must_use]
pub fn sweep(params: &ExperimentParams) -> FetchPolicySweep {
    let report = params.engine().run(&grid(params));
    let ipc_of = |threads: usize, policy: &str| -> f64 {
        report
            .records
            .iter()
            .find(|r| {
                r.scenario.config.num_threads == threads && r.label("fetch_policy") == Some(policy)
            })
            .unwrap_or_else(|| panic!("missing cell: {threads} threads, {policy}"))
            .results
            .ipc()
    };
    let rows = THREAD_COUNTS
        .iter()
        .map(|&threads| FetchPolicyRow {
            threads,
            icount_ipc: ipc_of(threads, "icount"),
            round_robin_ipc: ipc_of(threads, "round-robin"),
        })
        .collect();
    FetchPolicySweep {
        report,
        results: FetchPolicyResults { rows },
    }
}

/// Runs the fetch-policy sweep.
#[must_use]
pub fn run(params: &ExperimentParams) -> FetchPolicyResults {
    sweep(params).results
}

impl FetchPolicyResults {
    /// The row for a given thread count.
    #[must_use]
    pub fn row(&self, threads: usize) -> Option<&FetchPolicyRow> {
        self.rows.iter().find(|r| r.threads == threads)
    }

    /// The figure table: IPC per policy and I-COUNT's relative advantage,
    /// one row per thread count.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Fetch policy (Section 3.1): I-COUNT vs round-robin",
            &["threads", "I-COUNT IPC", "round-robin IPC", "I-COUNT adv"],
        );
        for row in &self.rows {
            table.add_row(vec![
                row.threads.to_string(),
                fmt_f(row.icount_ipc, 3),
                fmt_f(row.round_robin_ipc, 3),
                format!("{:+.2}%", row.advantage_pct()),
            ]);
        }
        table
    }

    /// The claims this figure documents, with pass/fail.
    #[must_use]
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let single = self.row(1);
        let mut checks = vec![(
            "1 thread: both policies are bit-identical (no choice to make)".to_string(),
            single.is_some_and(|r| r.icount_ipc == r.round_robin_ipc),
        )];
        for row in self.rows.iter().filter(|r| r.threads >= 2) {
            checks.push((
                format!(
                    "{} threads: I-COUNT IPC >= round-robin IPC (within {:.0}%)",
                    row.threads,
                    TOLERANCE * 100.0
                ),
                row.icount_ipc >= row.round_robin_ipc * (1.0 - TOLERANCE),
            ));
        }
        if let (Some(one), Some(four)) = (self.row(1), self.row(4)) {
            checks.push((
                "multithreading pays under either policy (4T > 1.5x 1T)".to_string(),
                four.icount_ipc > 1.5 * one.icount_ipc
                    && four.round_robin_ipc > 1.5 * one.round_robin_ipc,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentParams {
        ExperimentParams {
            instructions_per_point: 25_000,
            insts_per_program: 8_000,
            seed: 42,
            workers: 4,
        }
    }

    #[test]
    fn grid_covers_both_policies_at_every_thread_count() {
        let g = grid(&tiny());
        assert_eq!(g.len(), THREAD_COUNTS.len() * 2);
        assert_eq!(g.name, "fetch-policy");
    }

    #[test]
    fn figure_distills_and_passes_its_shape_checks() {
        let sweep = sweep(&tiny());
        assert_eq!(sweep.results.rows.len(), THREAD_COUNTS.len());
        let table = sweep.results.table();
        assert_eq!(table.num_rows(), THREAD_COUNTS.len());
        for (claim, ok) in sweep.results.shape_checks() {
            assert!(ok, "shape check failed: {claim}");
        }
    }
}
