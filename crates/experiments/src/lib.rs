//! # dsmt-experiments
//!
//! The experiment harness that regenerates every table and figure of
//! *"The Synergy of Multithreading and Access/Execute Decoupling"*
//! (HPCA 1999) on top of the [`dsmt_core`] simulator:
//!
//! * [`fig1`] — Section 2, Figures 1-a..1-d: latency-hiding effectiveness of
//!   a single-threaded decoupled processor across the SPEC FP95 profiles.
//! * [`fig3`] — Section 3.1, Figure 3: issue-slot breakdown of the
//!   multithreaded decoupled processor for 1–6 threads.
//! * [`fig4`] — Section 3.2, Figure 4: perceived latency, relative IPC loss
//!   and absolute IPC for 1–4 threads with and without decoupling, across
//!   L2 latencies.
//! * [`fig5`] — Section 3.3, Figure 5: IPC versus number of hardware
//!   contexts at L2 = 16 and L2 = 64, decoupled vs non-decoupled, plus
//!   external bus utilisation.
//! * [`fetch_policy`] — Section 3.1: I-COUNT vs round-robin thread
//!   selection across hardware-context counts.
//! * [`fetch_policy_hetero`] — I-COUNT vs round-robin on heterogeneous
//!   assembled workloads (`dsmt-asm` corpus mixes), where the policies
//!   separate; the advantage is asserted against measured seed noise.
//! * [`seed_variance`] — per-cell seed study: every grid point replicated
//!   under decorrelated seeds, with mean/stddev columns quantifying how
//!   representative the single-seed figures are.
//! * [`ablations`] — studies beyond the paper: instruction-queue depth,
//!   MSHR count, issue-width asymmetry and L1 associativity.
//!
//! Each module exposes its sweep as a declarative [`dsmt_sweep::SweepGrid`]
//! (`grid`/`grids`), a `sweep(&ExperimentParams)` function returning the
//! distilled figure data *plus* the raw [`dsmt_sweep::SweepReport`] (for
//! JSON/CSV export and cache telemetry), and a `run(&ExperimentParams)`
//! convenience returning just the figure data. The binaries (`fig1`,
//! `fig3`, `fig4`, `fig5`, `ablations`, `all_experiments`) wrap those
//! functions.
//!
//! Sweeps execute on the `dsmt-sweep` work-stealing engine: cells run in
//! parallel with deterministic per-cell seeding (results are bit-identical
//! at any worker count) and an on-disk result cache keyed by
//! (config, workload, seed, budget) — re-running a figure only simulates
//! cells whose parameters changed. Each individual simulation stays
//! single-threaded and deterministic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod fetch_policy;
pub mod fetch_policy_hetero;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod report;
pub mod runner;
pub mod seed_variance;

pub use dsmt_sweep::{
    Axis, RunRecord, Scenario, Setting, SweepEngine, SweepGrid, SweepReport, WorkloadSpec,
};
pub use report::Table;
pub use runner::{
    maybe_run_shard, parallel_map, parse_shard_selector, plan_file_name, run_shard_grids,
    ExperimentParams, ShardedGridRun,
};

/// The L2 latencies swept by the paper (Figures 1 and 4).
pub const L2_LATENCIES: [u64; 6] = [1, 16, 32, 64, 128, 256];
