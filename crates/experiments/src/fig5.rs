//! Figure 5 (Section 3.3): decoupling reduces the number of hardware
//! contexts and avoids external bus saturation.
//!
//! The paper sweeps the number of hardware contexts — 1 to 8 at the
//! baseline 16-cycle L2 latency, and 1 to 16 at a 64-cycle latency — for
//! the decoupled and non-decoupled machines, and observes:
//!
//! * the decoupled machine reaches its peak IPC with only 3–4 threads
//!   (4–5 at the higher latency);
//! * the non-decoupled machine needs ~6 threads at L2 = 16 and cannot reach
//!   the decoupled machine's performance at L2 = 64 for *any* thread count,
//!   because the external L1–L2 bus saturates (89% utilisation at 12
//!   threads, 98% at 16).

use dsmt_core::SimConfig;
use dsmt_sweep::{Axis, SweepGrid, SweepReport};
use serde::{Deserialize, Serialize};

use crate::report::{fmt_f, fmt_pct};
use crate::{ExperimentParams, Table};

/// One configuration's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// L2 hit latency in cycles (16 or 64 in the paper).
    pub l2_latency: u64,
    /// Number of hardware contexts.
    pub threads: usize,
    /// Whether decoupling was enabled.
    pub decoupled: bool,
    /// Instructions per cycle.
    pub ipc: f64,
    /// External L1–L2 bus utilisation over the run.
    pub bus_utilization: f64,
    /// Combined L1 load miss ratio (grows with the thread count as the
    /// combined working set outgrows the shared cache).
    pub load_miss_ratio: f64,
}

/// The complete Figure 5 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Results {
    /// All evaluated points.
    pub points: Vec<Fig5Point>,
}

/// Thread counts evaluated at L2 = 16 (solid lines in the paper).
pub const THREADS_L2_16: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
/// Thread counts evaluated at L2 = 64 (dotted lines in the paper).
pub const THREADS_L2_64: [usize; 9] = [1, 2, 3, 4, 6, 8, 10, 12, 16];

/// The simulator configuration used for Figure 5.
///
/// As for the other latency sweeps, the per-thread queues and register
/// files scale with the L2 latency (the paper's Section 2 rule); at the
/// baseline 16-cycle latency this leaves the Figure-2 sizes unchanged.
/// Disabling decoupling restricts the instruction queue regardless.
#[must_use]
pub fn fig5_config(threads: usize, decoupled: bool, l2_latency: u64) -> SimConfig {
    SimConfig::paper_multithreaded(threads)
        .with_decoupled(decoupled)
        .with_l2_latency(l2_latency)
        .with_queue_scaling(true)
}

/// The Figure 5 sweep for one L2 latency: thread count × decoupling.
#[must_use]
pub fn grid_at_latency(params: &ExperimentParams, l2_latency: u64, threads: &[usize]) -> SweepGrid {
    SweepGrid::new(
        format!("fig5-l2-{l2_latency}"),
        SimConfig::paper_multithreaded(1)
            .with_l2_latency(l2_latency)
            .with_queue_scaling(true),
    )
    .with_workload(params.spec_mix())
    .with_axis(Axis::threads(threads))
    .with_axis(Axis::decoupled(&[true, false]))
    .with_seed(params.seed)
    .with_budget(params.instructions_per_point)
}

/// The two Figure 5 grids (L2 = 16 and L2 = 64), in run order.
#[must_use]
pub fn grids(params: &ExperimentParams) -> Vec<SweepGrid> {
    vec![
        grid_at_latency(params, 16, &THREADS_L2_16),
        grid_at_latency(params, 64, &THREADS_L2_64),
    ]
}

/// Figure 5 results plus the merged sweep report they were distilled from.
#[derive(Debug, Clone)]
pub struct Fig5Sweep {
    /// Raw sweep records (both grids merged) and cache telemetry.
    pub report: SweepReport,
    /// The distilled figure data.
    pub results: Fig5Results,
}

/// Runs both Figure 5 grids through the engine, keeping the merged report.
#[must_use]
pub fn sweep(params: &ExperimentParams) -> Fig5Sweep {
    // One shared worker pool across both grids: cells interleave, so the
    // small L2=16 grid does not serialize behind the L2=64 one.
    let reports = params.engine().run_many(&grids(params));
    let report = SweepReport::merged("fig5", reports);
    let points = report
        .records
        .iter()
        .map(|rec| Fig5Point {
            l2_latency: rec.scenario.config.mem.l2_latency,
            threads: rec.scenario.config.num_threads,
            decoupled: rec.scenario.config.decoupled,
            ipc: rec.results.ipc(),
            bus_utilization: rec.results.bus_utilization,
            load_miss_ratio: rec.results.load_miss_ratio(),
        })
        .collect();
    Fig5Sweep {
        report,
        results: Fig5Results { points },
    }
}

/// Runs the full Figure 5 sweep.
#[must_use]
pub fn run(params: &ExperimentParams) -> Fig5Results {
    sweep(params).results
}

impl Fig5Results {
    /// Looks up one point.
    #[must_use]
    pub fn point(&self, l2_latency: u64, threads: usize, decoupled: bool) -> Option<&Fig5Point> {
        self.points.iter().find(|p| {
            p.l2_latency == l2_latency && p.threads == threads && p.decoupled == decoupled
        })
    }

    /// The peak IPC over all thread counts for a (latency, decoupled) line,
    /// together with the smallest thread count achieving at least 95% of it
    /// (the "knee" of the curve).
    #[must_use]
    pub fn peak(&self, l2_latency: u64, decoupled: bool) -> Option<(f64, usize)> {
        let line: Vec<&Fig5Point> = self
            .points
            .iter()
            .filter(|p| p.l2_latency == l2_latency && p.decoupled == decoupled)
            .collect();
        let peak = line.iter().map(|p| p.ipc).fold(f64::NAN, f64::max);
        if !peak.is_finite() {
            return None;
        }
        let threads = line
            .iter()
            .filter(|p| p.ipc >= 0.95 * peak)
            .map(|p| p.threads)
            .min()?;
        Some((peak, threads))
    }

    /// The IPC-vs-threads table for one latency.
    #[must_use]
    pub fn table(&self, l2_latency: u64) -> Table {
        let mut table = Table::new(
            format!("Figure 5 (L2 latency = {l2_latency}): IPC and bus utilisation vs threads"),
            &[
                "threads",
                "decoupled IPC",
                "decoupled bus",
                "non-dec IPC",
                "non-dec bus",
                "non-dec load miss",
            ],
        );
        let mut threads: Vec<usize> = self
            .points
            .iter()
            .filter(|p| p.l2_latency == l2_latency)
            .map(|p| p.threads)
            .collect();
        threads.sort_unstable();
        threads.dedup();
        for t in threads {
            let dec = self.point(l2_latency, t, true);
            let non = self.point(l2_latency, t, false);
            table.add_row(vec![
                t.to_string(),
                dec.map(|p| fmt_f(p.ipc, 2)).unwrap_or_else(|| "-".into()),
                dec.map(|p| fmt_pct(p.bus_utilization))
                    .unwrap_or_else(|| "-".into()),
                non.map(|p| fmt_f(p.ipc, 2)).unwrap_or_else(|| "-".into()),
                non.map(|p| fmt_pct(p.bus_utilization))
                    .unwrap_or_else(|| "-".into()),
                non.map(|p| fmt_pct(p.load_miss_ratio))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        table
    }

    /// Checks the paper's qualitative claims for Figure 5.
    #[must_use]
    pub fn shape_checks(&self) -> Vec<(String, bool)> {
        let mut checks = Vec::new();
        if let (Some((dec_peak, dec_t)), Some((non_peak, non_t))) =
            (self.peak(16, true), self.peak(16, false))
        {
            checks.push((
                format!(
                    "L2=16: decoupled reaches its peak with fewer threads than non-decoupled \
                     ({dec_t} vs {non_t} threads; paper: 3-4 vs ~6)"
                ),
                dec_t < non_t,
            ));
            checks.push((
                format!(
                    "L2=16: decoupled peak IPC ({dec_peak:.2}) is at least as high as \
                     non-decoupled ({non_peak:.2})"
                ),
                dec_peak >= 0.95 * non_peak,
            ));
        }
        if let (Some((dec_peak, dec_t)), Some((non_peak, _))) =
            (self.peak(64, true), self.peak(64, false))
        {
            checks.push((
                format!(
                    "L2=64: decoupled reaches its peak ({dec_peak:.2}) with few threads \
                     ({dec_t}; paper: 4-5)"
                ),
                dec_t <= 6,
            ));
            checks.push((
                format!(
                    "L2=64: non-decoupled never reaches the decoupled peak \
                     (non-dec best {non_peak:.2} < dec peak {dec_peak:.2})"
                ),
                non_peak < dec_peak,
            ));
        }
        // Bus saturation for the many-thread non-decoupled configurations at
        // L2 = 64 (paper: 89% at 12 threads, 98% at 16).
        if let Some(p12) = self.point(64, 12, false) {
            checks.push((
                format!(
                    "L2=64, 12 non-decoupled threads: external bus is close to saturation \
                     ({:.0}%; paper 89%)",
                    p12.bus_utilization * 100.0
                ),
                p12.bus_utilization > 0.75,
            ));
        }
        // Miss ratios grow with the number of threads (shared-cache
        // contention), which is what drives the bandwidth wall.
        let few = self.point(64, 1, false).map(|p| p.load_miss_ratio);
        let many = self.point(64, 16, false).map(|p| p.load_miss_ratio);
        if let (Some(few), Some(many)) = (few, many) {
            checks.push((
                format!(
                    "L2=64 non-decoupled: load miss ratio grows with thread count \
                     ({:.1}% at 1T -> {:.1}% at 16T)",
                    few * 100.0,
                    many * 100.0
                ),
                many > few,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_config_scales_queues_with_latency() {
        let cfg = fig5_config(12, false, 64);
        assert_eq!(cfg.num_threads, 12);
        assert!(!cfg.decoupled);
        assert_eq!(cfg.mem.l2_latency, 64);
        assert!(cfg.scale_queues_with_latency);
        // At the baseline latency the scaling is a no-op.
        assert_eq!(fig5_config(4, true, 16).effective_iq_capacity(), 48);
    }

    #[test]
    fn peak_and_table_on_synthetic_points() {
        // Hand-built points exercise the analysis helpers without running
        // the simulator.
        let mk = |lat, threads, dec, ipc, bus| Fig5Point {
            l2_latency: lat,
            threads,
            decoupled: dec,
            ipc,
            bus_utilization: bus,
            load_miss_ratio: 0.1,
        };
        let r = Fig5Results {
            points: vec![
                mk(16, 1, true, 2.5, 0.2),
                mk(16, 3, true, 6.5, 0.5),
                mk(16, 6, true, 6.6, 0.6),
                mk(16, 1, false, 1.8, 0.3),
                mk(16, 3, false, 4.0, 0.6),
                mk(16, 6, false, 6.3, 0.9),
            ],
        };
        let (peak, threads) = r.peak(16, true).unwrap();
        assert!((peak - 6.6).abs() < 1e-12);
        assert_eq!(threads, 3, "3 threads already reach 95% of the peak");
        let (_, non_threads) = r.peak(16, false).unwrap();
        assert_eq!(non_threads, 6);
        let table = r.table(16);
        assert_eq!(table.num_rows(), 3);
        assert!(r.peak(64, true).is_none());
    }

    #[test]
    fn tiny_simulated_sweep_produces_all_points() {
        let params = ExperimentParams {
            instructions_per_point: 6_000,
            insts_per_program: 3_000,
            seed: 5,
            workers: 8,
        };
        let r = run(&params);
        assert_eq!(
            r.points.len(),
            THREADS_L2_16.len() * 2 + THREADS_L2_64.len() * 2
        );
        for p in &r.points {
            assert!(p.ipc > 0.0);
            assert!((0.0..=1.0).contains(&p.bus_utilization));
        }
        assert!(r.point(64, 16, false).is_some());
    }
}
