//! `dsmt-obs` — zero-dependency structured telemetry for the sweep stack.
//!
//! Two independent facilities, both designed to cost (close to) nothing
//! when nobody is listening:
//!
//! * **Events and spans** ([`emit`], [`span`], the [`event!`]/[`warn!`]
//!   macros): structured key-value events routed to a sink chosen by the
//!   `DSMT_LOG` environment variable. Tracing is off by default (only
//!   warnings reach stderr); `DSMT_LOG=pretty` streams human-readable
//!   lines to stderr, `DSMT_LOG=jsonl:<path>` appends one JSON object per
//!   line to a file (the form CI parses), and `DSMT_LOG=off` silences
//!   everything including warnings. The enabled-level check is a single
//!   relaxed atomic load, and field values are never even constructed for
//!   suppressed events (the macros guard with [`enabled`] first).
//!
//! * **A metrics registry** ([`registry`], the [`counter!`]/[`gauge!`]/
//!   [`histogram!`] macros): named counters, gauges and log2-bucket
//!   histograms backed by plain atomics. Registration takes a mutex once
//!   per call *site* (the macros cache the `Arc` handle in a local
//!   `OnceLock`); the hot path is a relaxed `fetch_add`. A [`Snapshot`]
//!   of every metric renders as JSON or CSV (`dsmt obs report`), and
//!   `DSMT_METRICS=<path>` makes the CLI dump one on exit.
//!
//! `DSMT_LOG` values:
//!
//! | value | effect |
//! | --- | --- |
//! | *(unset)* | warnings only, pretty, to stderr |
//! | `off` / `0` / `none` | nothing at all |
//! | `pretty` / `stderr` | every event, pretty, to stderr |
//! | `jsonl` / `jsonl:-` | every event, JSONL, to stderr |
//! | `jsonl:<path>` | every event, JSONL, appended to `<path>` |
//!
//! The crate is deliberately dependency-free (JSON lines are emitted by
//! hand) so that every runtime crate — `dsmt-core` included — can depend
//! on it without layering cycles.
//!
//! # Example
//!
//! ```
//! use dsmt_obs as obs;
//! obs::counter!("demo.cells").add(3);
//! obs::histogram!("demo.wall_us").record(1500);
//! obs::warn!("demo.skipped", reason = "cache disabled", shard = 2usize);
//! let snap = obs::registry().snapshot();
//! assert!(snap.to_json().contains("demo.cells"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod sink;

pub use metrics::{
    bucket_bounds, bucket_index, dump_to_env_path, registry, Counter, Gauge, Histogram,
    HistogramSnapshot, Registry, Snapshot, HISTOGRAM_BUCKETS,
};
pub use sink::{emit, enabled, init_from_spec, span, FieldValue, Level, Span};

/// Emits a structured event at an explicit [`Level`].
///
/// Field values are only evaluated when the level is enabled, so an
/// expensive `format!` in a field position costs nothing while tracing is
/// off. Keys are bare identifiers; values are anything with a
/// `FieldValue: From` impl (unsigned/signed integers, floats, bools,
/// strings).
///
/// ```
/// use dsmt_obs as obs;
/// obs::event!(obs::Level::Info, "sweep.done", cells = 12usize, wall_secs = 0.25);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::emit(
                $level,
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

/// Emits a [`Level::Debug`] event (see [`event!`]).
#[macro_export]
macro_rules! debug {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::event!($crate::Level::Debug, $name $(, $key = $value)*)
    };
}

/// Emits a [`Level::Info`] event (see [`event!`]).
#[macro_export]
macro_rules! info {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::event!($crate::Level::Info, $name $(, $key = $value)*)
    };
}

/// Emits a [`Level::Warn`] event (see [`event!`]). This is the structured
/// replacement for ad-hoc `eprintln!` warnings: visible on stderr by
/// default, machine-readable under `DSMT_LOG=jsonl:…`, and silenceable
/// with `DSMT_LOG=off`.
#[macro_export]
macro_rules! warn {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::event!($crate::Level::Warn, $name $(, $key = $value)*)
    };
}

/// A named [`Counter`] handle, registered once per call site and cached in
/// a local `OnceLock` — the hot path after the first call is one relaxed
/// atomic add, with no registry lock.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __OBS_COUNTER: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**__OBS_COUNTER.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// A named [`Gauge`] handle, cached per call site like [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __OBS_GAUGE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__OBS_GAUGE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// A named [`Histogram`] handle, cached per call site like [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __OBS_HISTOGRAM: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__OBS_HISTOGRAM.get_or_init(|| $crate::registry().histogram($name))
    }};
}
