//! The event sink: `DSMT_LOG` resolution, levels, field values, spans,
//! and the pretty/JSONL line emitters.

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime};

/// Event severity. Ordering matters: a sink enabled at some minimum level
/// emits every event at that level or above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (per-cell cache decisions, span begins).
    Debug = 0,
    /// Lifecycle events (sweep done, shard published, claim stolen).
    Info = 1,
    /// Something degraded but the run continues (GC skipped, publish
    /// failed). Visible on stderr even with `DSMT_LOG` unset.
    Warn = 2,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// One structured field value. Constructed via `From` by the event macros.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as JSON `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}
impl_field_from!(
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Pretty,
    Jsonl,
}

#[derive(Debug)]
enum Output {
    Stderr,
    File(std::fs::File),
}

#[derive(Debug)]
struct Sink {
    format: Format,
    output: Output,
}

/// `MIN_LEVEL` values beyond the three levels: everything suppressed, and
/// "not yet resolved from the environment".
const LEVEL_OFF: u8 = 3;
const LEVEL_UNSET: u8 = 4;

static MIN_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static Mutex<Option<Sink>> {
    static STATE: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Whether events at `level` are currently emitted — one relaxed atomic
/// load on the hot path (after the first call resolves `DSMT_LOG`). The
/// event macros check this before constructing any field value.
#[must_use]
pub fn enabled(level: Level) -> bool {
    let mut min = MIN_LEVEL.load(Ordering::Relaxed);
    if min == LEVEL_UNSET {
        init_from_env();
        min = MIN_LEVEL.load(Ordering::Relaxed);
    }
    level as u8 >= min
}

fn init_from_env() {
    let spec = std::env::var("DSMT_LOG").unwrap_or_default();
    apply_spec(&spec);
}

/// Installs a sink from a `DSMT_LOG`-syntax spec, overriding whatever the
/// environment said (or will say). Intended for tests and embedders that
/// must not depend on process-global environment timing; the CLI and every
/// library path resolve `DSMT_LOG` lazily on first use instead.
pub fn init_from_spec(spec: &str) {
    apply_spec(spec);
}

fn apply_spec(spec: &str) {
    let spec = spec.trim();
    let mut bad_spec = None;
    let (sink, min) = if spec.is_empty() {
        // Default: warnings stay visible, tracing stays silent.
        (
            Some(Sink {
                format: Format::Pretty,
                output: Output::Stderr,
            }),
            Level::Warn as u8,
        )
    } else if spec.eq_ignore_ascii_case("off") || spec == "0" || spec.eq_ignore_ascii_case("none") {
        (None, LEVEL_OFF)
    } else if spec.eq_ignore_ascii_case("pretty") || spec.eq_ignore_ascii_case("stderr") {
        (
            Some(Sink {
                format: Format::Pretty,
                output: Output::Stderr,
            }),
            Level::Debug as u8,
        )
    } else if spec.eq_ignore_ascii_case("jsonl") || spec == "jsonl:-" {
        (
            Some(Sink {
                format: Format::Jsonl,
                output: Output::Stderr,
            }),
            Level::Debug as u8,
        )
    } else if let Some(path) = spec.strip_prefix("jsonl:") {
        match open_append(path) {
            Ok(file) => (
                Some(Sink {
                    format: Format::Jsonl,
                    output: Output::File(file),
                }),
                Level::Debug as u8,
            ),
            Err(e) => {
                bad_spec = Some(format!("cannot open {path}: {e}"));
                (
                    Some(Sink {
                        format: Format::Pretty,
                        output: Output::Stderr,
                    }),
                    Level::Warn as u8,
                )
            }
        }
    } else {
        bad_spec = Some(format!("unknown DSMT_LOG value `{spec}`"));
        (
            Some(Sink {
                format: Format::Pretty,
                output: Output::Stderr,
            }),
            Level::Warn as u8,
        )
    };
    *state().lock().expect("obs sink lock") = sink;
    MIN_LEVEL.store(min, Ordering::SeqCst);
    if let Some(why) = bad_spec {
        crate::warn!("obs.bad_log_spec", why = why);
    }
}

fn open_append(path: &str) -> std::io::Result<std::fs::File> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
}

/// Emits one structured event. Prefer the [`event!`](crate::event!) /
/// [`warn!`](crate::warn!) macros, which guard with [`enabled`] so field
/// values are never constructed for suppressed events.
pub fn emit(level: Level, event: &str, fields: &[(&str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut guard = state().lock().expect("obs sink lock");
    let Some(sink) = guard.as_mut() else {
        return;
    };
    let line = match sink.format {
        Format::Jsonl => jsonl_line(ts_ms, seq, level, event, fields),
        Format::Pretty => pretty_line(level, event, fields),
    };
    // One write per line: appends of a line-sized buffer interleave
    // whole-line across processes sharing a JSONL file.
    let _ = match &mut sink.output {
        Output::Stderr => std::io::stderr().write_all(line.as_bytes()),
        Output::File(f) => f.write_all(line.as_bytes()),
    };
}

fn jsonl_line(
    ts_ms: u64,
    seq: u64,
    level: Level,
    event: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    let mut out = String::with_capacity(96 + fields.len() * 24);
    out.push_str("{\"ts_ms\":");
    out.push_str(&ts_ms.to_string());
    out.push_str(",\"seq\":");
    out.push_str(&seq.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&std::process::id().to_string());
    out.push_str(",\"level\":\"");
    out.push_str(level.name());
    out.push_str("\",\"event\":");
    push_json_str(&mut out, event);
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, key);
        out.push(':');
        push_json_value(&mut out, value);
    }
    out.push_str("}}\n");
    out
}

fn pretty_line(level: Level, event: &str, fields: &[(&str, FieldValue)]) -> String {
    let mut out = String::with_capacity(48 + fields.len() * 16);
    out.push('[');
    out.push_str(level.name());
    out.push_str("] ");
    out.push_str(event);
    for (key, value) in fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        match value {
            FieldValue::Str(s) => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
            other => push_json_value(&mut out, other),
        }
    }
    out.push('\n');
    out
}

/// Appends `s` as a JSON string literal (quotes, escapes, control chars).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(f) if f.is_finite() => out.push_str(&f.to_string()),
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => push_json_str(out, s),
    }
}

/// A timed scope. Created by [`span`]; on drop it emits an [`Level::Info`]
/// event named after the span, carrying `elapsed_ms` plus any fields added
/// with [`Span::field`]. When info-level tracing is disabled the guard is
/// an empty shell: no clock is read and nothing is emitted.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: String,
    fields: Vec<(String, FieldValue)>,
    start: Instant,
}

/// Opens a [`Span`]. A `<name>.begin` debug event marks the start (so live
/// JSONL traces show long-running work in flight); the info event at drop
/// carries the duration.
pub fn span(name: &str) -> Span {
    if !enabled(Level::Info) {
        return Span { inner: None };
    }
    crate::debug!(&format!("{name}.begin"));
    Span {
        inner: Some(SpanInner {
            name: name.to_string(),
            fields: Vec::new(),
            start: Instant::now(),
        }),
    }
}

impl Span {
    /// Attaches a field to the span's closing event (no-op when disabled).
    pub fn field(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Attaches a field through a mutable reference (for fields only known
    /// mid-scope).
    pub fn add_field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed_ms = inner.start.elapsed().as_secs_f64() * 1e3;
        let mut fields: Vec<(&str, FieldValue)> = vec![("elapsed_ms", FieldValue::F64(elapsed_ms))];
        fields.extend(inner.fields.iter().map(|(k, v)| (k.as_str(), v.clone())));
        emit(Level::Info, &inner.name, &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dsmt-obs-sink-{}-{tag}.jsonl", std::process::id()))
    }

    /// The sink is process-global, so every scenario lives in this one
    /// test (Rust runs tests of a binary concurrently).
    #[test]
    fn jsonl_file_sink_levels_and_span_lifecycle() {
        let path = temp_file("all");
        let _ = std::fs::remove_file(&path);
        init_from_spec(&format!("jsonl:{}", path.display()));
        assert!(enabled(Level::Debug) && enabled(Level::Warn));

        crate::info!(
            "t.event",
            cells = 12usize,
            label = "a\"b",
            ok = true,
            rate = 1.5
        );
        {
            let mut s = span("t.span").field("grid", "demo");
            s.add_field("cells", 3usize);
        }
        let text = std::fs::read_to_string(&path).expect("trace file");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"event\":\"t.event\""));
        assert!(lines[0].contains("\"cells\":12"));
        assert!(lines[0].contains("\"label\":\"a\\\"b\""));
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[0].contains("\"rate\":1.5"));
        assert!(lines[1].contains("\"t.span.begin\""));
        assert!(lines[2].contains("\"event\":\"t.span\""));
        assert!(lines[2].contains("\"elapsed_ms\":"));
        assert!(lines[2].contains("\"grid\":\"demo\""));
        assert!(lines[2].contains("\"cells\":3"));

        // `off` silences everything, even warnings, and spans are shells.
        init_from_spec("off");
        assert!(!enabled(Level::Warn));
        crate::warn!("t.suppressed");
        let s = span("t.dead");
        assert!(s.inner.is_none());
        drop(s);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap().lines().count(),
            3,
            "no events after off"
        );

        // Default (empty spec): warnings enabled, info suppressed.
        init_from_spec("");
        assert!(enabled(Level::Warn) && !enabled(Level::Info));

        // An unknown spec falls back to the default and says so.
        init_from_spec("verbose");
        assert!(enabled(Level::Warn) && !enabled(Level::Info));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escaping_covers_quotes_backslashes_and_control_chars() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        let mut out = String::new();
        push_json_value(&mut out, &FieldValue::F64(f64::NAN));
        assert_eq!(out, "null");
        let mut out = String::new();
        push_json_value(&mut out, &FieldValue::I64(-3));
        assert_eq!(out, "-3");
    }
}
