//! The metrics registry: named counters, gauges and log2-bucket
//! histograms, plus point-in-time [`Snapshot`]s rendered as JSON or CSV.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero, one per power of two up to
/// `2^63`, and a final bucket for `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log2-bucket histogram. Bucket `0` holds zeros; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)` (the last bucket is open-ended).
/// Recording is two relaxed adds and a branch-free bucket index — cheap
/// enough for per-cell timing.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` observations of the same value at once — used when a
    /// component accumulates its own bucket counts during a run and folds
    /// them into the registry afterwards (e.g. the core's wake-list depth
    /// samples).
    pub fn record_n(&self, v: u64, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// The bucket index a value lands in: `0` for zero, else
/// `64 - leading_zeros(v)` (so `1 → 1`, `2..=3 → 2`, `4..=7 → 3`, …).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive `(lo, hi)` value range covered by bucket `i`.
///
/// # Panics
/// If `i >= HISTOGRAM_BUCKETS`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// The process-wide metric registry. Metrics are created on first use and
/// live for the process lifetime; handles are `Arc`s so the macros can
/// cache them per call site and skip the registry lock thereafter.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// The counter named `name`, created if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("obs registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs registry lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs registry lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs registry lock")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// A point-in-time copy of a [`Histogram`]: total count and sum plus the
/// non-empty `(bucket_index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every metric in a [`Registry`], suitable for
/// embedding in a `SweepReport` or dumping via `dsmt obs report`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// True when no metric has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as a single JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{"count":…,"sum":…,"buckets":[[i,n],…]},…}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.counters.len() * 32);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str("{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&h.sum.to_string());
            out.push_str(",\"buckets\":[");
            for (j, (idx, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{idx},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as CSV with a `kind,name,field,value` header.
    /// Histograms expand to `count`, `sum`, `mean` and one `bucket_<i>`
    /// row per non-empty bucket.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{name},value,{v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge,{name},value,{v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("histogram,{name},count,{}\n", h.count));
            out.push_str(&format!("histogram,{name},sum,{}\n", h.sum));
            out.push_str(&format!("histogram,{name},mean,{}\n", h.mean()));
            for (idx, n) in &h.buckets {
                out.push_str(&format!("histogram,{name},bucket_{idx},{n}\n"));
            }
        }
        out
    }
}

fn push_key(out: &mut String, name: &str) {
    // Metric names are code-chosen identifiers ([a-z0-9._]); escaping the
    // two JSON-significant characters keeps the output well-formed even
    // if a caller strays from that convention.
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push_str("\":");
}

/// When `DSMT_METRICS=<path>` is set, writes the registry snapshot there
/// as JSON and returns the path. The CLI calls this once on successful
/// exit.
pub fn dump_to_env_path() -> Option<PathBuf> {
    let path = PathBuf::from(std::env::var_os("DSMT_METRICS")?);
    let snap = registry().snapshot();
    if let Err(e) = std::fs::write(&path, snap.to_json()) {
        crate::warn!(
            "obs.metrics_dump_failed",
            path = path.display().to_string(),
            error = e.to_string()
        );
        return None;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip_through_the_registry() {
        let reg = Registry::default();
        reg.counter("t.cells").add(5);
        reg.counter("t.cells").inc();
        reg.gauge("t.workers").set(4);
        reg.gauge("t.workers").add(-1);
        reg.histogram("t.wall_us").record(0);
        reg.histogram("t.wall_us").record(1);
        reg.histogram("t.wall_us").record(1500);

        let snap = reg.snapshot();
        assert!(!snap.is_empty());
        assert_eq!(snap.counters, vec![("t.cells".to_string(), 6)]);
        assert_eq!(snap.gauges, vec![("t.workers".to_string(), 3)]);
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "t.wall_us");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1501);
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (11, 1)]);
        assert!((h.mean() - 1501.0 / 3.0).abs() < 1e-9);

        let json = snap.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"t.cells\":6},\"gauges\":{\"t.workers\":3},\
             \"histograms\":{\"t.wall_us\":{\"count\":3,\"sum\":1501,\
             \"buckets\":[[0,1],[1,1],[11,1]]}}}"
        );

        let csv = snap.to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,t.cells,value,6\n"));
        assert!(csv.contains("gauge,t.workers,value,3\n"));
        assert!(csv.contains("histogram,t.wall_us,bucket_11,1\n"));
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
        for i in 1..HISTOGRAM_BUCKETS {
            let (_, prev_hi) = bucket_bounds(i - 1);
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, prev_hi + 1, "bucket {i} leaves a gap");
            assert!(lo <= hi);
        }
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::default();
        let a = reg.counter("t.shared");
        let b = reg.counter("t.shared");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Every value lands in exactly the bucket whose bounds contain it.
        #[test]
        fn bucket_index_matches_bucket_bounds(v in any::<u64>()) {
            let i = bucket_index(v);
            prop_assert!(i < HISTOGRAM_BUCKETS);
            let (lo, hi) = bucket_bounds(i);
            prop_assert!(lo <= v && v <= hi, "{v} not in bucket {i} [{lo},{hi}]");
        }

        /// bucket_index is monotone: larger values never map to smaller
        /// buckets.
        #[test]
        fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
        }

        /// A histogram's snapshot conserves count and sum.
        #[test]
        fn histogram_conserves_count_and_sum(values in prop::collection::vec(0u64..1_000_000, 0..12)) {
            let h = Histogram::default();
            for &v in &values {
                h.record(v);
            }
            let snap = h.snapshot();
            prop_assert_eq!(snap.count, values.len() as u64);
            prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
            let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
            prop_assert_eq!(bucket_total, values.len() as u64);
        }
    }
}
