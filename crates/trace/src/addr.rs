//! Memory address stream generators.
//!
//! Numerical codes like SPEC FP95 mostly stream through large arrays with
//! regular strides (producing compulsory/capacity misses proportional to the
//! stride-to-line ratio) and keep a small scalar/stack region that almost
//! always hits. The combination of these two generators, with per-benchmark
//! footprints, reproduces the miss-ratio differences of Figure 1-c and the
//! working-set growth with thread count discussed in Section 3.1.

use serde::{Deserialize, Serialize};

/// A strided walk through a (possibly very large) array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayStream {
    base: u64,
    size: u64,
    stride: u64,
    pos: u64,
}

impl ArrayStream {
    /// Creates a stream over `[base, base + size)` advancing by `stride`
    /// bytes per access and wrapping at the end.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `stride` is zero.
    #[must_use]
    pub fn new(base: u64, size: u64, stride: u64) -> Self {
        assert!(size > 0, "array size must be non-zero");
        assert!(stride > 0, "stride must be non-zero");
        ArrayStream {
            base,
            size,
            stride,
            pos: 0,
        }
    }

    /// The array's base address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The array's size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The next address in the stream.
    pub fn next_addr(&mut self) -> u64 {
        let addr = self.base + self.pos;
        self.pos = (self.pos + self.stride) % self.size;
        addr
    }

    /// The address the next call to [`ArrayStream::next_addr`] will return,
    /// without advancing.
    #[must_use]
    pub fn peek_addr(&self) -> u64 {
        self.base + self.pos
    }

    /// Restarts the walk at the base address.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// A small, heavily reused region (scalars, stack, lookup tables).
///
/// Accesses cycle through a handful of distinct addresses so that, once
/// warm, they always hit in the L1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalarRegion {
    base: u64,
    size: u64,
    cursor: u64,
}

impl ScalarRegion {
    /// Creates a reuse region of `size` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(base: u64, size: u64) -> Self {
        assert!(size > 0, "scalar region size must be non-zero");
        ScalarRegion {
            base,
            size,
            cursor: 0,
        }
    }

    /// The next scalar address (8-byte granularity, cycling).
    pub fn next_addr(&mut self) -> u64 {
        let addr = self.base + self.cursor;
        self.cursor = (self.cursor + 8) % self.size;
        addr
    }

    /// The region's size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_stream_strides_and_wraps() {
        let mut a = ArrayStream::new(0x1000, 32, 8);
        assert_eq!(a.next_addr(), 0x1000);
        assert_eq!(a.next_addr(), 0x1008);
        assert_eq!(a.next_addr(), 0x1010);
        assert_eq!(a.next_addr(), 0x1018);
        assert_eq!(a.next_addr(), 0x1000, "wraps at the end");
    }

    #[test]
    fn peek_and_rewind() {
        let mut a = ArrayStream::new(0x0, 64, 16);
        assert_eq!(a.peek_addr(), 0x0);
        a.next_addr();
        assert_eq!(a.peek_addr(), 0x10);
        a.rewind();
        assert_eq!(a.peek_addr(), 0x0);
        assert_eq!(a.base(), 0x0);
        assert_eq!(a.size(), 64);
    }

    #[test]
    fn addresses_stay_within_bounds() {
        let mut a = ArrayStream::new(0x4000, 1000, 24);
        for _ in 0..10_000 {
            let addr = a.next_addr();
            assert!((0x4000..0x4000 + 1000).contains(&addr));
        }
    }

    #[test]
    fn unit_stride_touches_every_line_once_per_pass() {
        // 8-byte stride over a 4 KB array: 512 distinct addresses, 128
        // distinct 32-byte lines per pass.
        let mut a = ArrayStream::new(0, 4096, 8);
        let mut lines = std::collections::HashSet::new();
        for _ in 0..512 {
            lines.insert(a.next_addr() / 32);
        }
        assert_eq!(lines.len(), 128);
    }

    #[test]
    fn scalar_region_reuses_few_addresses() {
        let mut s = ScalarRegion::new(0x9000, 64);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            distinct.insert(s.next_addr());
        }
        assert_eq!(distinct.len(), 8);
        assert_eq!(s.size(), 64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_array_panics() {
        let _ = ArrayStream::new(0, 0, 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_stride_panics() {
        let _ = ArrayStream::new(0, 64, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_scalar_region_panics() {
        let _ = ScalarRegion::new(0, 0);
    }
}
