//! # dsmt-trace
//!
//! Workload traces for the DSMT simulator (reproduction of *"The Synergy of
//! Multithreading and Access/Execute Decoupling"*, HPCA 1999).
//!
//! The paper drives its simulator with traces of the SPEC FP95 benchmarks
//! obtained by instrumenting DEC Alpha binaries with ATOM. Neither the
//! binaries, the inputs, nor ATOM are available today, so this crate
//! provides the substitution documented in `DESIGN.md`:
//!
//! * [`BenchmarkProfile`] — a parameterised description of a benchmark's
//!   *observable* behaviour: instruction mix, array footprints and strides,
//!   floating-point dependence-chain shape, loss-of-decoupling events,
//!   integer-load scheduling distance and branch predictability;
//! * [`SyntheticTrace`] — a deterministic (seeded) generator that turns a
//!   profile into an infinite instruction stream with those properties;
//! * [`spec_fp95_profiles`] — ten profiles calibrated to the qualitative
//!   characteristics the paper reports for tomcatv, swim, su2cor, hydro2d,
//!   mgrid, applu, turb3d, apsi, fpppp and wave5;
//! * [`MultiProgramTrace`] / [`ThreadWorkload`] — the paper's multithreaded
//!   workload construction ("each thread consists of a sequence of traces
//!   from all SpecFP95 programs, in a different order for each thread");
//! * [`Program`] / [`ProgramTrace`] / [`ProgramWorkload`] — *assembled*
//!   workloads: static programs (built by hand or by the `dsmt-asm`
//!   assembler) interpreted into dynamic instruction streams, so threads
//!   can run genuinely heterogeneous code;
//! * [`TraceWriter`] / [`TraceReader`] — a compact binary trace file format
//!   so real traces can be captured, stored and replayed.
//!
//! # Example
//!
//! ```
//! use dsmt_trace::{spec_fp95_profiles, SyntheticTrace, TraceSource};
//!
//! let profiles = spec_fp95_profiles();
//! let mut trace = SyntheticTrace::new(&profiles[0], 42);
//! let inst = trace.next_instruction().expect("synthetic traces are infinite");
//! assert!(inst.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod file;
mod profile;
mod program;
mod source;
mod stats;
mod synth;
mod workload;

pub use addr::{ArrayStream, ScalarRegion};
pub use file::{TraceFileError, TraceReader, TraceWriter, TRACE_MAGIC};
pub use profile::{spec_fp95_profile, spec_fp95_profiles, BenchmarkProfile};
pub use program::{
    AluOp, Cond, Operand, ProgInst, ProgOp, Program, ProgramTrace, ProgramWorkload, ACCESS_BYTES,
    INST_BYTES,
};
pub use source::{TraceSource, VecTrace};
pub use stats::TraceStats;
pub use synth::SyntheticTrace;
pub use workload::{MultiProgramTrace, ThreadWorkload};
