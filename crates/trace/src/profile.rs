//! Benchmark profiles: parameterised descriptions of workload behaviour.
//!
//! The paper evaluates the SPEC FP95 suite. Its figures depend on a handful
//! of per-benchmark properties, which these profiles encode explicitly:
//!
//! * the **instruction mix** (how much work goes to the AP vs the EP);
//! * the **memory footprint, stride and reuse** (which set the L1 miss
//!   ratios of Figure 1-c and the bus pressure of Figure 5);
//! * the number of **parallel floating-point dependence chains** (which
//!   bounds the EP's in-order ILP and hence single-thread IPC, Figure 3);
//! * the **loss-of-decoupling rate** — how often AP instructions consume
//!   EP-produced values, collapsing the slippage that hides memory latency
//!   (this is what makes fpppp's FP-load latency visible in Figure 1-a);
//! * the **integer-load scheduling distance** — how far the compiler managed
//!   to hoist integer loads above their consumers (Figure 1-b);
//! * **branch predictability**.

use serde::{Deserialize, Serialize};

/// A parameterised benchmark description used by
/// [`crate::SyntheticTrace`] to synthesise an instruction stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (e.g. `"tomcatv"`).
    pub name: String,
    /// Approximate number of instructions per synthesised loop iteration.
    pub iteration_length: usize,
    /// Fraction of instructions that are floating-point loads.
    pub frac_fp_load: f64,
    /// Fraction of instructions that are integer loads.
    pub frac_int_load: f64,
    /// Fraction of instructions that are stores (FP stores).
    pub frac_store: f64,
    /// Fraction of instructions that are floating-point computation.
    pub frac_fp_ops: f64,
    /// Of the FP computation, the fraction that are long-latency divides.
    pub fp_div_frac: f64,
    /// Fraction of instructions that are conditional branches.
    pub frac_branch: f64,
    /// Number of independent (interleaved) FP dependence chains per
    /// iteration. This bounds the EP's in-order ILP: the EP sustains at most
    /// `fp_parallel_chains / fp_latency` FP operations per cycle from one
    /// thread.
    pub fp_parallel_chains: usize,
    /// Probability, per iteration, of a loss-of-decoupling event: an AP
    /// instruction that reads an EP-produced (FP) value, forcing the AP to
    /// synchronise with the EP.
    pub lod_frac: f64,
    /// Number of instructions between an integer load and its first
    /// consumer (static scheduling quality of integer code).
    pub int_load_use_dist: usize,
    /// Fraction of data accesses that stream through the large arrays
    /// (the rest hit a small, reused scalar region).
    pub stream_frac: f64,
    /// Fraction of *integer* loads that stream through the large arrays.
    /// In numerical codes the missing loads are overwhelmingly FP array
    /// element accesses; integer loads (loop/index/descriptor data) mostly
    /// hit. Gather/scatter codes such as su2cor and wave5 stream index
    /// arrays too, which is what exposes their integer-load latency.
    pub int_stream_frac: f64,
    /// Combined footprint of the streamed arrays in bytes.
    pub array_footprint_bytes: u64,
    /// Stride in bytes between consecutive accesses to the same array.
    pub array_stride: u64,
    /// Number of distinct arrays streamed concurrently.
    pub num_arrays: usize,
    /// Size of the heavily reused scalar/stack region in bytes.
    pub scalar_region_bytes: u64,
    /// Probability that the loop-closing branch is taken.
    pub loop_branch_taken_rate: f64,
    /// Unpredictability of non-loop branches in `[0, 1]`
    /// (0 = always taken, 1 = random).
    pub inner_branch_noise: f64,
    /// Base address of the benchmark's (virtual) code region.
    pub code_base: u64,
    /// Base address of the benchmark's (virtual) data region.
    pub data_base: u64,
}

impl BenchmarkProfile {
    /// A neutral, well-behaved profile useful as a starting point for custom
    /// workloads: moderate miss ratio, good decoupling, good scheduling.
    #[must_use]
    pub fn baseline(name: impl Into<String>) -> Self {
        BenchmarkProfile {
            name: name.into(),
            iteration_length: 32,
            frac_fp_load: 0.22,
            frac_int_load: 0.06,
            frac_store: 0.08,
            frac_fp_ops: 0.40,
            fp_div_frac: 0.02,
            frac_branch: 0.06,
            fp_parallel_chains: 5,
            lod_frac: 0.02,
            int_load_use_dist: 10,
            stream_frac: 0.6,
            int_stream_frac: 0.05,
            array_footprint_bytes: 8 * 1024 * 1024,
            array_stride: 8,
            num_arrays: 4,
            scalar_region_bytes: 4 * 1024,
            loop_branch_taken_rate: 0.98,
            inner_branch_noise: 0.1,
            code_base: 0x0010_0000,
            data_base: 0x1000_0000,
        }
    }

    /// The fraction of instructions steered to the Execute Processor.
    #[must_use]
    pub fn ep_fraction(&self) -> f64 {
        self.frac_fp_ops
    }

    /// The fraction of instructions steered to the Address Processor.
    #[must_use]
    pub fn ap_fraction(&self) -> f64 {
        1.0 - self.frac_fp_ops
    }

    /// Checks that the mix fractions are sane.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (fractions
    /// outside `[0,1]`, mix summing above 1, zero iteration length, ...).
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("frac_fp_load", self.frac_fp_load),
            ("frac_int_load", self.frac_int_load),
            ("frac_store", self.frac_store),
            ("frac_fp_ops", self.frac_fp_ops),
            ("fp_div_frac", self.fp_div_frac),
            ("frac_branch", self.frac_branch),
            ("lod_frac", self.lod_frac),
            ("stream_frac", self.stream_frac),
            ("int_stream_frac", self.int_stream_frac),
            ("loop_branch_taken_rate", self.loop_branch_taken_rate),
            ("inner_branch_noise", self.inner_branch_noise),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be within [0, 1], got {v}"));
            }
        }
        let mix = self.frac_fp_load
            + self.frac_int_load
            + self.frac_store
            + self.frac_fp_ops
            + self.frac_branch;
        if mix > 1.0 + 1e-9 {
            return Err(format!("instruction mix fractions sum to {mix} > 1"));
        }
        if self.iteration_length < 8 {
            return Err("iteration_length must be at least 8".to_string());
        }
        if self.fp_parallel_chains == 0 || self.fp_parallel_chains > 8 {
            return Err("fp_parallel_chains must be in 1..=8".to_string());
        }
        if self.num_arrays == 0 {
            return Err("num_arrays must be non-zero".to_string());
        }
        if self.array_footprint_bytes == 0
            || self.array_stride == 0
            || self.scalar_region_bytes == 0
        {
            return Err("footprint, stride and scalar region must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Returns the profile for one SPEC FP95 benchmark by name, if known.
#[must_use]
pub fn spec_fp95_profile(name: &str) -> Option<BenchmarkProfile> {
    spec_fp95_profiles().into_iter().find(|p| p.name == name)
}

/// The ten SPEC FP95 benchmark profiles, in the paper's order:
/// tomcatv, swim, su2cor, hydro2d, mgrid, applu, turb3d, apsi, fpppp, wave5.
///
/// The parameters are calibrated to the qualitative behaviour the paper
/// reports:
///
/// * tomcatv, swim, mgrid, applu, apsi: decouple well, latency well hidden;
/// * fpppp, turb3d: very low miss ratios, so latency barely matters, but
///   poor decoupling / integer-load scheduling (large *perceived* latency);
/// * su2cor, wave5, hydro2d: both significant miss ratios and exposed
///   latency — the programs most degraded by a slow L2.
#[must_use]
pub fn spec_fp95_profiles() -> Vec<BenchmarkProfile> {
    let mb = 1024 * 1024;
    let mut profiles = Vec::new();

    // Helper that derives per-benchmark address bases so that benchmarks do
    // not share data regions even within one thread.
    let make = |idx: u64, name: &str| {
        let mut p = BenchmarkProfile::baseline(name);
        p.code_base = 0x0010_0000 + idx * 0x0001_0000;
        p.data_base = 0x1000_0000 + idx * 0x0400_0000;
        p
    };

    // tomcatv: vectorizable mesh generation; streams large arrays with unit
    // stride, decouples very well, integer address code well scheduled.
    let mut p = make(0, "tomcatv");
    p.stream_frac = 0.45;
    p.array_footprint_bytes = 14 * mb;
    p.array_stride = 8;
    p.lod_frac = 0.01;
    p.int_load_use_dist = 40;
    p.int_stream_frac = 0.02;
    p.fp_parallel_chains = 5;
    profiles.push(p);

    // swim: shallow-water model, very similar memory behaviour to tomcatv.
    let mut p = make(1, "swim");
    p.stream_frac = 0.42;
    p.array_footprint_bytes = 14 * mb;
    p.array_stride = 8;
    p.lod_frac = 0.005;
    p.int_load_use_dist = 40;
    p.int_stream_frac = 0.02;
    p.fp_parallel_chains = 5;
    profiles.push(p);

    // su2cor: quantum physics; significant miss ratio and poorly scheduled
    // integer loads (indirect addressing), so integer-load latency shows.
    let mut p = make(2, "su2cor");
    p.stream_frac = 0.30;
    p.int_stream_frac = 0.30;
    p.array_footprint_bytes = 8 * mb;
    p.array_stride = 8;
    p.lod_frac = 0.05;
    p.int_load_use_dist = 2;
    p.frac_int_load = 0.09;
    p.fp_parallel_chains = 4;
    profiles.push(p);

    // hydro2d: Navier-Stokes; high miss ratio, moderate exposure.
    let mut p = make(3, "hydro2d");
    p.stream_frac = 0.40;
    p.int_stream_frac = 0.08;
    p.array_footprint_bytes = 9 * mb;
    p.array_stride = 8;
    p.lod_frac = 0.03;
    p.int_load_use_dist = 6;
    p.fp_parallel_chains = 4;
    profiles.push(p);

    // mgrid: multigrid solver; unit-stride sweeps, decouples well.
    let mut p = make(4, "mgrid");
    p.stream_frac = 0.20;
    p.array_footprint_bytes = 8 * mb;
    p.array_stride = 8;
    p.lod_frac = 0.01;
    p.int_load_use_dist = 36;
    p.int_stream_frac = 0.02;
    p.fp_parallel_chains = 5;
    profiles.push(p);

    // applu: parabolic/elliptic PDE solver; similar to mgrid.
    let mut p = make(5, "applu");
    p.stream_frac = 0.20;
    p.array_footprint_bytes = 8 * mb;
    p.array_stride = 8;
    p.lod_frac = 0.02;
    p.int_load_use_dist = 36;
    p.int_stream_frac = 0.02;
    p.fp_parallel_chains = 4;
    profiles.push(p);

    // turb3d: turbulence simulation; small working set (very low miss
    // ratio) but poorly scheduled integer loads.
    let mut p = make(6, "turb3d");
    p.stream_frac = 0.15;
    p.int_stream_frac = 0.30;
    p.array_footprint_bytes = 48 * 1024;
    p.array_stride = 8;
    p.lod_frac = 0.05;
    p.int_load_use_dist = 2;
    p.frac_int_load = 0.08;
    p.fp_parallel_chains = 5;
    profiles.push(p);

    // apsi: mesoscale weather; moderate footprint, decouples well.
    let mut p = make(7, "apsi");
    p.stream_frac = 0.15;
    p.array_footprint_bytes = 2 * mb;
    p.array_stride = 8;
    p.lod_frac = 0.02;
    p.int_load_use_dist = 36;
    p.int_stream_frac = 0.02;
    p.fp_parallel_chains = 4;
    profiles.push(p);

    // fpppp: quantum chemistry; tiny working set (negligible miss ratio),
    // huge basic blocks with plenty of FP ILP, but frequent FP-to-integer
    // transfers: the textbook example of a program that decouples badly.
    let mut p = make(8, "fpppp");
    p.stream_frac = 0.10;
    p.int_stream_frac = 0.20;
    p.array_footprint_bytes = 32 * 1024;
    p.array_stride = 8;
    p.lod_frac = 0.70;
    p.int_load_use_dist = 1;
    p.frac_branch = 0.02;
    p.frac_fp_ops = 0.48;
    p.frac_fp_load = 0.20;
    p.fp_parallel_chains = 6;
    profiles.push(p);

    // wave5: plasma simulation; significant miss ratio, gather/scatter style
    // indexing gives poorly scheduled integer loads.
    let mut p = make(9, "wave5");
    p.stream_frac = 0.30;
    p.int_stream_frac = 0.30;
    p.array_footprint_bytes = 8 * mb;
    p.array_stride = 8;
    p.lod_frac = 0.04;
    p.int_load_use_dist = 2;
    p.frac_int_load = 0.09;
    p.fp_parallel_chains = 4;
    profiles.push(p);

    profiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_profiles_in_paper_order() {
        let ps = spec_fp95_profiles();
        let names: Vec<_> = ps.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi",
                "fpppp", "wave5"
            ]
        );
    }

    #[test]
    fn all_profiles_validate() {
        for p in spec_fp95_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
        assert!(BenchmarkProfile::baseline("custom").validate().is_ok());
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_fp95_profile("fpppp").is_some());
        assert!(spec_fp95_profile("gcc").is_none());
    }

    #[test]
    fn fpppp_decouples_badly_and_misses_rarely() {
        let fpppp = spec_fp95_profile("fpppp").unwrap();
        let tomcatv = spec_fp95_profile("tomcatv").unwrap();
        assert!(fpppp.lod_frac > 10.0 * tomcatv.lod_frac);
        assert!(fpppp.array_footprint_bytes < 64 * 1024);
        assert!(tomcatv.array_footprint_bytes > 1024 * 1024);
    }

    #[test]
    fn poor_integer_scheduling_benchmarks() {
        for name in ["su2cor", "turb3d", "wave5", "fpppp"] {
            let p = spec_fp95_profile(name).unwrap();
            assert!(p.int_load_use_dist <= 2, "{name} should expose int loads");
        }
        for name in ["tomcatv", "swim", "mgrid", "applu", "apsi"] {
            let p = spec_fp95_profile(name).unwrap();
            assert!(p.int_load_use_dist >= 10, "{name} should hide int loads");
        }
    }

    #[test]
    fn distinct_address_spaces_per_benchmark() {
        let ps = spec_fp95_profiles();
        for (i, a) in ps.iter().enumerate() {
            for b in ps.iter().skip(i + 1) {
                assert_ne!(a.code_base, b.code_base);
                assert_ne!(a.data_base, b.data_base);
            }
        }
    }

    #[test]
    fn ap_ep_fractions_are_complementary() {
        let p = BenchmarkProfile::baseline("x");
        assert!((p.ap_fraction() + p.ep_fraction() - 1.0).abs() < 1e-12);
        assert!(p.ap_fraction() > 0.5, "AP handles the majority of the mix");
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut p = BenchmarkProfile::baseline("bad");
        p.frac_fp_ops = 1.5;
        assert!(p.validate().is_err());

        let mut p = BenchmarkProfile::baseline("bad");
        p.frac_fp_load = 0.5;
        p.frac_fp_ops = 0.6;
        assert!(p.validate().is_err());

        let mut p = BenchmarkProfile::baseline("bad");
        p.iteration_length = 4;
        assert!(p.validate().is_err());

        let mut p = BenchmarkProfile::baseline("bad");
        p.fp_parallel_chains = 0;
        assert!(p.validate().is_err());

        let mut p = BenchmarkProfile::baseline("bad");
        p.array_stride = 0;
        assert!(p.validate().is_err());

        let mut p = BenchmarkProfile::baseline("bad");
        p.num_arrays = 0;
        assert!(p.validate().is_err());
    }
}
