//! Summary statistics over a trace prefix (instruction mix, memory
//! behaviour), used for sanity-checking generated workloads.

use std::collections::HashMap;

use dsmt_isa::{OpClass, Unit};
use serde::{Deserialize, Serialize};

use crate::TraceSource;

/// Instruction-mix and address-stream statistics over a trace prefix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of instructions observed.
    pub instructions: u64,
    /// Count per operation class (keyed by the mnemonic).
    pub per_class: HashMap<String, u64>,
    /// Instructions steered to the AP.
    pub ap_instructions: u64,
    /// Instructions steered to the EP.
    pub ep_instructions: u64,
    /// Number of distinct 32-byte lines touched by memory instructions.
    pub distinct_lines: u64,
    /// Number of taken branches.
    pub taken_branches: u64,
    /// Number of control instructions.
    pub branches: u64,
}

impl TraceStats {
    /// Collects statistics over the next `n` instructions of `source`.
    /// Stops early if the trace ends.
    pub fn collect<S: TraceSource + ?Sized>(source: &mut S, n: u64) -> Self {
        let mut stats = TraceStats::default();
        let mut lines = std::collections::HashSet::new();
        for _ in 0..n {
            let Some(inst) = source.next_instruction() else {
                break;
            };
            stats.instructions += 1;
            *stats
                .per_class
                .entry(inst.op.mnemonic().to_string())
                .or_insert(0) += 1;
            match inst.unit() {
                Unit::Ap => stats.ap_instructions += 1,
                Unit::Ep => stats.ep_instructions += 1,
            }
            if let Some(m) = inst.mem {
                lines.insert(m.addr / 32);
            }
            if inst.op.is_control() {
                stats.branches += 1;
                if inst.branch.map(|b| b.taken).unwrap_or(false) {
                    stats.taken_branches += 1;
                }
            }
        }
        stats.distinct_lines = lines.len() as u64;
        stats
    }

    /// Fraction of instructions in the given class.
    #[must_use]
    pub fn fraction(&self, op: OpClass) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        let count = self.per_class.get(op.mnemonic()).copied().unwrap_or(0);
        count as f64 / self.instructions as f64
    }

    /// Fraction of instructions steered to the EP.
    #[must_use]
    pub fn ep_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.ep_instructions as f64 / self.instructions as f64
        }
    }

    /// Fraction of loads (integer + FP).
    #[must_use]
    pub fn load_fraction(&self) -> f64 {
        self.fraction(OpClass::LoadInt) + self.fraction(OpClass::LoadFp)
    }

    /// Fraction of taken branches among control instructions.
    #[must_use]
    pub fn taken_branch_fraction(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.taken_branches as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec_fp95_profile, BenchmarkProfile, SyntheticTrace, VecTrace};
    use dsmt_isa::{ArchReg, Instruction};

    #[test]
    fn collect_counts_classes() {
        let insts = vec![
            Instruction::new(0, OpClass::IntAlu).with_dest(ArchReg::int(1)),
            Instruction::new(4, OpClass::LoadFp)
                .with_dest(ArchReg::fp(1))
                .with_mem(0x100, 8),
            Instruction::new(8, OpClass::FpAdd)
                .with_dest(ArchReg::fp(2))
                .with_src1(ArchReg::fp(1)),
        ];
        let mut t = VecTrace::new("k", insts);
        let s = TraceStats::collect(&mut t, 100);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.per_class.get("ialu"), Some(&1));
        assert_eq!(s.per_class.get("ldt"), Some(&1));
        assert_eq!(s.ap_instructions, 2);
        assert_eq!(s.ep_instructions, 1);
        assert_eq!(s.distinct_lines, 1);
        assert!((s.fraction(OpClass::FpAdd) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.load_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats() {
        let mut t = VecTrace::new("e", Vec::new());
        let s = TraceStats::collect(&mut t, 10);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.fraction(OpClass::IntAlu), 0.0);
        assert_eq!(s.ep_fraction(), 0.0);
        assert_eq!(s.taken_branch_fraction(), 0.0);
    }

    #[test]
    fn synthetic_mix_matches_profile_via_stats() {
        let p = BenchmarkProfile::baseline("t");
        let mut t = SyntheticTrace::new(&p, 5);
        let s = TraceStats::collect(&mut t, 30_000);
        assert!((s.fraction(OpClass::LoadFp) - p.frac_fp_load).abs() < 0.05);
        assert!((s.ep_fraction() - p.frac_fp_ops).abs() < 0.07);
        assert!(s.taken_branch_fraction() > 0.6);
    }

    #[test]
    fn footprint_differs_between_benchmarks() {
        let small = spec_fp95_profile("fpppp").unwrap();
        let large = spec_fp95_profile("swim").unwrap();
        let s_small = TraceStats::collect(&mut SyntheticTrace::new(&small, 1), 30_000);
        let s_large = TraceStats::collect(&mut SyntheticTrace::new(&large, 1), 30_000);
        assert!(s_large.distinct_lines > 2 * s_small.distinct_lines);
    }
}
