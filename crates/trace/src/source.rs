//! The trace source abstraction consumed by the simulator's fetch stage.

use dsmt_isa::Instruction;

/// A stream of dynamic instructions.
///
/// Synthetic traces are infinite; file-backed traces end (return `None`).
/// The simulator's fetch stage pulls instructions one at a time, in program
/// order per thread.
pub trait TraceSource {
    /// The next dynamic instruction, or `None` when the trace is exhausted.
    fn next_instruction(&mut self) -> Option<Instruction>;

    /// A human-readable name (benchmark or file name) for reports.
    fn name(&self) -> &str {
        "trace"
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_instruction(&mut self) -> Option<Instruction> {
        (**self).next_instruction()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A trace backed by an in-memory vector (useful for tests and tiny
/// hand-written kernels).
#[derive(Debug, Clone)]
pub struct VecTrace {
    name: String,
    instructions: Vec<Instruction>,
    pos: usize,
}

impl VecTrace {
    /// Creates a trace that replays `instructions` once.
    #[must_use]
    pub fn new(name: impl Into<String>, instructions: Vec<Instruction>) -> Self {
        VecTrace {
            name: name.into(),
            instructions,
            pos: 0,
        }
    }

    /// Number of instructions remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.instructions.len() - self.pos
    }

    /// Total number of instructions in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the trace holds no instructions at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

impl TraceSource for VecTrace {
    fn next_instruction(&mut self) -> Option<Instruction> {
        let inst = self.instructions.get(self.pos).copied();
        if inst.is_some() {
            self.pos += 1;
        }
        inst
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmt_isa::{ArchReg, OpClass};

    fn insts(n: usize) -> Vec<Instruction> {
        (0..n)
            .map(|i| Instruction::new(i as u64 * 4, OpClass::IntAlu).with_dest(ArchReg::int(1)))
            .collect()
    }

    #[test]
    fn vec_trace_replays_in_order_then_ends() {
        let mut t = VecTrace::new("kernel", insts(3));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.next_instruction().unwrap().pc, 0);
        assert_eq!(t.next_instruction().unwrap().pc, 4);
        assert_eq!(t.remaining(), 1);
        assert_eq!(t.next_instruction().unwrap().pc, 8);
        assert!(t.next_instruction().is_none());
        assert!(t.next_instruction().is_none());
        assert_eq!(t.name(), "kernel");
    }

    #[test]
    fn boxed_trace_source_works() {
        let mut boxed: Box<dyn TraceSource> = Box::new(VecTrace::new("k", insts(1)));
        assert!(boxed.next_instruction().is_some());
        assert!(boxed.next_instruction().is_none());
        assert_eq!(boxed.name(), "k");
    }

    #[test]
    fn empty_vec_trace() {
        let mut t = VecTrace::new("empty", Vec::new());
        assert!(t.is_empty());
        assert!(t.next_instruction().is_none());
    }
}
