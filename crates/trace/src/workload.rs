//! Multithreaded workload construction.
//!
//! The paper (Section 3): "The simulator is fed with independent threads.
//! Each thread consists of a sequence of traces from all SpecFP95 programs,
//! in a different order for each thread." [`ThreadWorkload`] reproduces that
//! construction; [`MultiProgramTrace`] is the underlying round-robin-over-
//! programs trace source.

use dsmt_isa::Instruction;

use crate::{BenchmarkProfile, SyntheticTrace, TraceSource};

/// A trace that cycles through several programs, running each for a fixed
/// number of instructions before switching to the next (and wrapping around
/// forever).
#[derive(Debug)]
pub struct MultiProgramTrace {
    name: String,
    sources: Vec<SyntheticTrace>,
    insts_per_program: u64,
    current: usize,
    emitted_in_current: u64,
    total_emitted: u64,
}

impl MultiProgramTrace {
    /// Creates a multi-program trace over `sources`, switching program every
    /// `insts_per_program` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or `insts_per_program` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        sources: Vec<SyntheticTrace>,
        insts_per_program: u64,
    ) -> Self {
        assert!(!sources.is_empty(), "need at least one program");
        assert!(insts_per_program > 0, "insts_per_program must be non-zero");
        MultiProgramTrace {
            name: name.into(),
            sources,
            insts_per_program,
            current: 0,
            emitted_in_current: 0,
            total_emitted: 0,
        }
    }

    /// The name of the program currently being replayed.
    #[must_use]
    pub fn current_program(&self) -> &str {
        self.sources[self.current].name()
    }

    /// Number of programs in the rotation.
    #[must_use]
    pub fn num_programs(&self) -> usize {
        self.sources.len()
    }

    /// Total instructions emitted so far.
    #[must_use]
    pub fn total_emitted(&self) -> u64 {
        self.total_emitted
    }
}

impl TraceSource for MultiProgramTrace {
    fn next_instruction(&mut self) -> Option<Instruction> {
        if self.emitted_in_current >= self.insts_per_program {
            self.current = (self.current + 1) % self.sources.len();
            self.emitted_in_current = 0;
        }
        let inst = self.sources[self.current].next_instruction();
        if inst.is_some() {
            self.emitted_in_current += 1;
            self.total_emitted += 1;
        }
        inst
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the per-thread workloads used in the paper's multithreaded
/// experiments.
#[derive(Debug, Clone)]
pub struct ThreadWorkload {
    profiles: Vec<BenchmarkProfile>,
    insts_per_program: u64,
    seed: u64,
    /// Address-space separation between threads, in bytes.
    thread_addr_stride: u64,
}

impl ThreadWorkload {
    /// Creates a workload builder over `profiles`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    #[must_use]
    pub fn new(profiles: Vec<BenchmarkProfile>, insts_per_program: u64, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "need at least one profile");
        ThreadWorkload {
            profiles,
            insts_per_program,
            seed,
            // Threads get disjoint address regions. The stride is deliberately
            // *not* a multiple of typical L1 capacities so that each thread's
            // hot (scalar) region maps to different cache sets: threads then
            // compete for capacity, not for one pathological set.
            thread_addr_stride: 0x4000_0000 + 0x1_a000,
        }
    }

    /// The paper's workload: all ten SPEC FP95 profiles, 200k instructions
    /// per program segment.
    #[must_use]
    pub fn spec_fp95(seed: u64) -> Self {
        ThreadWorkload::new(crate::spec_fp95_profiles(), 200_000, seed)
    }

    /// Overrides the per-program segment length.
    #[must_use]
    pub fn with_insts_per_program(mut self, n: u64) -> Self {
        assert!(n > 0, "insts_per_program must be non-zero");
        self.insts_per_program = n;
        self
    }

    /// Overrides the address-space separation between threads.
    #[must_use]
    pub fn with_thread_addr_stride(mut self, stride: u64) -> Self {
        self.thread_addr_stride = stride;
        self
    }

    /// Number of programs per thread.
    #[must_use]
    pub fn num_programs(&self) -> usize {
        self.profiles.len()
    }

    /// Builds the trace for hardware thread `thread_id`: the program
    /// sequence is rotated by `thread_id` ("a different order for each
    /// thread") and the data addresses are offset so each thread has its own
    /// working set.
    #[must_use]
    pub fn thread_trace(&self, thread_id: usize) -> MultiProgramTrace {
        let n = self.profiles.len();
        let rotation = thread_id % n;
        let addr_offset = thread_id as u64 * self.thread_addr_stride;
        let sources: Vec<SyntheticTrace> = (0..n)
            .map(|i| {
                let p = &self.profiles[(i + rotation) % n];
                SyntheticTrace::with_offset(
                    p,
                    self.seed
                        .wrapping_add(thread_id as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    addr_offset,
                )
            })
            .collect();
        MultiProgramTrace::new(
            format!("thread{thread_id}"),
            sources,
            self.insts_per_program,
        )
    }

    /// Builds traces for `num_threads` hardware threads.
    #[must_use]
    pub fn build(&self, num_threads: usize) -> Vec<MultiProgramTrace> {
        (0..num_threads).map(|t| self.thread_trace(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_fp95_profiles;

    #[test]
    fn multi_program_switches_programs() {
        let profiles = spec_fp95_profiles();
        let sources = profiles
            .iter()
            .take(3)
            .map(|p| SyntheticTrace::new(p, 1))
            .collect();
        let mut mp = MultiProgramTrace::new("w", sources, 100);
        assert_eq!(mp.num_programs(), 3);
        assert_eq!(mp.current_program(), "tomcatv");
        for _ in 0..100 {
            mp.next_instruction().unwrap();
        }
        assert_eq!(mp.current_program(), "tomcatv");
        mp.next_instruction().unwrap();
        assert_eq!(mp.current_program(), "swim");
        for _ in 0..100 {
            mp.next_instruction().unwrap();
        }
        assert_eq!(mp.current_program(), "su2cor");
        // Wraps around forever.
        for _ in 0..100 {
            mp.next_instruction().unwrap();
        }
        assert_eq!(mp.current_program(), "tomcatv");
        assert_eq!(mp.total_emitted(), 301);
    }

    #[test]
    fn thread_workload_rotates_program_order() {
        let w = ThreadWorkload::spec_fp95(42).with_insts_per_program(10);
        let t0 = w.thread_trace(0);
        let t1 = w.thread_trace(1);
        assert_eq!(t0.current_program(), "tomcatv");
        assert_eq!(t1.current_program(), "swim");
        let t9 = w.thread_trace(9);
        assert_eq!(t9.current_program(), "wave5");
        // Rotation wraps beyond the number of programs.
        let t10 = w.thread_trace(10);
        assert_eq!(t10.current_program(), "tomcatv");
    }

    #[test]
    fn threads_have_disjoint_data_regions() {
        let w = ThreadWorkload::spec_fp95(7).with_insts_per_program(500);
        let mut t0 = w.thread_trace(0);
        let mut t1 = w.thread_trace(1);
        let addrs = |t: &mut MultiProgramTrace| {
            (0..2000)
                .filter_map(|_| t.next_instruction().unwrap().mem.map(|m| m.addr))
                .collect::<Vec<_>>()
        };
        let a0 = addrs(&mut t0);
        let a1 = addrs(&mut t1);
        let max0 = a0.iter().max().unwrap();
        let min1 = a1.iter().min().unwrap();
        assert!(min1 > max0, "thread 1 region must be above thread 0");
    }

    #[test]
    fn build_creates_requested_thread_count() {
        let w = ThreadWorkload::spec_fp95(1).with_insts_per_program(10);
        let threads = w.build(6);
        assert_eq!(threads.len(), 6);
        assert_eq!(w.num_programs(), 10);
    }

    #[test]
    fn workload_traces_are_infinite() {
        let w = ThreadWorkload::spec_fp95(1).with_insts_per_program(50);
        let mut t = w.thread_trace(3);
        for _ in 0..5000 {
            assert!(t.next_instruction().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn empty_sources_panic() {
        let _ = MultiProgramTrace::new("x", Vec::new(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_profiles_panic() {
        let _ = ThreadWorkload::new(Vec::new(), 10, 0);
    }
}
