//! The synthetic trace generator.
//!
//! Turns a [`BenchmarkProfile`] into an infinite, deterministic instruction
//! stream whose observable properties (instruction mix, register dependence
//! structure, address stream, branch behaviour) match the profile. See
//! `DESIGN.md` for why this substitutes for the paper's ATOM-derived SPEC
//! FP95 traces.
//!
//! # Structure of the generated code
//!
//! The generator emits *loop iterations*. Each iteration contains, in order:
//!
//! 1. address-update integer ALU ops (independent of one another);
//! 2. integer loads, whose first consumer is placed `int_load_use_dist`
//!    instructions later (modelling the compiler's static schedule);
//! 3. floating-point loads from the streamed arrays / scalar region;
//! 4. floating-point computation arranged as `fp_parallel_chains`
//!    interleaved accumulator chains that consume the loaded values
//!    (bounding the EP's in-order ILP);
//! 5. floating-point stores of the accumulators;
//! 6. with probability `lod_frac`, a loss-of-decoupling event: an integer
//!    (AP) instruction that reads an FP accumulator, forcing the AP to wait
//!    for the EP;
//! 7. filler integer ALU ops, optionally-noisy inner branches, and a highly
//!    predictable loop-closing branch.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsmt_isa::{ArchReg, BranchInfo, Instruction, OpClass};

use crate::{ArrayStream, BenchmarkProfile, ScalarRegion, TraceSource};

/// Register allocation conventions used by the generator (documented so the
/// core crate's tests can reason about the streams).
mod regs {
    /// Index/base registers updated every iteration: `r1..=r4`.
    pub const INDEX_BASE: u8 = 1;
    pub const INDEX_COUNT: u8 = 4;
    /// Integer-load destinations: `r8..=r13`.
    pub const INT_LOAD_BASE: u8 = 8;
    pub const INT_LOAD_COUNT: u8 = 6;
    /// Stride constant, never redefined: `r16`.
    pub const STRIDE_CONST: u8 = 16;
    /// Generic integer temporaries: `r17..=r20`.
    pub const INT_TEMP_BASE: u8 = 17;
    pub const INT_TEMP_COUNT: u8 = 4;
    /// Loss-of-decoupling destination: `r21`.
    pub const LOD_DEST: u8 = 21;
    /// FP load destinations: `f1..=f14`.
    pub const FP_LOAD_BASE: u8 = 1;
    pub const FP_LOAD_COUNT: u8 = 14;
    /// FP accumulator chains: `f16..=f23`.
    pub const FP_ACC_BASE: u8 = 16;
}

/// A deterministic, infinite instruction stream synthesised from a
/// [`BenchmarkProfile`].
#[derive(Debug)]
pub struct SyntheticTrace {
    profile: BenchmarkProfile,
    rng: StdRng,
    arrays: Vec<ArrayStream>,
    out_array: ArrayStream,
    scalars: ScalarRegion,
    pending: VecDeque<Instruction>,
    /// Integer-load consumers whose scheduling distance extends past the end
    /// of the iteration that issued the load; they are inserted `usize`
    /// instructions into the next iteration's body.
    carryover_consumers: Vec<(usize, Instruction)>,
    emitted: u64,
    iterations: u64,
}

impl SyntheticTrace {
    /// Creates a generator for `profile` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not validate.
    #[must_use]
    pub fn new(profile: &BenchmarkProfile, seed: u64) -> Self {
        Self::with_offset(profile, seed, 0)
    }

    /// Creates a generator whose data addresses are shifted by
    /// `addr_offset` bytes. Different hardware threads use different
    /// offsets so that their working sets are disjoint (and compete for the
    /// shared L1, as in the paper's Section 3.1).
    ///
    /// # Panics
    ///
    /// Panics if the profile does not validate.
    #[must_use]
    pub fn with_offset(profile: &BenchmarkProfile, seed: u64, addr_offset: u64) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
        let data_base = profile.data_base + addr_offset;
        let per_array = (profile.array_footprint_bytes / (profile.num_arrays as u64 + 1)).max(64);
        let arrays = (0..profile.num_arrays)
            .map(|i| {
                ArrayStream::new(
                    data_base + i as u64 * per_array,
                    per_array,
                    profile.array_stride,
                )
            })
            .collect();
        let out_array = ArrayStream::new(
            data_base + profile.num_arrays as u64 * per_array,
            per_array,
            profile.array_stride,
        );
        let scalars = ScalarRegion::new(
            data_base + (profile.num_arrays as u64 + 1) * per_array + 4096,
            profile.scalar_region_bytes,
        );
        SyntheticTrace {
            profile: profile.clone(),
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_0000),
            arrays,
            out_array,
            scalars,
            pending: VecDeque::new(),
            carryover_consumers: Vec::new(),
            emitted: 0,
            iterations: 0,
        }
    }

    /// The profile driving this generator.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of loop iterations synthesised so far.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    fn next_data_addr(&mut self, array_idx: usize) -> u64 {
        if self.rng.gen_bool(self.profile.stream_frac) {
            let n = self.arrays.len();
            self.arrays[array_idx % n].next_addr()
        } else {
            self.scalars.next_addr()
        }
    }

    fn next_int_data_addr(&mut self, array_idx: usize) -> u64 {
        if self.rng.gen_bool(self.profile.int_stream_frac) {
            let n = self.arrays.len();
            self.arrays[array_idx % n].next_addr()
        } else {
            self.scalars.next_addr()
        }
    }

    fn next_store_addr(&mut self) -> u64 {
        if self.rng.gen_bool(self.profile.stream_frac) {
            self.out_array.next_addr()
        } else {
            self.scalars.next_addr()
        }
    }

    fn build_iteration(&mut self) {
        let p = self.profile.clone();
        let len = p.iteration_length;
        let n_fp_load = ((p.frac_fp_load * len as f64).round() as usize).max(1);
        let n_int_load = (p.frac_int_load * len as f64).round() as usize;
        let n_store = (p.frac_store * len as f64).round() as usize;
        let n_fp_ops = ((p.frac_fp_ops * len as f64).round() as usize).max(1);
        let n_branch = ((p.frac_branch * len as f64).round() as usize).max(1);
        let reserved = n_fp_load + n_int_load * 2 + n_store + n_fp_ops + n_branch;
        let n_int_alu = len.saturating_sub(reserved).max(2);
        let n_addr_updates = n_int_alu.min(regs::INDEX_COUNT as usize);
        let n_filler = n_int_alu - n_addr_updates;

        let mut body: Vec<Instruction> = Vec::with_capacity(len + 8);

        // 1. Address updates: independent increments of the index registers.
        for k in 0..n_addr_updates {
            let r = ArchReg::int(regs::INDEX_BASE + (k as u8 % regs::INDEX_COUNT));
            body.push(
                Instruction::new(0, OpClass::IntAlu)
                    .with_dest(r)
                    .with_src1(r)
                    .with_src2(ArchReg::int(regs::STRIDE_CONST)),
            );
        }

        // 2. Integer loads; remember where each lands so its consumer can be
        //    inserted `int_load_use_dist` instructions later.
        let mut int_load_positions = Vec::new();
        for j in 0..n_int_load {
            let dest = ArchReg::int(regs::INT_LOAD_BASE + (j as u8 % regs::INT_LOAD_COUNT));
            let addr_reg = ArchReg::int(regs::INDEX_BASE + (j as u8 % regs::INDEX_COUNT));
            let addr = self.next_int_data_addr(j);
            int_load_positions.push((body.len(), dest));
            body.push(
                Instruction::new(0, OpClass::LoadInt)
                    .with_dest(dest)
                    .with_src1(addr_reg)
                    .with_mem(addr, 8),
            );
        }

        // 3. FP loads.
        let mut loaded_fp = Vec::new();
        for j in 0..n_fp_load {
            let dest = ArchReg::fp(regs::FP_LOAD_BASE + (j as u8 % regs::FP_LOAD_COUNT));
            let addr_reg = ArchReg::int(regs::INDEX_BASE + (j as u8 % regs::INDEX_COUNT));
            let addr = self.next_data_addr(j);
            loaded_fp.push(dest);
            body.push(
                Instruction::new(0, OpClass::LoadFp)
                    .with_dest(dest)
                    .with_src1(addr_reg)
                    .with_mem(addr, 8),
            );
        }

        // 4. FP computation: `fp_parallel_chains` interleaved accumulator
        //    chains, each serially dependent on itself, consuming the loads.
        let chains = p.fp_parallel_chains;
        for s in 0..n_fp_ops {
            let chain = s % chains;
            let acc = ArchReg::fp(regs::FP_ACC_BASE + chain as u8);
            let operand = loaded_fp[s % loaded_fp.len()];
            let op = if self.rng.gen_bool(p.fp_div_frac) {
                OpClass::FpDiv
            } else if s % 2 == 0 {
                OpClass::FpAdd
            } else {
                OpClass::FpMul
            };
            body.push(
                Instruction::new(0, op)
                    .with_dest(acc)
                    .with_src1(acc)
                    .with_src2(operand),
            );
        }

        // 5. Stores of the accumulators.
        for k in 0..n_store {
            let acc = ArchReg::fp(regs::FP_ACC_BASE + (k % chains) as u8);
            let addr_reg = ArchReg::int(regs::INDEX_BASE + (k as u8 % regs::INDEX_COUNT));
            let addr = self.next_store_addr();
            body.push(
                Instruction::new(0, OpClass::StoreFp)
                    .with_src1(acc)
                    .with_src2(addr_reg)
                    .with_mem(addr, 8),
            );
        }

        // 6. Loss-of-decoupling event: an AP instruction reading an EP value
        //    (e.g. an FP-to-integer transfer feeding address computation).
        if self.rng.gen_bool(p.lod_frac) {
            body.push(
                Instruction::new(0, OpClass::IntAlu)
                    .with_dest(ArchReg::int(regs::LOD_DEST))
                    .with_src1(ArchReg::fp(regs::FP_ACC_BASE)),
            );
        }

        // 7. Filler integer work.
        for k in 0..n_filler {
            let dest = ArchReg::int(regs::INT_TEMP_BASE + (k as u8 % regs::INT_TEMP_COUNT));
            body.push(
                Instruction::new(0, OpClass::IntAlu)
                    .with_dest(dest)
                    .with_src1(ArchReg::int(regs::INDEX_BASE))
                    .with_src2(ArchReg::int(regs::STRIDE_CONST)),
            );
        }

        // Insert the integer-load consumers that a previous iteration
        // deferred into this one (well-scheduled, software-pipelined code
        // hoists loads one or more iterations ahead of their uses).
        let deferred = std::mem::take(&mut self.carryover_consumers);
        for (offset, consumer) in deferred.into_iter().rev() {
            body.insert(offset.min(body.len()), consumer);
        }

        // Insert integer-load consumers `int_load_use_dist` instructions
        // after their load; consumers that fall past the end of this
        // iteration are deferred into the next one. Iterate in reverse so
        // earlier insertions do not shift later ones.
        for &(pos, dest) in int_load_positions.iter().rev() {
            let consumer = Instruction::new(0, OpClass::IntAlu)
                .with_dest(ArchReg::int(regs::INT_TEMP_BASE))
                .with_src1(dest);
            let at = pos + 1 + p.int_load_use_dist;
            if at <= body.len() {
                body.insert(at, consumer);
            } else {
                self.carryover_consumers.push((at - body.len(), consumer));
            }
        }

        // 8. Inner branches (possibly unpredictable) and the loop branch.
        let inner_branches = n_branch.saturating_sub(1);
        for j in 0..inner_branches {
            let taken = if self.rng.gen_bool(p.inner_branch_noise) {
                self.rng.gen_bool(0.5)
            } else {
                true
            };
            let pc = p.code_base + 0x800 + j as u64 * 4;
            body.push(
                Instruction::new(pc, OpClass::CondBranch)
                    .with_src1(ArchReg::int(regs::INT_TEMP_BASE))
                    .with_branch(BranchInfo::new(taken, p.code_base)),
            );
        }
        let loop_taken = self.rng.gen_bool(p.loop_branch_taken_rate);
        body.push(
            Instruction::new(p.code_base + 0xffc, OpClass::CondBranch)
                .with_src1(ArchReg::int(regs::INDEX_BASE))
                .with_branch(BranchInfo::new(loop_taken, p.code_base)),
        );

        // Assign sequential PCs to every non-branch instruction.
        for (idx, inst) in body.iter_mut().enumerate() {
            if !inst.op.is_control() {
                inst.pc = p.code_base + idx as u64 * 4;
            }
        }

        debug_assert!(body.iter().all(|i| i.validate().is_ok()));
        self.iterations += 1;
        self.pending.extend(body);
    }
}

impl TraceSource for SyntheticTrace {
    fn next_instruction(&mut self) -> Option<Instruction> {
        if self.pending.is_empty() {
            self.build_iteration();
        }
        let inst = self.pending.pop_front();
        if inst.is_some() {
            self.emitted += 1;
        }
        inst
    }

    fn name(&self) -> &str {
        &self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_fp95_profiles;
    use dsmt_isa::Unit;

    fn take(trace: &mut SyntheticTrace, n: usize) -> Vec<Instruction> {
        (0..n).map(|_| trace.next_instruction().unwrap()).collect()
    }

    #[test]
    fn stream_is_infinite_and_valid() {
        let p = BenchmarkProfile::baseline("t");
        let mut t = SyntheticTrace::new(&p, 1);
        for inst in take(&mut t, 5000) {
            inst.validate()
                .unwrap_or_else(|e| panic!("invalid instruction {inst}: {e}"));
        }
        assert_eq!(t.emitted(), 5000);
        assert!(t.iterations() > 100);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn determinism_per_seed() {
        let p = BenchmarkProfile::baseline("t");
        let a = take(&mut SyntheticTrace::new(&p, 7), 1000);
        let b = take(&mut SyntheticTrace::new(&p, 7), 1000);
        let c = take(&mut SyntheticTrace::new(&p, 8), 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let p = BenchmarkProfile::baseline("t");
        let mut t = SyntheticTrace::new(&p, 3);
        let insts = take(&mut t, 20_000);
        let n = insts.len() as f64;
        let frac =
            |pred: fn(&Instruction) -> bool| insts.iter().filter(|i| pred(i)).count() as f64 / n;
        let fp_loads = frac(|i| i.op == OpClass::LoadFp);
        let stores = frac(|i| i.op.is_store());
        let fp_ops = frac(|i| i.op.is_fp_compute());
        let branches = frac(|i| i.op.is_control());
        assert!(
            (fp_loads - p.frac_fp_load).abs() < 0.05,
            "fp loads {fp_loads}"
        );
        assert!((stores - p.frac_store).abs() < 0.05, "stores {stores}");
        assert!((fp_ops - p.frac_fp_ops).abs() < 0.07, "fp ops {fp_ops}");
        assert!(branches > 0.01 && branches < 0.15, "branches {branches}");
    }

    #[test]
    fn ap_handles_majority_of_instructions() {
        let p = BenchmarkProfile::baseline("t");
        let mut t = SyntheticTrace::new(&p, 3);
        let insts = take(&mut t, 10_000);
        let ap = insts.iter().filter(|i| i.unit() == Unit::Ap).count() as f64;
        let frac_ap = ap / insts.len() as f64;
        assert!(frac_ap > 0.5 && frac_ap < 0.75, "AP fraction {frac_ap}");
    }

    #[test]
    fn memory_instructions_carry_addresses_in_data_region() {
        let p = BenchmarkProfile::baseline("t");
        let mut t = SyntheticTrace::new(&p, 5);
        for inst in take(&mut t, 5000) {
            if let Some(m) = inst.mem {
                assert!(
                    m.addr >= p.data_base,
                    "address {:#x} below data base",
                    m.addr
                );
                assert_eq!(m.size, 8);
            }
        }
    }

    #[test]
    fn address_offset_shifts_data_addresses() {
        let p = BenchmarkProfile::baseline("t");
        let offset = 0x1000_0000u64;
        let base_addrs: Vec<u64> = take(&mut SyntheticTrace::new(&p, 9), 2000)
            .iter()
            .filter_map(|i| i.mem.map(|m| m.addr))
            .collect();
        let off_addrs: Vec<u64> = take(&mut SyntheticTrace::with_offset(&p, 9, offset), 2000)
            .iter()
            .filter_map(|i| i.mem.map(|m| m.addr))
            .collect();
        assert_eq!(base_addrs.len(), off_addrs.len());
        for (a, b) in base_addrs.iter().zip(&off_addrs) {
            assert_eq!(a + offset, *b);
        }
    }

    #[test]
    fn fpppp_generates_lod_events_tomcatv_does_not() {
        let count_lod = |name: &str| {
            let p = crate::spec_fp95_profile(name).unwrap();
            let mut t = SyntheticTrace::new(&p, 11);
            take(&mut t, 20_000)
                .iter()
                .filter(|i| i.op == OpClass::IntAlu && i.sources().any(|r| r.is_fp()))
                .count()
        };
        let fpppp = count_lod("fpppp");
        let tomcatv = count_lod("tomcatv");
        assert!(fpppp > 100, "fpppp lod events {fpppp}");
        assert!(tomcatv < fpppp / 10, "tomcatv {tomcatv} vs fpppp {fpppp}");
    }

    #[test]
    fn small_footprint_benchmarks_reuse_addresses() {
        // turb3d/fpppp touch few distinct cache lines; tomcatv touches many.
        let distinct_lines = |name: &str| {
            let p = crate::spec_fp95_profile(name).unwrap();
            let mut t = SyntheticTrace::new(&p, 13);
            take(&mut t, 30_000)
                .iter()
                .filter_map(|i| i.mem.map(|m| m.addr / 32))
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let fpppp = distinct_lines("fpppp");
        let tomcatv = distinct_lines("tomcatv");
        assert!(
            tomcatv > 2 * fpppp,
            "tomcatv lines {tomcatv} vs fpppp {fpppp}"
        );
    }

    #[test]
    fn loop_branch_is_mostly_taken_and_stable_pc() {
        let p = BenchmarkProfile::baseline("t");
        let mut t = SyntheticTrace::new(&p, 17);
        let insts = take(&mut t, 20_000);
        let loop_pc = p.code_base + 0xffc;
        let loop_branches: Vec<_> = insts
            .iter()
            .filter(|i| i.op.is_control() && i.pc == loop_pc)
            .collect();
        assert!(!loop_branches.is_empty());
        let taken = loop_branches
            .iter()
            .filter(|i| i.branch.unwrap().taken)
            .count() as f64;
        assert!(taken / loop_branches.len() as f64 > 0.9);
    }

    #[test]
    fn all_spec_profiles_generate_valid_streams() {
        for p in spec_fp95_profiles() {
            let mut t = SyntheticTrace::new(&p, 23);
            for inst in take(&mut t, 2000) {
                assert!(inst.validate().is_ok(), "{}: {inst}", p.name);
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid profile")]
    fn invalid_profile_panics() {
        let mut p = BenchmarkProfile::baseline("bad");
        p.fp_parallel_chains = 0;
        let _ = SyntheticTrace::new(&p, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Any valid profile yields a stream of valid instructions with the
        /// loop structure intact (at least one branch per iteration).
        #[test]
        fn arbitrary_profiles_generate_valid_streams(
            seed in 0u64..1000,
            fp_load in 0.05f64..0.3,
            fp_ops in 0.2f64..0.5,
            chains in 1usize..8,
            lod in 0.0f64..1.0,
            stride in prop::sample::select(vec![8u64, 16, 32]),
        ) {
            let mut p = BenchmarkProfile::baseline("prop");
            p.frac_fp_load = fp_load;
            p.frac_fp_ops = fp_ops;
            p.fp_parallel_chains = chains;
            p.lod_frac = lod;
            p.array_stride = stride;
            prop_assume!(p.validate().is_ok());
            let mut t = SyntheticTrace::new(&p, seed);
            let mut branches = 0usize;
            for _ in 0..2000 {
                let inst = t.next_instruction().unwrap();
                prop_assert!(inst.validate().is_ok());
                if inst.op.is_control() {
                    branches += 1;
                }
            }
            prop_assert!(branches > 0);
        }
    }
}
