//! Assembled-program workloads: a static program model, the interpreter
//! that expands a program into a dynamic instruction stream, and the
//! per-thread workload builder.
//!
//! Synthetic profiles ([`crate::SyntheticTrace`]) draw every instruction
//! from a statistical mix, which makes all threads of a multiprogrammed
//! workload statistically alike. A [`Program`] is the opposite: a small
//! *static* instruction listing (produced by the `dsmt-asm` assembler or
//! built by hand) whose dynamic behaviour — effective addresses, branch
//! outcomes, loop trip counts — is computed by actually interpreting it.
//! That is what lets heterogeneous mixes exist at all: a pointer-chaser is
//! memory-bound because its loads *are* serially dependent, not because a
//! profile says so.
//!
//! The interpreter models exactly as much architectural state as trace
//! generation needs: 32 integer registers (`r31` hard-wired to zero), a
//! sparse 8-byte-cell memory, and nothing else. Floating-point registers
//! carry no values — FP instructions exist for their dependence shape and
//! unit occupancy, which is all a trace-driven simulator consumes. Loads
//! from cells that were never stored return a deterministic hash of
//! `(seed, address)`, so pointer chases walk a seedable pseudo-random
//! permutation without materialising gigantic initialisation loops.

use std::collections::HashMap;

use dsmt_isa::{ArchReg, BranchInfo, Instruction, OpClass};

use crate::TraceSource;

/// Byte distance between consecutive instructions (Alpha-style fixed
/// 4-byte encoding); the assembler and the interpreter agree on it.
pub const INST_BYTES: u64 = 4;

/// Memory access size of every load/store the program model emits.
pub const ACCESS_BYTES: u8 = 8;

/// Integer ALU operations with full semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (amount taken modulo 64).
    Sll,
    /// Logical shift right (amount taken modulo 64).
    Srl,
}

impl AluOp {
    /// Applies the operation to two 64-bit values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Conditional-branch predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Taken when `src1 == 0`.
    Eq0,
    /// Taken when `src1 != 0`.
    Ne0,
    /// Taken when `src1 < src2` (signed).
    Lt,
    /// Taken when `src1 >= src2` (signed).
    Ge,
}

impl Cond {
    /// Evaluates the predicate over two register values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq0 => a == 0,
            Cond::Ne0 => a != 0,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
        }
    }
}

/// A second ALU operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register operand.
    Reg(ArchReg),
    /// An immediate operand.
    Imm(i64),
}

/// One static instruction with enough semantics to interpret.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgOp {
    /// `dest = imm` (emitted as an [`OpClass::IntAlu`] with dest only).
    LoadImm {
        /// Destination (integer) register.
        dest: ArchReg,
        /// The immediate value.
        imm: i64,
    },
    /// `dest = alu(src1, rhs)` on the integer ALU.
    IntAlu {
        /// The operation.
        alu: AluOp,
        /// Destination register.
        dest: ArchReg,
        /// First source register.
        src1: ArchReg,
        /// Second operand (register or immediate).
        rhs: Operand,
    },
    /// `dest = src1 * rhs` on the integer multiplier.
    IntMul {
        /// Destination register.
        dest: ArchReg,
        /// First source register.
        src1: ArchReg,
        /// Second operand (register or immediate).
        rhs: Operand,
    },
    /// FP computation: dependence shape only, no values.
    Fp {
        /// [`OpClass::FpAdd`], [`OpClass::FpMul`] or [`OpClass::FpDiv`].
        op: OpClass,
        /// Destination FP register.
        dest: ArchReg,
        /// First source FP register.
        src1: ArchReg,
        /// Second source FP register.
        src2: ArchReg,
    },
    /// `dest = mem[src(base) + disp]`; the destination's register class
    /// selects [`OpClass::LoadInt`] vs [`OpClass::LoadFp`].
    Load {
        /// Destination register (int or FP).
        dest: ArchReg,
        /// Base address register (integer).
        base: ArchReg,
        /// Byte displacement.
        disp: i64,
    },
    /// `mem[base + disp] = src`; the source's register class selects
    /// [`OpClass::StoreInt`] vs [`OpClass::StoreFp`].
    Store {
        /// The value register (int or FP).
        src: ArchReg,
        /// Base address register (integer).
        base: ArchReg,
        /// Byte displacement.
        disp: i64,
    },
    /// Conditional branch to `target`.
    CondBranch {
        /// The predicate.
        cond: Cond,
        /// First source register.
        src1: ArchReg,
        /// Second source register (predicates that use one).
        src2: Option<ArchReg>,
        /// Branch target PC.
        target: u64,
    },
    /// Unconditional direct branch.
    Branch {
        /// Branch target PC.
        target: u64,
    },
    /// Indirect jump through a register.
    Jump {
        /// Register holding the target PC.
        src: ArchReg,
    },
    /// No-operation (consumes fetch/dispatch bandwidth).
    Nop,
    /// End of one program iteration: the interpreter restarts at the
    /// entry point with fresh registers. Emits nothing.
    Halt,
}

impl ProgOp {
    /// The dynamic operation class this static instruction expands to
    /// (`None` for [`ProgOp::Halt`], which emits nothing).
    #[must_use]
    pub fn class(&self) -> Option<OpClass> {
        Some(match self {
            ProgOp::LoadImm { .. } | ProgOp::IntAlu { .. } => OpClass::IntAlu,
            ProgOp::IntMul { .. } => OpClass::IntMul,
            ProgOp::Fp { op, .. } => *op,
            ProgOp::Load { dest, .. } => {
                if dest.is_fp() {
                    OpClass::LoadFp
                } else {
                    OpClass::LoadInt
                }
            }
            ProgOp::Store { src, .. } => {
                if src.is_fp() {
                    OpClass::StoreFp
                } else {
                    OpClass::StoreInt
                }
            }
            ProgOp::CondBranch { .. } => OpClass::CondBranch,
            ProgOp::Branch { .. } => OpClass::UncondBranch,
            ProgOp::Jump { .. } => OpClass::Jump,
            ProgOp::Nop => OpClass::Nop,
            ProgOp::Halt => return None,
        })
    }
}

/// One placed static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgInst {
    /// The instruction's address.
    pub pc: u64,
    /// The operation.
    pub op: ProgOp,
}

/// A loaded program: placed instructions plus an initial memory image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name (used as the trace name).
    pub name: String,
    /// Instructions, sorted by address.
    pub code: Vec<ProgInst>,
    /// Entry PC (the lowest code address).
    pub entry: u64,
    /// Initial memory image: `(address, value)` pairs for 8-byte cells
    /// (addresses are rounded down to cell boundaries on load).
    pub data: Vec<(u64, u64)>,
}

impl Program {
    /// Builds a program, sorting the code by address.
    ///
    /// # Panics
    ///
    /// Panics if `code` is empty or two instructions share an address —
    /// assembler output bugs, not runtime conditions.
    #[must_use]
    pub fn new(name: impl Into<String>, mut code: Vec<ProgInst>, data: Vec<(u64, u64)>) -> Self {
        assert!(!code.is_empty(), "a program needs at least one instruction");
        code.sort_by_key(|i| i.pc);
        for pair in code.windows(2) {
            assert!(
                pair[0].pc != pair[1].pc,
                "two instructions at {:#x}",
                pair[0].pc
            );
        }
        let entry = code[0].pc;
        Program {
            name: name.into(),
            code,
            entry,
            data,
        }
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions (never true for a
    /// constructed program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Expands the program into up to `limit` dynamic instructions under
    /// `seed` — the bounded-unrolling entry point used by golden tests and
    /// `dsmt asm inspect`. Stops early only if the program stops emitting
    /// (e.g. `halt` as the sole instruction).
    #[must_use]
    pub fn expand(&self, seed: u64, limit: u64) -> Vec<Instruction> {
        let mut trace = ProgramTrace::new(self.clone(), seed, 0).with_budget(limit);
        let mut out = Vec::with_capacity(limit.min(1 << 20) as usize);
        while let Some(inst) = trace.next_instruction() {
            out.push(inst);
        }
        out
    }
}

/// Deterministic value of a never-written memory cell: a hash of the seed
/// and the cell address (SplitMix64 finaliser). This is what makes
/// pointer-chasing programs walk seedable pseudo-random sequences without
/// an initialisation pass.
#[must_use]
fn cell_hash(seed: u64, addr: u64) -> u64 {
    let mut z = seed ^ addr.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The interpreter: a [`TraceSource`] that executes a [`Program`],
/// emitting one dynamic [`Instruction`] per interpreted step.
///
/// Registers reset at each `halt` (the program restarts at its entry, so
/// the source is infinite, like every workload trace); memory persists
/// across restarts. Data addresses are offset by `addr_offset` *in the
/// emitted records only* — the program computes in its own address space,
/// so every thread of a [`ProgramWorkload`] executes identical semantics
/// over a disjoint working set.
#[derive(Debug)]
pub struct ProgramTrace {
    program: Program,
    /// `pc -> code index`, built once.
    index: HashMap<u64, usize>,
    regs: [u64; 32],
    mem: HashMap<u64, u64>,
    seed: u64,
    addr_offset: u64,
    pc: u64,
    emitted: u64,
    budget: Option<u64>,
}

impl ProgramTrace {
    /// Creates an interpreter over `program` with the given seed and
    /// emitted-address offset.
    #[must_use]
    pub fn new(program: Program, seed: u64, addr_offset: u64) -> Self {
        let index = program
            .code
            .iter()
            .enumerate()
            .map(|(i, inst)| (inst.pc, i))
            .collect();
        let entry = program.entry;
        let mut trace = ProgramTrace {
            program,
            index,
            regs: [0; 32],
            mem: HashMap::new(),
            seed,
            addr_offset,
            pc: entry,
            emitted: 0,
            budget: None,
        };
        trace.load_image();
        trace
    }

    /// Caps the stream at `budget` dynamic instructions (the deterministic
    /// instruction budget for eager expansion); without a budget the
    /// source is infinite.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Total dynamic instructions emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn load_image(&mut self) {
        for &(addr, value) in &self.program.data {
            self.mem.insert(addr & !7, value);
        }
    }

    fn read_reg(&self, reg: ArchReg) -> u64 {
        if reg.is_zero() || reg.is_fp() {
            0
        } else {
            self.regs[reg.index() as usize]
        }
    }

    fn write_reg(&mut self, reg: ArchReg, value: u64) {
        if !reg.is_zero() && !reg.is_fp() {
            self.regs[reg.index() as usize] = value;
        }
    }

    fn operand(&self, rhs: Operand) -> u64 {
        match rhs {
            Operand::Reg(r) => self.read_reg(r),
            Operand::Imm(i) => i as u64,
        }
    }

    fn read_mem(&self, addr: u64) -> u64 {
        let cell = addr & !7;
        self.mem
            .get(&cell)
            .copied()
            .unwrap_or_else(|| cell_hash(self.seed, cell))
    }

    fn restart(&mut self) {
        self.regs = [0; 32];
        self.pc = self.program.entry;
    }

    /// Interprets one static instruction, returning the emitted dynamic
    /// record (`None` for `halt`, which only restarts).
    fn step(&mut self) -> Option<Instruction> {
        let Some(&idx) = self.index.get(&self.pc) else {
            // Fell off the end of the code (or jumped outside it).
            self.restart();
            return None;
        };
        let ProgInst { pc, op } = self.program.code[idx];
        let mut next_pc = pc.wrapping_add(INST_BYTES);
        let inst = match op {
            ProgOp::Halt => {
                self.restart();
                return None;
            }
            ProgOp::LoadImm { dest, imm } => {
                self.write_reg(dest, imm as u64);
                Instruction::new(pc, OpClass::IntAlu).with_dest(dest)
            }
            ProgOp::IntAlu {
                alu,
                dest,
                src1,
                rhs,
            } => {
                let value = alu.eval(self.read_reg(src1), self.operand(rhs));
                self.write_reg(dest, value);
                let mut inst = Instruction::new(pc, OpClass::IntAlu)
                    .with_dest(dest)
                    .with_src1(src1);
                if let Operand::Reg(r) = rhs {
                    inst = inst.with_src2(r);
                }
                inst
            }
            ProgOp::IntMul { dest, src1, rhs } => {
                let value = self.read_reg(src1).wrapping_mul(self.operand(rhs));
                self.write_reg(dest, value);
                let mut inst = Instruction::new(pc, OpClass::IntMul)
                    .with_dest(dest)
                    .with_src1(src1);
                if let Operand::Reg(r) = rhs {
                    inst = inst.with_src2(r);
                }
                inst
            }
            ProgOp::Fp {
                op: fp_op,
                dest,
                src1,
                src2,
            } => Instruction::new(pc, fp_op)
                .with_dest(dest)
                .with_src1(src1)
                .with_src2(src2),
            ProgOp::Load { dest, base, disp } => {
                let addr = self.read_reg(base).wrapping_add(disp as u64);
                let class = if dest.is_fp() {
                    OpClass::LoadFp
                } else {
                    OpClass::LoadInt
                };
                if !dest.is_fp() {
                    let value = self.read_mem(addr);
                    self.write_reg(dest, value);
                }
                Instruction::new(pc, class)
                    .with_dest(dest)
                    .with_src1(base)
                    .with_mem(addr.wrapping_add(self.addr_offset), ACCESS_BYTES)
            }
            ProgOp::Store { src, base, disp } => {
                let addr = self.read_reg(base).wrapping_add(disp as u64);
                let class = if src.is_fp() {
                    OpClass::StoreFp
                } else {
                    OpClass::StoreInt
                };
                let value = self.read_reg(src);
                self.mem.insert(addr & !7, value);
                Instruction::new(pc, class)
                    .with_src1(src)
                    .with_src2(base)
                    .with_mem(addr.wrapping_add(self.addr_offset), ACCESS_BYTES)
            }
            ProgOp::CondBranch {
                cond,
                src1,
                src2,
                target,
            } => {
                let b = self.read_reg(src2.unwrap_or_else(|| ArchReg::int(31)));
                let taken = cond.eval(self.read_reg(src1), b);
                let info = if taken {
                    next_pc = target;
                    BranchInfo::taken(target)
                } else {
                    BranchInfo::not_taken()
                };
                let mut inst = Instruction::new(pc, OpClass::CondBranch)
                    .with_src1(src1)
                    .with_branch(info);
                if let Some(r) = src2 {
                    inst = inst.with_src2(r);
                }
                inst
            }
            ProgOp::Branch { target } => {
                next_pc = target;
                Instruction::new(pc, OpClass::UncondBranch).with_branch(BranchInfo::taken(target))
            }
            ProgOp::Jump { src } => {
                let target = self.read_reg(src);
                next_pc = target;
                Instruction::new(pc, OpClass::Jump)
                    .with_src1(src)
                    .with_branch(BranchInfo::taken(target))
            }
            ProgOp::Nop => Instruction::new(pc, OpClass::Nop),
        };
        self.pc = next_pc;
        Some(inst)
    }
}

impl TraceSource for ProgramTrace {
    fn next_instruction(&mut self) -> Option<Instruction> {
        if self.budget.is_some_and(|b| self.emitted >= b) {
            return None;
        }
        // A `halt` (or falling off the code) restarts without emitting;
        // retry once. A program that emits nothing across two fresh starts
        // (e.g. `halt` alone) is genuinely empty.
        for _ in 0..2 {
            if let Some(inst) = self.step() {
                self.emitted += 1;
                debug_assert!(inst.validate().is_ok(), "interpreter emitted {inst}");
                return Some(inst);
            }
        }
        None
    }

    fn name(&self) -> &str {
        &self.program.name
    }
}

/// Distributes assembled programs across hardware threads: thread `t` runs
/// program `t mod n`, pinned for the whole simulation.
///
/// This is the heterogeneous counterpart of [`crate::ThreadWorkload`]:
/// where that rotates every thread through *all* profiles (the paper's
/// homogeneous multiprogramming), this keeps each thread's character
/// fixed — one thread stays a memory-bound pointer-chaser while its
/// neighbour stays a compute-bound kernel, which is exactly the situation
/// where fetch policies differ. Threads get decorrelated seeds and
/// disjoint emitted-address regions, mirroring [`crate::ThreadWorkload`].
#[derive(Debug, Clone)]
pub struct ProgramWorkload {
    programs: Vec<Program>,
    seed: u64,
    thread_addr_stride: u64,
}

impl ProgramWorkload {
    /// Creates a workload over `programs`.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    #[must_use]
    pub fn new(programs: Vec<Program>, seed: u64) -> Self {
        assert!(!programs.is_empty(), "need at least one program");
        ProgramWorkload {
            programs,
            seed,
            // Same stride rationale as ThreadWorkload: disjoint regions,
            // deliberately not a multiple of typical L1 capacities.
            thread_addr_stride: 0x4000_0000 + 0x1_a000,
        }
    }

    /// Overrides the emitted-address separation between threads.
    #[must_use]
    pub fn with_thread_addr_stride(mut self, stride: u64) -> Self {
        self.thread_addr_stride = stride;
        self
    }

    /// Number of distinct programs.
    #[must_use]
    pub fn num_programs(&self) -> usize {
        self.programs.len()
    }

    /// Builds the trace for hardware thread `thread_id`: program
    /// `thread_id mod n`, a decorrelated seed, and a disjoint emitted
    /// address region.
    #[must_use]
    pub fn thread_trace(&self, thread_id: usize) -> ProgramTrace {
        let n = self.programs.len();
        let mut program = self.programs[thread_id % n].clone();
        program.name = format!("{}@t{thread_id}", program.name);
        let seed = self
            .seed
            .wrapping_add(thread_id as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let addr_offset = thread_id as u64 * self.thread_addr_stride;
        ProgramTrace::new(program, seed, addr_offset)
    }

    /// Builds traces for `num_threads` hardware threads.
    #[must_use]
    pub fn build(&self, num_threads: usize) -> Vec<ProgramTrace> {
        (0..num_threads).map(|t| self.thread_trace(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A four-instruction counted loop: r1 counts 3 iterations of
    /// (ialu, load, cond-branch), then halts.
    fn counted_loop() -> Program {
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        let r3 = ArchReg::int(3);
        Program::new(
            "loop",
            vec![
                ProgInst {
                    pc: 0x1000,
                    op: ProgOp::LoadImm { dest: r1, imm: 3 },
                },
                ProgInst {
                    pc: 0x1004,
                    op: ProgOp::Load {
                        dest: r2,
                        base: r3,
                        disp: 0x100,
                    },
                },
                ProgInst {
                    pc: 0x1008,
                    op: ProgOp::IntAlu {
                        alu: AluOp::Sub,
                        dest: r1,
                        src1: r1,
                        rhs: Operand::Imm(1),
                    },
                },
                ProgInst {
                    pc: 0x100c,
                    op: ProgOp::CondBranch {
                        cond: Cond::Ne0,
                        src1: r1,
                        src2: None,
                        target: 0x1004,
                    },
                },
                ProgInst {
                    pc: 0x1010,
                    op: ProgOp::Halt,
                },
            ],
            vec![],
        )
    }

    #[test]
    fn expansion_follows_control_flow() {
        let insts = counted_loop().expand(1, 10);
        assert_eq!(insts.len(), 10);
        let pcs: Vec<u64> = insts.iter().map(|i| i.pc).collect();
        assert_eq!(
            pcs,
            vec![
                0x1000, 0x1004, 0x1008, 0x100c, // iter 1 (branch taken)
                0x1004, 0x1008, 0x100c, // iter 2 (taken)
                0x1004, 0x1008, 0x100c, // iter 3 (not taken; halt follows)
            ]
        );
        let branches: Vec<bool> = insts
            .iter()
            .filter_map(|i| i.branch.map(|b| b.taken))
            .collect();
        assert_eq!(branches, vec![true, true, false]);
        for inst in &insts {
            assert!(inst.validate().is_ok(), "{inst}");
        }
    }

    #[test]
    fn trace_is_infinite_and_restarts_after_halt() {
        let mut trace = ProgramTrace::new(counted_loop(), 7, 0);
        for _ in 0..100 {
            assert!(trace.next_instruction().is_some());
        }
        assert_eq!(trace.emitted(), 100);
        assert_eq!(trace.name(), "loop");
    }

    #[test]
    fn budget_caps_the_stream() {
        let mut trace = ProgramTrace::new(counted_loop(), 7, 0).with_budget(5);
        let n = std::iter::from_fn(|| trace.next_instruction()).count();
        assert_eq!(n, 5);
        assert!(trace.next_instruction().is_none());
    }

    #[test]
    fn halt_only_program_is_empty() {
        let p = Program::new(
            "empty",
            vec![ProgInst {
                pc: 0,
                op: ProgOp::Halt,
            }],
            vec![],
        );
        let mut trace = ProgramTrace::new(p, 1, 0);
        assert!(trace.next_instruction().is_none());
    }

    #[test]
    fn uninitialised_loads_are_seed_dependent_hashes() {
        let a = counted_loop().expand(1, 10);
        let b = counted_loop().expand(1, 10);
        assert_eq!(a, b, "same seed, same expansion");
        // The load feeds no address computation here, so expansions agree
        // across seeds — but the underlying cell values must differ.
        assert_ne!(cell_hash(1, 0x100), cell_hash(2, 0x100));
        assert_ne!(cell_hash(1, 0x100), cell_hash(1, 0x108));
    }

    #[test]
    fn stores_persist_and_shadow_the_hash() {
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        let p = Program::new(
            "store-load",
            vec![
                ProgInst {
                    pc: 0,
                    op: ProgOp::LoadImm { dest: r1, imm: 42 },
                },
                ProgInst {
                    pc: 4,
                    op: ProgOp::Store {
                        src: r1,
                        base: ArchReg::int(31),
                        disp: 0x200,
                    },
                },
                ProgInst {
                    pc: 8,
                    op: ProgOp::Load {
                        dest: r2,
                        base: ArchReg::int(31),
                        disp: 0x200,
                    },
                },
                ProgInst {
                    pc: 12,
                    op: ProgOp::Halt,
                },
            ],
            vec![],
        );
        let mut trace = ProgramTrace::new(p, 9, 0);
        for _ in 0..3 {
            trace.next_instruction().unwrap();
        }
        assert_eq!(trace.regs[2], 42, "load observes the store");
    }

    #[test]
    fn data_image_preloads_memory() {
        let r2 = ArchReg::int(2);
        let p = Program::new(
            "image",
            vec![
                ProgInst {
                    pc: 0,
                    op: ProgOp::Load {
                        dest: r2,
                        base: ArchReg::int(31),
                        disp: 0x300,
                    },
                },
                ProgInst {
                    pc: 4,
                    op: ProgOp::Halt,
                },
            ],
            vec![(0x300, 777)],
        );
        let mut trace = ProgramTrace::new(p, 1, 0);
        trace.next_instruction().unwrap();
        assert_eq!(trace.regs[2], 777);
    }

    #[test]
    fn addr_offset_shifts_emitted_addresses_only() {
        let base = counted_loop().expand(1, 10);
        let mut shifted = ProgramTrace::new(counted_loop(), 1, 0x10_0000);
        for want in &base {
            let got = shifted.next_instruction().unwrap();
            assert_eq!(got.pc, want.pc, "code addresses are not offset");
            match (got.mem, want.mem) {
                (Some(g), Some(w)) => assert_eq!(g.addr, w.addr + 0x10_0000),
                (None, None) => {}
                other => panic!("mem mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn workload_assigns_programs_and_disjoint_regions() {
        let w = ProgramWorkload::new(vec![counted_loop()], 42);
        assert_eq!(w.num_programs(), 1);
        let mut t0 = w.thread_trace(0);
        let mut t1 = w.thread_trace(1);
        assert_eq!(t0.name(), "loop@t0");
        assert_eq!(t1.name(), "loop@t1");
        let addr = |t: &mut ProgramTrace| {
            std::iter::from_fn(|| t.next_instruction())
                .take(10)
                .find_map(|i| i.mem.map(|m| m.addr))
                .unwrap()
        };
        let (a0, a1) = (addr(&mut t0), addr(&mut t1));
        assert!(a1 > a0, "thread 1 region above thread 0");
        assert!(a1 - a0 >= 0x4000_0000);
    }

    #[test]
    fn workload_build_and_modulo_assignment() {
        let mut other = counted_loop();
        other.name = "other".into();
        let w = ProgramWorkload::new(vec![counted_loop(), other], 1);
        let traces = w.build(4);
        assert_eq!(traces.len(), 4);
        assert_eq!(traces[0].name(), "loop@t0");
        assert_eq!(traces[1].name(), "other@t1");
        assert_eq!(traces[2].name(), "loop@t2");
        assert_eq!(traces[3].name(), "other@t3");
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_code_panics() {
        let _ = Program::new("x", vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "two instructions at")]
    fn duplicate_pc_panics() {
        let _ = Program::new(
            "x",
            vec![
                ProgInst {
                    pc: 0,
                    op: ProgOp::Nop,
                },
                ProgInst {
                    pc: 0,
                    op: ProgOp::Nop,
                },
            ],
            vec![],
        );
    }

    #[test]
    fn alu_and_cond_semantics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.eval(1, 4), 16);
        assert_eq!(AluOp::Srl.eval(16, 4), 1);
        assert_eq!(AluOp::Sll.eval(1, 64), 1, "shift amount is modulo 64");
        assert!(Cond::Eq0.eval(0, 9));
        assert!(Cond::Ne0.eval(1, 9));
        assert!(Cond::Lt.eval(u64::MAX, 0), "signed: -1 < 0");
        assert!(Cond::Ge.eval(0, u64::MAX), "signed: 0 >= -1");
    }
}
