//! Binary trace file format (version 2: varint-packed, checksummed).
//!
//! Allows captured or synthesised traces to be stored and replayed, so that
//! expensive workload generation can be done once and experiments become
//! exactly reproducible from on-disk artifacts (mirroring the paper's
//! trace-driven methodology).
//!
//! Layout (all varints are the canonical LEB128 of [`dsmt_isa::varint`];
//! signed values are zigzag-mapped):
//!
//! ```text
//! magic    8 bytes   "DSMTTRC2"
//! name     uvarint length + UTF-8 bytes
//! count    uvarint   number of instruction records
//! records  count × packed records (below)
//! checksum u64 LE    FNV-1a 64 of every preceding byte
//! ```
//!
//! Each record is delta-packed against its predecessor — consecutive trace
//! PCs and effective addresses are near each other, so the deltas stay in
//! one or two bytes:
//!
//! ```text
//! op      u8        OpClass tag
//! flags   u8        bit 0 dest · 1 src1 · 2 src2 · 3 mem · 4 branch · 5 taken
//! pc      ivarint   delta from the previous record's pc (first: from 0)
//! dest    u8        if flagged: bit 7 = FP class, bits 0–5 = index
//! src1    u8        if flagged (same layout)
//! src2    u8        if flagged (same layout)
//! mem     ivarint   address delta from the previous memory address
//!         uvarint   access size (both only if flagged)
//! branch  ivarint   target delta from this record's pc (only if flagged)
//! ```
//!
//! The trailing checksum makes the format fail-stop: readers verify it over
//! the whole file *before* decoding any record, so truncation and bit
//! corruption surface as [`TraceFileError::ChecksumMismatch`] (or
//! [`TraceFileError::Truncated`]) instead of silently replaying a damaged
//! trace. Canonical varints guarantee every trace has exactly one byte
//! representation, which is what lets golden tests compare files with
//! `cmp`.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};

use dsmt_isa::{
    fnv1a64, get_ivarint, get_uvarint, put_ivarint, put_uvarint, ArchReg, BranchInfo, Instruction,
    MemRef, OpClass, VarintError,
};

use crate::{TraceSource, VecTrace};

/// Magic bytes identifying a DSMT trace file (version 2).
pub const TRACE_MAGIC: &[u8; 8] = b"DSMTTRC2";

/// Record flag bits (mirrors the fixed-width encoding in `dsmt-isa`).
const FLAG_DEST: u8 = 1 << 0;
const FLAG_SRC1: u8 = 1 << 1;
const FLAG_SRC2: u8 = 1 << 2;
const FLAG_MEM: u8 = 1 << 3;
const FLAG_BRANCH: u8 = 1 << 4;
const FLAG_TAKEN: u8 = 1 << 5;
const FLAG_ALL: u8 = FLAG_DEST | FLAG_SRC1 | FLAG_SRC2 | FLAG_MEM | FLAG_BRANCH | FLAG_TAKEN;

/// Register byte: bit 7 selects the FP class, bits 0–5 the index.
const REG_FP_BIT: u8 = 1 << 7;

/// Errors produced while reading or writing trace files.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file ended before the declared number of instructions.
    Truncated,
    /// The trailing FNV checksum does not match the file contents.
    ChecksumMismatch,
    /// A varint field is truncated or non-canonical.
    BadVarint(VarintError),
    /// A record field holds an impossible value.
    Malformed(&'static str),
    /// The embedded trace name is not valid UTF-8.
    BadName,
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a DSMT trace file (bad magic)"),
            TraceFileError::Truncated => write!(f, "trace file ends prematurely"),
            TraceFileError::ChecksumMismatch => {
                write!(f, "trace file checksum mismatch (corrupt or truncated)")
            }
            TraceFileError::BadVarint(e) => write!(f, "malformed trace varint: {e}"),
            TraceFileError::Malformed(what) => write!(f, "malformed trace record: {what}"),
            TraceFileError::BadName => write!(f, "trace name is not valid utf-8"),
        }
    }
}

impl Error for TraceFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            TraceFileError::BadVarint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

impl From<VarintError> for TraceFileError {
    fn from(e: VarintError) -> Self {
        TraceFileError::BadVarint(e)
    }
}

fn reg_byte(reg: ArchReg) -> u8 {
    let class = if reg.is_fp() { REG_FP_BIT } else { 0 };
    class | (reg.index() & 0x3f)
}

fn parse_reg(byte: u8) -> Result<ArchReg, TraceFileError> {
    let index = byte & 0x3f;
    if byte & 0x40 != 0 {
        return Err(TraceFileError::Malformed("register byte has bit 6 set"));
    }
    if usize::from(index) >= dsmt_isa::NUM_INT_REGS {
        return Err(TraceFileError::Malformed("register index out of range"));
    }
    Ok(if byte & REG_FP_BIT != 0 {
        ArchReg::fp(index)
    } else {
        ArchReg::int(index)
    })
}

/// Running delta state shared by the encoder and decoder.
#[derive(Default)]
struct DeltaState {
    pc: u64,
    mem_addr: u64,
}

fn encode_record(buf: &mut Vec<u8>, inst: &Instruction, state: &mut DeltaState) {
    buf.put_u8(inst.op.tag());
    let mut flags = 0u8;
    if inst.dest.is_some() {
        flags |= FLAG_DEST;
    }
    if inst.src1.is_some() {
        flags |= FLAG_SRC1;
    }
    if inst.src2.is_some() {
        flags |= FLAG_SRC2;
    }
    if inst.mem.is_some() {
        flags |= FLAG_MEM;
    }
    if let Some(b) = inst.branch {
        flags |= FLAG_BRANCH;
        if b.taken {
            flags |= FLAG_TAKEN;
        }
    }
    buf.put_u8(flags);
    put_ivarint(buf, inst.pc.wrapping_sub(state.pc) as i64);
    state.pc = inst.pc;
    for reg in [inst.dest, inst.src1, inst.src2].into_iter().flatten() {
        buf.put_u8(reg_byte(reg));
    }
    if let Some(mem) = inst.mem {
        put_ivarint(buf, mem.addr.wrapping_sub(state.mem_addr) as i64);
        put_uvarint(buf, u64::from(mem.size));
        state.mem_addr = mem.addr;
    }
    if let Some(b) = inst.branch {
        put_ivarint(buf, b.target.wrapping_sub(inst.pc) as i64);
    }
}

fn decode_record(buf: &mut &[u8], state: &mut DeltaState) -> Result<Instruction, TraceFileError> {
    if buf.remaining() < 2 {
        return Err(TraceFileError::Truncated);
    }
    let tag = buf.get_u8();
    let op = OpClass::from_tag(tag).ok_or(TraceFileError::Malformed("unknown op tag"))?;
    let flags = buf.get_u8();
    if flags & !FLAG_ALL != 0 {
        return Err(TraceFileError::Malformed("unknown flag bits"));
    }
    if flags & FLAG_TAKEN != 0 && flags & FLAG_BRANCH == 0 {
        return Err(TraceFileError::Malformed("taken flag without branch"));
    }
    let pc = state.pc.wrapping_add(get_ivarint(buf)? as u64);
    state.pc = pc;
    let mut inst = Instruction::new(pc, op);
    if flags & FLAG_DEST != 0 {
        if !buf.has_remaining() {
            return Err(TraceFileError::Truncated);
        }
        inst.dest = Some(parse_reg(buf.get_u8())?);
    }
    if flags & FLAG_SRC1 != 0 {
        if !buf.has_remaining() {
            return Err(TraceFileError::Truncated);
        }
        inst.src1 = Some(parse_reg(buf.get_u8())?);
    }
    if flags & FLAG_SRC2 != 0 {
        if !buf.has_remaining() {
            return Err(TraceFileError::Truncated);
        }
        inst.src2 = Some(parse_reg(buf.get_u8())?);
    }
    if flags & FLAG_MEM != 0 {
        let addr = state.mem_addr.wrapping_add(get_ivarint(buf)? as u64);
        let size = get_uvarint(buf)?;
        let size =
            u8::try_from(size).map_err(|_| TraceFileError::Malformed("access size over 255"))?;
        state.mem_addr = addr;
        inst.mem = Some(MemRef::new(addr, size));
    }
    if flags & FLAG_BRANCH != 0 {
        let target = pc.wrapping_add(get_ivarint(buf)? as u64);
        inst.branch = Some(BranchInfo::new(flags & FLAG_TAKEN != 0, target));
    }
    Ok(inst)
}

/// Writes traces in the DSMT binary format.
#[derive(Debug)]
pub struct TraceWriter;

impl TraceWriter {
    /// Serialises `instructions` (with a trace `name`) into `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn write<W: Write>(
        writer: &mut W,
        name: &str,
        instructions: &[Instruction],
    ) -> Result<(), TraceFileError> {
        let mut buf = Vec::with_capacity(instructions.len() * 8 + 64);
        buf.put_slice(TRACE_MAGIC);
        let name_bytes = name.as_bytes();
        put_uvarint(&mut buf, name_bytes.len() as u64);
        buf.put_slice(name_bytes);
        put_uvarint(&mut buf, instructions.len() as u64);
        let mut state = DeltaState::default();
        for inst in instructions {
            encode_record(&mut buf, inst, &mut state);
        }
        let checksum = fnv1a64(&buf);
        buf.put_u64_le(checksum);
        writer.write_all(&buf)?;
        Ok(())
    }

    /// Serialises the next `n` instructions of `source` into `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn write_from_source<W: Write, S: TraceSource + ?Sized>(
        writer: &mut W,
        source: &mut S,
        n: u64,
    ) -> Result<u64, TraceFileError> {
        let mut insts = Vec::new();
        for _ in 0..n {
            match source.next_instruction() {
                Some(i) => insts.push(i),
                None => break,
            }
        }
        let name = source.name().to_string();
        TraceWriter::write(writer, &name, &insts)?;
        Ok(insts.len() as u64)
    }
}

/// Reads traces in the DSMT binary format.
#[derive(Debug)]
pub struct TraceReader;

impl TraceReader {
    /// Reads an entire trace file into a replayable [`VecTrace`].
    ///
    /// The trailing checksum is verified over the whole file *before* any
    /// record is decoded, so a corrupt or truncated file never yields
    /// instructions.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] on I/O failure, bad magic, truncation,
    /// checksum mismatch or malformed records.
    pub fn read<R: Read>(reader: &mut R) -> Result<VecTrace, TraceFileError> {
        let mut data = Vec::new();
        reader.read_to_end(&mut data)?;
        if data.len() < TRACE_MAGIC.len() {
            return Err(TraceFileError::Truncated);
        }
        if &data[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        if data.len() < TRACE_MAGIC.len() + 8 {
            return Err(TraceFileError::Truncated);
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let declared = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(body) != declared {
            return Err(TraceFileError::ChecksumMismatch);
        }
        let mut buf = &body[TRACE_MAGIC.len()..];
        let name_len = get_uvarint(&mut buf)?;
        let name_len =
            usize::try_from(name_len).map_err(|_| TraceFileError::Malformed("name length"))?;
        if buf.remaining() < name_len {
            return Err(TraceFileError::Truncated);
        }
        let name = std::str::from_utf8(&buf[..name_len])
            .map_err(|_| TraceFileError::BadName)?
            .to_string();
        buf.advance(name_len);
        let count = get_uvarint(&mut buf)?;
        let mut instructions = Vec::with_capacity(count.min(1_000_000) as usize);
        let mut state = DeltaState::default();
        for _ in 0..count {
            instructions.push(decode_record(&mut buf, &mut state)?);
        }
        if buf.has_remaining() {
            return Err(TraceFileError::Malformed("trailing bytes after records"));
        }
        Ok(VecTrace::new(name, instructions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkProfile, SyntheticTrace};

    fn sample_trace(n: u64) -> Vec<Instruction> {
        let p = BenchmarkProfile::baseline("roundtrip");
        let mut t = SyntheticTrace::new(&p, 99);
        (0..n).map(|_| t.next_instruction().unwrap()).collect()
    }

    fn written(name: &str, insts: &[Instruction]) -> Vec<u8> {
        let mut buf = Vec::new();
        TraceWriter::write(&mut buf, name, insts).unwrap();
        buf
    }

    #[test]
    fn roundtrip_through_memory_buffer() {
        let insts = sample_trace(500);
        let buf = written("roundtrip", &insts);
        let mut replay = TraceReader::read(&mut buf.as_slice()).unwrap();
        assert_eq!(replay.name(), "roundtrip");
        assert_eq!(replay.len(), 500);
        for want in &insts {
            assert_eq!(replay.next_instruction().as_ref(), Some(want));
        }
        assert!(replay.next_instruction().is_none());
    }

    #[test]
    fn varint_packing_beats_fixed_width() {
        // The v1 format spent >= 10 bytes per record; delta-packed varints
        // should do visibly better on a real instruction mix.
        let insts = sample_trace(2000);
        let buf = written("size", &insts);
        let per_record = (buf.len() as f64) / 2000.0;
        assert!(
            per_record < 10.0,
            "expected < 10 bytes/record, got {per_record:.2}"
        );
    }

    #[test]
    fn write_from_source_counts() {
        let p = BenchmarkProfile::baseline("src");
        let mut t = SyntheticTrace::new(&p, 1);
        let mut buf = Vec::new();
        let written = TraceWriter::write_from_source(&mut buf, &mut t, 123).unwrap();
        assert_eq!(written, 123);
        let replay = TraceReader::read(&mut buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 123);
        assert_eq!(replay.name(), "src");
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = written("x", &sample_trace(3));
        buf[0] = b'X';
        match TraceReader::read(&mut buf.as_slice()) {
            Err(TraceFileError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let buf = written("x", &sample_trace(40));
        for cut in 0..buf.len() {
            match TraceReader::read(&mut &buf[..cut]) {
                Err(
                    TraceFileError::Truncated
                    | TraceFileError::ChecksumMismatch
                    | TraceFileError::BadMagic,
                ) => {}
                other => panic!("cut at {cut}: expected failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let buf = written("x", &sample_trace(25));
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                TraceReader::read(&mut bad.as_slice()).is_err(),
                "flip at byte {i} must not parse"
            );
        }
    }

    #[test]
    fn checksum_mismatch_reported_before_decode() {
        let mut buf = written("x", &sample_trace(10));
        // Corrupt a record byte (past magic + name + count, before tail).
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        match TraceReader::read(&mut buf.as_slice()) {
            Err(TraceFileError::ChecksumMismatch) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_is_truncated() {
        match TraceReader::read(&mut &[][..]) {
            Err(TraceFileError::Truncated) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let buf = written("empty", &[]);
        let replay = TraceReader::read(&mut buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 0);
        assert!(replay.is_empty());
    }

    #[test]
    fn writes_are_deterministic() {
        let insts = sample_trace(100);
        assert_eq!(written("d", &insts), written("d", &insts));
    }

    #[test]
    fn error_display_messages() {
        assert!(TraceFileError::BadMagic.to_string().contains("magic"));
        assert!(TraceFileError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        let e = TraceFileError::Io(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        let e = TraceFileError::BadVarint(VarintError::Truncated);
        assert!(e.source().is_some());
    }

    #[test]
    fn extreme_field_values_roundtrip() {
        let insts = vec![
            Instruction::new(u64::MAX, OpClass::LoadInt)
                .with_dest(ArchReg::int(31))
                .with_src1(ArchReg::int(0))
                .with_mem(u64::MAX, 255),
            Instruction::new(0, OpClass::CondBranch)
                .with_src1(ArchReg::fp(31))
                .with_branch(BranchInfo::new(false, u64::MAX)),
            Instruction::new(u64::MAX / 2, OpClass::Nop),
        ];
        let buf = written("edge", &insts);
        let mut replay = TraceReader::read(&mut buf.as_slice()).unwrap();
        for want in &insts {
            assert_eq!(replay.next_instruction().as_ref(), Some(want));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = ArchReg> {
        (any::<bool>(), 0u8..32)
            .prop_map(|(fp, i)| if fp { ArchReg::fp(i) } else { ArchReg::int(i) })
    }

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        (
            any::<u64>(),
            0u8..13,
            prop::option::of(arb_reg()),
            prop::option::of(arb_reg()),
            prop::option::of(arb_reg()),
            prop::option::of((any::<u64>(), any::<u8>())),
            prop::option::of((any::<bool>(), any::<u64>())),
        )
            .prop_map(|(pc, tag, dest, src1, src2, mem, branch)| {
                let mut inst = Instruction::new(pc, OpClass::from_tag(tag).unwrap());
                inst.dest = dest;
                inst.src1 = src1;
                inst.src2 = src2;
                inst.mem = mem.map(|(a, s)| MemRef::new(a, s));
                inst.branch = branch.map(|(t, tgt)| BranchInfo::new(t, tgt));
                inst
            })
    }

    proptest! {
        #[test]
        fn arbitrary_instruction_sequences_roundtrip(
            insts in prop::collection::vec(arb_instruction(), 0..64),
            name_bytes in prop::collection::vec(any::<u8>(), 0..24),
        ) {
            let name: String = name_bytes
                .into_iter()
                .map(|b| char::from(b'a' + b % 26))
                .collect();
            let mut buf = Vec::new();
            TraceWriter::write(&mut buf, &name, &insts).unwrap();
            let mut replay = TraceReader::read(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(replay.name(), &name[..]);
            for want in &insts {
                prop_assert_eq!(replay.next_instruction().as_ref(), Some(want));
            }
            prop_assert!(replay.next_instruction().is_none());
        }

        #[test]
        fn reading_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = TraceReader::read(&mut bytes.as_slice());
        }

        #[test]
        fn valid_prefix_plus_garbage_never_panics(
            insts in prop::collection::vec(arb_instruction(), 0..16),
            garbage in prop::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut buf = Vec::new();
            TraceWriter::write(&mut buf, "t", &insts).unwrap();
            buf.extend_from_slice(&garbage);
            let _ = TraceReader::read(&mut buf.as_slice());
        }
    }
}
