//! Binary trace file format.
//!
//! Allows captured or synthesised traces to be stored and replayed, so that
//! expensive workload generation can be done once and experiments become
//! exactly reproducible from on-disk artifacts (mirroring the paper's
//! trace-driven methodology).
//!
//! Layout:
//!
//! ```text
//! magic   8 bytes  "DSMTTRC1"
//! count   u64 LE   number of instructions
//! name    u16 LE length + UTF-8 bytes
//! body    `count` encoded instructions (see dsmt-isa encoding)
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};

use dsmt_isa::{decode_instruction, encode_instruction, Instruction, InstructionError};

use crate::{TraceSource, VecTrace};

/// Magic bytes identifying a DSMT trace file (version 1).
pub const TRACE_MAGIC: &[u8; 8] = b"DSMTTRC1";

/// Errors produced while reading or writing trace files.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file ended before the declared number of instructions.
    Truncated,
    /// An instruction record could not be decoded.
    BadInstruction(InstructionError),
    /// The embedded trace name is not valid UTF-8.
    BadName,
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file i/o error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a DSMT trace file (bad magic)"),
            TraceFileError::Truncated => write!(f, "trace file ends prematurely"),
            TraceFileError::BadInstruction(e) => write!(f, "malformed instruction record: {e}"),
            TraceFileError::BadName => write!(f, "trace name is not valid utf-8"),
        }
    }
}

impl Error for TraceFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            TraceFileError::BadInstruction(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

impl From<InstructionError> for TraceFileError {
    fn from(e: InstructionError) -> Self {
        TraceFileError::BadInstruction(e)
    }
}

/// Writes traces in the DSMT binary format.
#[derive(Debug)]
pub struct TraceWriter;

impl TraceWriter {
    /// Serialises `instructions` (with a trace `name`) into `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn write<W: Write>(
        writer: &mut W,
        name: &str,
        instructions: &[Instruction],
    ) -> Result<(), TraceFileError> {
        let mut buf = Vec::with_capacity(instructions.len() * 16 + 64);
        buf.put_slice(TRACE_MAGIC);
        buf.put_u64_le(instructions.len() as u64);
        let name_bytes = name.as_bytes();
        buf.put_u16_le(name_bytes.len().min(u16::MAX as usize) as u16);
        buf.put_slice(&name_bytes[..name_bytes.len().min(u16::MAX as usize)]);
        for inst in instructions {
            encode_instruction(inst, &mut buf);
        }
        writer.write_all(&buf)?;
        Ok(())
    }

    /// Serialises the next `n` instructions of `source` into `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn write_from_source<W: Write, S: TraceSource + ?Sized>(
        writer: &mut W,
        source: &mut S,
        n: u64,
    ) -> Result<u64, TraceFileError> {
        let mut insts = Vec::new();
        for _ in 0..n {
            match source.next_instruction() {
                Some(i) => insts.push(i),
                None => break,
            }
        }
        let name = source.name().to_string();
        TraceWriter::write(writer, &name, &insts)?;
        Ok(insts.len() as u64)
    }
}

/// Reads traces in the DSMT binary format.
#[derive(Debug)]
pub struct TraceReader;

impl TraceReader {
    /// Reads an entire trace file into a replayable [`VecTrace`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] on I/O failure, bad magic, truncation or
    /// malformed records.
    pub fn read<R: Read>(reader: &mut R) -> Result<VecTrace, TraceFileError> {
        let mut data = Vec::new();
        reader.read_to_end(&mut data)?;
        let mut buf = data.as_slice();
        if buf.remaining() < TRACE_MAGIC.len() + 8 + 2 {
            return Err(TraceFileError::Truncated);
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != TRACE_MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let count = buf.get_u64_le();
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len {
            return Err(TraceFileError::Truncated);
        }
        let name_bytes = buf.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| TraceFileError::BadName)?
            .to_string();
        let mut instructions = Vec::with_capacity(count.min(1_000_000) as usize);
        for _ in 0..count {
            if !buf.has_remaining() {
                return Err(TraceFileError::Truncated);
            }
            instructions.push(decode_instruction(&mut buf)?);
        }
        Ok(VecTrace::new(name, instructions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkProfile, SyntheticTrace};

    fn sample_trace(n: u64) -> Vec<Instruction> {
        let p = BenchmarkProfile::baseline("roundtrip");
        let mut t = SyntheticTrace::new(&p, 99);
        (0..n).map(|_| t.next_instruction().unwrap()).collect()
    }

    #[test]
    fn roundtrip_through_memory_buffer() {
        let insts = sample_trace(500);
        let mut buf = Vec::new();
        TraceWriter::write(&mut buf, "roundtrip", &insts).unwrap();
        let mut replay = TraceReader::read(&mut buf.as_slice()).unwrap();
        assert_eq!(replay.name(), "roundtrip");
        assert_eq!(replay.len(), 500);
        for want in &insts {
            assert_eq!(replay.next_instruction().as_ref(), Some(want));
        }
        assert!(replay.next_instruction().is_none());
    }

    #[test]
    fn write_from_source_counts() {
        let p = BenchmarkProfile::baseline("src");
        let mut t = SyntheticTrace::new(&p, 1);
        let mut buf = Vec::new();
        let written = TraceWriter::write_from_source(&mut buf, &mut t, 123).unwrap();
        assert_eq!(written, 123);
        let replay = TraceReader::read(&mut buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 123);
        assert_eq!(replay.name(), "src");
    }

    #[test]
    fn bad_magic_detected() {
        let insts = sample_trace(3);
        let mut buf = Vec::new();
        TraceWriter::write(&mut buf, "x", &insts).unwrap();
        buf[0] = b'X';
        match TraceReader::read(&mut buf.as_slice()) {
            Err(TraceFileError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let insts = sample_trace(50);
        let mut buf = Vec::new();
        TraceWriter::write(&mut buf, "x", &insts).unwrap();
        let cut = &buf[..buf.len() / 2];
        match TraceReader::read(&mut &cut[..]) {
            Err(TraceFileError::Truncated) | Err(TraceFileError::BadInstruction(_)) => {}
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_is_truncated() {
        match TraceReader::read(&mut &[][..]) {
            Err(TraceFileError::Truncated) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        TraceWriter::write(&mut buf, "empty", &[]).unwrap();
        let replay = TraceReader::read(&mut buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 0);
        assert!(replay.is_empty());
    }

    #[test]
    fn error_display_messages() {
        let e = TraceFileError::BadMagic;
        assert!(e.to_string().contains("magic"));
        let e = TraceFileError::Io(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }
}
