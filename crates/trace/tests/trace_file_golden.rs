//! Golden fixture pinning the `DSMTTRC2` trace-file byte layout.
//!
//! The writer/reader unit tests in `src/file.rs` cover round-trips,
//! truncation and corruption; this fixture is what actually fails CI when
//! the on-disk layout drifts (header, varint packing, delta encoding or
//! the FNV trailer).
//!
//! Regenerate intentionally with
//! `DSMT_REGEN_GOLDEN=1 cargo test -p dsmt-trace --test trace_file_golden`.

use std::path::PathBuf;

use dsmt_isa::{ArchReg, BranchInfo, Instruction, OpClass};
use dsmt_trace::{TraceReader, TraceSource, TraceWriter};

/// A small sequence exercising every record feature: forward and backward
/// pc deltas, every optional field, fp and int registers, taken and
/// not-taken branches, and large address deltas.
fn fixture_instructions() -> Vec<Instruction> {
    vec![
        Instruction::new(0x1000, OpClass::IntAlu)
            .with_dest(ArchReg::int(1))
            .with_src1(ArchReg::int(2))
            .with_src2(ArchReg::int(31)),
        Instruction::new(0x1004, OpClass::LoadFp)
            .with_dest(ArchReg::fp(2))
            .with_src1(ArchReg::int(1))
            .with_mem(0x4000_0000, 8),
        Instruction::new(0x1008, OpClass::StoreInt)
            .with_src1(ArchReg::int(5))
            .with_src2(ArchReg::int(1))
            .with_mem(0x8, 8),
        Instruction::new(0x100c, OpClass::CondBranch)
            .with_src1(ArchReg::int(1))
            .with_branch(BranchInfo::taken(0x1000)),
        Instruction::new(0x1000, OpClass::FpMul)
            .with_dest(ArchReg::fp(0))
            .with_src1(ArchReg::fp(1))
            .with_src2(ArchReg::fp(2)),
        Instruction::new(0x1004, OpClass::UncondBranch).with_branch(BranchInfo::not_taken()),
        Instruction::new(0x1008, OpClass::Nop),
    ]
}

#[test]
fn golden_fixture_pins_the_on_disk_layout() {
    let mut encoded = Vec::new();
    TraceWriter::write(&mut encoded, "golden", &fixture_instructions()).expect("encodes");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fixture.trc");
    if std::env::var("DSMT_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &encoded).expect("write golden");
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with DSMT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        encoded, golden,
        "DSMTTRC2 layout drifted; if intentional, bump the magic and \
         regenerate with DSMT_REGEN_GOLDEN=1"
    );

    let mut replay = TraceReader::read(&mut golden.as_slice()).expect("golden decodes");
    assert_eq!(replay.name(), "golden");
    let mut decoded = Vec::new();
    while let Some(inst) = replay.next_instruction() {
        decoded.push(inst);
    }
    assert_eq!(decoded, fixture_instructions());
}

#[test]
fn golden_header_bytes_are_as_documented() {
    let mut encoded = Vec::new();
    TraceWriter::write(&mut encoded, "golden", &fixture_instructions()).expect("encodes");
    assert_eq!(&encoded[..8], b"DSMTTRC2");
    assert_eq!(encoded[8], 6, "name length uvarint");
    assert_eq!(&encoded[9..15], b"golden");
    assert_eq!(encoded[15], 7, "record count uvarint");
}
