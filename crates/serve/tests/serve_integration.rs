//! End-to-end tests over real sockets: a daemon on a loopback port, the
//! bundled client, in-process workers speaking the store-backed shard
//! protocol against the daemon's directory.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use dsmt_core::SimConfig;
use dsmt_serve::http::read_response;
use dsmt_serve::{json_body, HttpClient, Limits, Server, ServerConfig, SweepService};
use dsmt_shard::{DsrFile, ShardManifest, Transport};
use dsmt_sweep::{Axis, SweepEngine, SweepGrid, WorkloadSpec};
use serde::Value;

fn grid(name: &str, budget: u64) -> SweepGrid {
    SweepGrid::new(name, SimConfig::paper_multithreaded(1))
        .with_workload(WorkloadSpec::spec_mix(1_000))
        .with_axis(Axis::l2_latencies(&[1, 16]))
        .with_budget(budget)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsmt-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts a daemon on an ephemeral port over a fresh store. Returns the
/// address, the shutdown handle, the server thread, and the store dir.
fn start_daemon(
    tag: &str,
    config: ServerConfig,
) -> (
    String,
    dsmt_serve::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<dsmt_serve::ServeSummary>>,
    PathBuf,
) {
    let dir = temp_dir(tag);
    let service = SweepService::open(
        &dir,
        Box::new(|name| match name {
            "it-tiny" => Some(grid("it-tiny", 2_000)),
            _ => None,
        }),
    )
    .expect("open service");
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..config
        },
        service,
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread, dir)
}

fn quick_limits() -> Limits {
    Limits {
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        max_header_bytes: 2 * 1024,
        max_body_bytes: 64 * 1024,
    }
}

#[test]
fn submit_work_fetch_over_http_is_byte_identical_to_monolithic() {
    let (addr, handle, thread, dir) = start_daemon("e2e", ServerConfig::default());
    let client = HttpClient::new(&addr);

    // Health before anything else.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    // Submit a builtin grid split in two shards.
    let resp = client
        .post_json("/grids", r#"{"builtin":"it-tiny","shards":2}"#)
        .expect("submit");
    assert_eq!(resp.status, 201);
    let submitted = json_body(&resp).expect("submit body");
    let hash = submitted
        .field("grid_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(submitted.field("cells").unwrap().as_u64().unwrap(), 2);

    // Status: everything missing; the record endpoint says incomplete.
    let status = json_body(&client.get(&format!("/grids/{hash}/status")).unwrap()).unwrap();
    assert_eq!(status.field("missing").unwrap().as_u64().unwrap(), 2);
    let premature = client.get(&format!("/grids/{hash}/record")).unwrap();
    assert_eq!(premature.status, 409);
    assert!(json_body(&premature)
        .unwrap_err()
        .contains("grid_incomplete"));

    // A worker picks the plan up from the daemon's directory — exactly
    // what `dsmt shard run <plan> --missing --store <dir>` does.
    let manifest =
        ShardManifest::load(dir.join("plans").join(format!("{hash}.plan.json"))).unwrap();
    // Cache on the daemon's store so per-cell records land beside the
    // shard outputs (that is what /cells/{key} serves).
    let engine = SweepEngine::new(1).with_cache_dir(&dir);
    let mut transport = Transport::store(&dir).expect("worker transport");
    dsmt_shard::recover(&manifest, &mut transport, &engine, &Default::default()).unwrap();

    // Status over HTTP now reports complete...
    let status = json_body(&client.get(&format!("/grids/{hash}/status")).unwrap()).unwrap();
    assert_eq!(status.field("complete").unwrap(), &Value::Bool(true));

    // ...and the fetched record is byte-identical to a monolithic run.
    let fetched = client.get(&format!("/grids/{hash}/record")).unwrap();
    assert_eq!(fetched.status, 200);
    let etag = fetched.header("etag").expect("etag header").to_string();
    let monolithic = {
        let report = engine.run(&manifest.grid);
        DsrFile::from_report(&manifest.grid, &report, 0, 1).encode()
    };
    assert_eq!(fetched.body, monolithic);

    // Conditional refetch with the ETag: 304, empty body, same tag.
    let not_modified = client
        .get_with(
            &format!("/grids/{hash}/record"),
            &[("If-None-Match", &etag)],
        )
        .unwrap();
    assert_eq!(not_modified.status, 304);
    assert!(not_modified.body.is_empty());
    assert_eq!(not_modified.header("etag"), Some(etag.as_str()));

    // Individual cells are readable by cache key.
    let cell_key = format!("{:016x}", manifest.grid.cells()[0].scenario.cache_key());
    let cell = client.get(&format!("/cells/{cell_key}")).unwrap();
    assert_eq!(cell.status, 200);
    assert!(json_body(&cell).is_ok());

    // Metrics surface the http counters.
    let metrics = client.get("/metricsz").unwrap();
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(text.contains("http.requests"), "{text}");
    assert!(text.contains("serve.queue_depth"), "{text}");

    handle.shutdown();
    let summary = thread.join().unwrap().expect("server run");
    assert!(!summary.forced_abort);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_submitting_overlapping_grids_dedup_in_the_store() {
    let (addr, handle, thread, dir) = start_daemon("concurrent", ServerConfig::default());

    // Two distinct grids sharing the L2=16 cell (overlap), plus repeat
    // submissions of each from several clients at once.
    let grid_a = grid("overlap-a", 2_000); // axes [1, 16]
    let grid_b = SweepGrid::new("overlap-b", SimConfig::paper_multithreaded(1))
        .with_workload(WorkloadSpec::spec_mix(1_000))
        .with_axis(Axis::l2_latencies(&[16, 64]))
        .with_budget(2_000);

    let submit = |g: &SweepGrid| {
        let body = format!(
            "{{\"grid\":{},\"shards\":2,\"strategy\":\"strided\"}}",
            serde::to_string(g)
        );
        move |addr: String| {
            let client = HttpClient::new(addr);
            let resp = client.post_json("/grids", body.clone()).expect("submit");
            assert_eq!(resp.status, 201);
            json_body(&resp)
                .expect("body")
                .field("grid_hash")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        }
    };
    let submit_a = submit(&grid_a);
    let submit_b = submit(&grid_b);
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            let a = submit_a.clone();
            let b = submit_b.clone();
            std::thread::spawn(move || if i % 2 == 0 { a(addr) } else { b(addr) })
        })
        .collect();
    let hashes: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let mut unique = hashes.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(
        unique.len(),
        2,
        "8 submissions dedup to 2 plans: {hashes:?}"
    );

    // One worker pass per plan; the scenario cache shares the directory,
    // so the overlapping cell simulates once and is reused (the engine
    // with cache on the same store dedups by cache key).
    let engine = SweepEngine::new(1).with_cache_dir(&dir);
    for hash in &unique {
        let manifest =
            ShardManifest::load(dir.join("plans").join(format!("{hash}.plan.json"))).unwrap();
        let mut transport = Transport::store(&dir).expect("transport");
        dsmt_shard::recover(&manifest, &mut transport, &engine, &Default::default()).unwrap();
    }

    // Every client's fetch is byte-identical to its monolithic run.
    let reference = SweepEngine::new(1).without_cache();
    for hash in &unique {
        let manifest =
            ShardManifest::load(dir.join("plans").join(format!("{hash}.plan.json"))).unwrap();
        let expected = {
            let report = reference.run(&manifest.grid);
            DsrFile::from_report(&manifest.grid, &report, 0, 1).encode()
        };
        let fetchers: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let hash = hash.clone();
                std::thread::spawn(move || {
                    let client = HttpClient::new(addr);
                    let resp = client.get(&format!("/grids/{hash}/record")).unwrap();
                    assert_eq!(resp.status, 200);
                    resp.body
                })
            })
            .collect();
        for fetcher in fetchers {
            assert_eq!(fetcher.join().unwrap(), expected, "grid {hash}");
        }
    }

    handle.shutdown();
    let summary = thread.join().unwrap().expect("server run");
    assert!(!summary.forced_abort);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_oversized_and_slow_requests_get_structured_errors() {
    let (addr, handle, thread, dir) = start_daemon(
        "abuse",
        ServerConfig {
            limits: quick_limits(),
            drain_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    );

    let raw = |bytes: &[u8]| {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        std::io::Write::write_all(&mut stream, bytes).expect("send");
        read_response(&mut stream).expect("structured response")
    };

    // Garbage request line → 400 with a stable code.
    let resp = raw(b"ponies and rainbows\r\n\r\n");
    assert_eq!(resp.status, 400);
    assert!(json_body(&resp).unwrap_err().starts_with("bad_request"));

    // Unknown route and wrong method.
    let client = HttpClient::new(&addr);
    let resp = client.get("/no/such/route").unwrap();
    assert_eq!(resp.status, 404);
    assert!(json_body(&resp).unwrap_err().starts_with("not_found"));
    let resp = client.post_json("/healthz", "{}").unwrap();
    assert_eq!(resp.status, 405);
    assert!(json_body(&resp)
        .unwrap_err()
        .starts_with("method_not_allowed"));

    // Oversized header block → 431.
    let mut big = b"GET / HTTP/1.1\r\n".to_vec();
    big.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "x".repeat(4096)).as_bytes());
    let resp = raw(&big);
    assert_eq!(resp.status, 431);

    // Oversized declared body → 413 without reading the body.
    let resp = raw(b"POST /grids HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
    assert_eq!(resp.status, 413);
    assert!(json_body(&resp)
        .unwrap_err()
        .starts_with("payload_too_large"));

    // Chunked transfer → 501.
    let resp = raw(b"POST /grids HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n");
    assert_eq!(resp.status, 501);

    // A slow-loris half request: the server answers 408 within the read
    // timeout instead of hanging.
    let started = std::time::Instant::now();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    std::io::Write::write_all(&mut stream, b"GET /healthz HTT").expect("half request");
    let resp = read_response(&mut stream).expect("timeout response");
    assert_eq!(resp.status, 408);
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "timed out in {:?}",
        started.elapsed()
    );

    // Bad JSON body on a real route.
    let resp = client.post_json("/grids", "{not json").unwrap();
    assert_eq!(resp.status, 400);
    assert!(json_body(&resp).unwrap_err().starts_with("invalid_json"));

    handle.shutdown();
    let summary = thread.join().unwrap().expect("server run");
    assert!(!summary.forced_abort);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_in_flight_requests_and_releases_the_serve_claim() {
    let (addr, handle, thread, dir) = start_daemon(
        "drain",
        ServerConfig {
            workers: 2,
            drain_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    );

    // The daemon owns the store while running: a second daemon on the
    // same directory is refused.
    let second = SweepService::open(&dir, Box::new(|_| None)).expect("open service");
    let refused = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        },
        second,
    )
    .expect("bind second")
    .run();
    assert!(refused.is_err(), "second daemon must be refused");
    assert!(refused.unwrap_err().to_string().contains("another daemon"));

    // Clients hammer the daemon while shutdown lands: every request that
    // got a response got a *complete* one, and the served count matches.
    let stop_clients = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let stop_clients = std::sync::Arc::clone(&stop_clients);
            std::thread::spawn(move || {
                let client = HttpClient::new(addr).with_timeout(Duration::from_secs(5));
                let mut completed = 0u64;
                while !stop_clients.load(std::sync::atomic::Ordering::SeqCst) {
                    match client.get("/healthz") {
                        Ok(resp) => {
                            assert_eq!(resp.status, 200);
                            assert!(json_body(&resp).is_ok(), "complete body");
                            completed += 1;
                        }
                        // Connection refused/reset after shutdown is fine;
                        // a torn response would have failed json_body above.
                        Err(_) => break,
                    }
                }
                completed
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    handle.shutdown();
    let summary = thread.join().unwrap().expect("server run");
    stop_clients.store(true, std::sync::atomic::Ordering::SeqCst);
    let completed: u64 = clients.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(!summary.forced_abort, "drain should finish inside timeout");
    assert!(completed > 0, "clients made progress before shutdown");
    assert!(
        summary.requests >= completed,
        "every completed client response was counted: {} < {completed}",
        summary.requests
    );

    // The serve claim is gone: a new daemon can bind the store now.
    assert!(!dir.join("locks").join("serve.lock").exists());
    let third = SweepService::open(&dir, Box::new(|_| None)).expect("reopen service");
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        },
        third,
    )
    .expect("bind third");
    let h = server.handle();
    let t = std::thread::spawn(move || server.run());
    h.shutdown();
    assert!(t.join().unwrap().is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
