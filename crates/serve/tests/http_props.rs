//! Property tests for the HTTP layer: the parser is total (arbitrary
//! bytes produce errors, never panics), limits hold, and the canonical
//! encoding round-trips.

use dsmt_serve::http::{Conn, Limits, ParseError, Request};
use proptest::prelude::*;

fn parse(bytes: &[u8], limits: &Limits) -> Result<Request, ParseError> {
    Conn::new(std::io::Cursor::new(bytes.to_vec())).read_request(limits)
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_the_parser(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = parse(&bytes, &Limits::default());
    }

    #[test]
    fn arbitrary_bytes_behind_a_valid_prefix_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Half-plausible traffic: a correct request line, then noise.
        let mut raw = b"POST /grids HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(&bytes);
        let _ = parse(&raw, &Limits::default());
    }

    #[test]
    fn header_limit_is_enforced(pad in 1usize..4096) {
        let limits = Limits {
            max_header_bytes: 256,
            ..Limits::default()
        };
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "p".repeat(pad)).as_bytes());
        let result = parse(&raw, &limits);
        if raw.len() > limits.max_header_bytes {
            prop_assert_eq!(result, Err(ParseError::HeaderTooLarge));
        } else {
            prop_assert!(result.is_ok());
        }
    }

    #[test]
    fn body_limit_is_enforced_from_the_declared_length(declared in 0u64..1_000_000) {
        let limits = Limits {
            max_body_bytes: 1024,
            ..Limits::default()
        };
        let raw = format!("POST /grids HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let result = parse(raw.as_bytes(), &limits);
        if declared > limits.max_body_bytes as u64 {
            prop_assert_eq!(result, Err(ParseError::BodyTooLarge { declared }));
        } else {
            // Under the limit the parser waits for the body; the cursor
            // ends first, which reads as a truncated request — never as
            // an accepted oversized one.
            if declared == 0 {
                prop_assert!(result.is_ok());
            } else {
                prop_assert_eq!(result, Err(ParseError::Truncated));
            }
        }
    }

    #[test]
    fn canonical_requests_round_trip(
        is_post in any::<bool>(),
        path_seed in prop::collection::vec(any::<u8>(), 0..24),
        header_seeds in prop::collection::vec(any::<u64>(), 0..6),
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Build a request from clean alphabets (the wire grammar's token
        // sets), encode it, and require the parser to reproduce it.
        let path: String = std::iter::once('/')
            .chain(path_seed.iter().map(|&b| {
                let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789-._~/";
                alphabet[(b as usize) % alphabet.len()] as char
            }))
            .collect();
        let headers: Vec<(String, String)> = header_seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| (format!("X-Key-{i}"), format!("value-{seed:x}")))
            .collect();
        let mut request = Request::get(path);
        if is_post {
            request.method = "POST".to_string();
            request.body = body;
        }
        request.headers = headers;
        let wire = request.encode();
        let parsed = parse(&wire, &Limits::default()).expect("canonical request parses");
        prop_assert_eq!(&parsed.method, &request.method);
        prop_assert_eq!(&parsed.path, &request.path);
        prop_assert_eq!(&parsed.query, &request.query);
        prop_assert_eq!(&parsed.body, &request.body);
        // encode() appends Content-Length for non-empty bodies; the
        // parsed header list is the original plus (maybe) that one.
        let without_cl: Vec<(String, String)> = parsed
            .headers
            .iter()
            .filter(|(k, _)| !k.eq_ignore_ascii_case("content-length"))
            .cloned()
            .collect();
        prop_assert_eq!(without_cl, request.headers);
    }
}
