//! The structured JSON error model: every failure the service reports has
//! an HTTP status, a **stable** machine-readable code, and a human
//! message, rendered as
//!
//! ```json
//! { "error": { "code": "unknown_grid", "status": 404, "message": "..." } }
//! ```
//!
//! Codes are part of the protocol (scripts match on them; messages are
//! free to change): `bad_request`, `invalid_json`, `invalid_grid`,
//! `unknown_builtin`, `unknown_grid`, `unknown_cell`, `invalid_key`,
//! `not_found`, `method_not_allowed`, `grid_incomplete`, `timeout`,
//! `payload_too_large`, `header_too_large`, `unsupported_transfer_encoding`,
//! `http_version_not_supported`, `truncated_request`, `busy`, `internal`.

use crate::http::Response;
use serde::Value;

/// One service-level error: status + stable code + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// A new error from its parts.
    #[must_use]
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code,
            message: message.into(),
        }
    }

    /// 400 `bad_request`: a structurally valid request the service cannot
    /// make sense of.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, "bad_request", message)
    }

    /// 400 `invalid_json`: the body is not parseable JSON.
    #[must_use]
    pub fn invalid_json(message: impl Into<String>) -> Self {
        Self::new(400, "invalid_json", message)
    }

    /// 422 `invalid_grid`: parseable body, but not a usable sweep grid or
    /// shard plan.
    #[must_use]
    pub fn invalid_grid(message: impl Into<String>) -> Self {
        Self::new(422, "invalid_grid", message)
    }

    /// 404 `unknown_builtin`: no built-in grid under that name.
    #[must_use]
    pub fn unknown_builtin(name: &str) -> Self {
        Self::new(
            404,
            "unknown_builtin",
            format!("no built-in grid named {name:?}"),
        )
    }

    /// 404 `unknown_grid`: no submitted plan under that hash.
    #[must_use]
    pub fn unknown_grid(hash: &str) -> Self {
        Self::new(
            404,
            "unknown_grid",
            format!("no submitted grid with hash {hash}; POST /grids first"),
        )
    }

    /// 404 `unknown_cell`: no cached record under that key.
    #[must_use]
    pub fn unknown_cell(key: &str) -> Self {
        Self::new(
            404,
            "unknown_cell",
            format!("no record stored under key {key}"),
        )
    }

    /// 400 `invalid_key`: a grid hash or cell key that is not 1–16 hex
    /// digits.
    #[must_use]
    pub fn invalid_key(text: &str) -> Self {
        Self::new(
            400,
            "invalid_key",
            format!("{text:?} is not a hex key (1-16 hex digits)"),
        )
    }

    /// 404 `not_found`: no route matches the path.
    #[must_use]
    pub fn not_found(path: &str) -> Self {
        Self::new(404, "not_found", format!("no route for {path}"))
    }

    /// 405 `method_not_allowed`, with the allowed methods named.
    #[must_use]
    pub fn method_not_allowed(method: &str, allow: &str) -> Self {
        Self::new(
            405,
            "method_not_allowed",
            format!("method {method} is not allowed here (allow: {allow})"),
        )
    }

    /// 409 `grid_incomplete`: a merged record was requested before every
    /// shard published its output.
    #[must_use]
    pub fn grid_incomplete(message: impl Into<String>) -> Self {
        Self::new(409, "grid_incomplete", message)
    }

    /// 503 `busy`: the accept queue is full.
    #[must_use]
    pub fn busy() -> Self {
        Self::new(503, "busy", "connection queue is full; retry shortly")
    }

    /// 500 `internal`: an unexpected server-side failure.
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(500, "internal", message)
    }

    /// Renders the error as its JSON response.
    #[must_use]
    pub fn to_response(&self) -> Response {
        let value = Value::Object(vec![(
            "error".to_string(),
            Value::Object(vec![
                ("code".to_string(), Value::Str(self.code.to_string())),
                ("status".to_string(), Value::U64(u64::from(self.status))),
                ("message".to_string(), Value::Str(self.message.clone())),
            ]),
        )]);
        Response::json(self.status, serde::to_string(&value))
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_documented_json_shape() {
        let resp = ApiError::unknown_grid("0123456789abcdef").to_response();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        let v: Value = serde::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = v.field("error").unwrap();
        assert_eq!(err.field("code").unwrap().as_str().unwrap(), "unknown_grid");
        assert_eq!(err.field("status").unwrap().as_u64().unwrap(), 404);
        assert!(err
            .field("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("0123456789abcdef"));
    }
}
