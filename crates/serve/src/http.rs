//! A deliberately small HTTP/1.1 implementation over blocking `std::io`
//! streams: request parsing with hard limits, response serialization, and
//! the client-side response parser.
//!
//! Scope is exactly what the dsmt service protocol needs — `GET`/`POST`
//! with `Content-Length` bodies, keep-alive, and case-insensitive header
//! lookup. Chunked transfer encoding, multipart, and percent-decoding are
//! intentionally out: every path component the service routes on (grid
//! hashes, cell keys) is plain hex, and anything the parser does not
//! understand is rejected with a typed [`ParseError`] that the server maps
//! to a structured 4xx/5xx — never a panic, never an unbounded read.

use std::io::{Read, Write};
use std::time::Duration;

/// Hard resource limits enforced while reading one request.
///
/// Defaults (16 KiB of headers, 4 MiB of body, 10 s read/write timeouts)
/// fit the service's traffic — the largest legitimate body is a submitted
/// [`dsmt_sweep::SweepGrid`] in JSON — while bounding what a slow or
/// malicious peer can pin per connection.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers (terminator included).
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
    /// Socket read timeout (applies per `read(2)`, so it bounds how long a
    /// silent peer can hold a worker, not total request time).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a request could not be read. The server maps each variant to a
/// structured error response (or a silent close, for [`ParseError::Closed`]
/// and idle keep-alive timeouts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Clean EOF before the first byte of a request: the peer closed an
    /// idle (keep-alive) connection. Not an error in any meaningful sense.
    Closed,
    /// EOF in the middle of a request.
    Truncated,
    /// The socket read timed out; `mid_request` says whether any bytes of
    /// the current request had already arrived (idle keep-alive waits time
    /// out too, and those close silently).
    TimedOut {
        /// Whether the timeout interrupted a partially-received request.
        mid_request: bool,
    },
    /// Any other I/O failure, carried as text.
    Io(String),
    /// Structurally invalid request line or header.
    Malformed(&'static str),
    /// Request line + headers exceeded [`Limits::max_header_bytes`].
    HeaderTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`].
    BodyTooLarge {
        /// The declared length.
        declared: u64,
    },
    /// A `Transfer-Encoding` header was present (chunked bodies are out of
    /// scope; clients must send `Content-Length`).
    UnsupportedTransferEncoding,
    /// An HTTP version other than 1.0 or 1.1.
    UnsupportedVersion,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Closed => write!(f, "connection closed"),
            ParseError::Truncated => write!(f, "connection closed mid-request"),
            ParseError::TimedOut { .. } => write!(f, "read timed out"),
            ParseError::Io(why) => write!(f, "i/o error: {why}"),
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
            ParseError::HeaderTooLarge => write!(f, "request head exceeds the header limit"),
            ParseError::BodyTooLarge { declared } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the body limit"
                )
            }
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported; send content-length")
            }
            ParseError::UnsupportedVersion => write!(f, "only HTTP/1.0 and HTTP/1.1 are supported"),
        }
    }
}

impl std::error::Error for ParseError {}

fn classify_io(e: &std::io::Error, mid_request: bool) -> ParseError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ParseError::TimedOut { mid_request }
        }
        _ => ParseError::Io(e.to_string()),
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target (always starts with `/`).
    pub path: String,
    /// The query string, if any (text after the first `?`, undecoded).
    pub query: Option<String>,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Headers in arrival order, names verbatim.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless a `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// A `GET` request skeleton for the given path (client-side use).
    #[must_use]
    pub fn get(path: impl Into<String>) -> Self {
        Request {
            method: "GET".to_string(),
            path: path.into(),
            query: None,
            version: "HTTP/1.1".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// The first header named `name`, case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer wants the connection kept open after this
    /// exchange: HTTP/1.1 defaults to yes, HTTP/1.0 to no, and an explicit
    /// `Connection:` header overrides either way.
    #[must_use]
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }

    /// Serializes the request to wire bytes. A `Content-Length` header is
    /// appended when the body is non-empty and none was given explicitly;
    /// this is the encoding the bundled client sends and the round-trip
    /// property tests feed back through [`Conn::read_request`].
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(self.method.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.path.as_bytes());
        if let Some(q) = &self.query {
            out.push(b'?');
            out.extend_from_slice(q.as_bytes());
        }
        out.push(b' ');
        out.extend_from_slice(self.version.as_bytes());
        out.extend_from_slice(b"\r\n");
        for (k, v) in &self.headers {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !self.body.is_empty() && self.header("content-length").is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// The standard reason phrase for the status codes this service emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// One response, body owned. `Content-Length` and `Connection` headers are
/// written by [`Response::write_to`]; everything else lives in `headers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `ETag`, ...).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given body text.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into().into_bytes(),
        }
    }

    /// A binary response with an explicit content type.
    #[must_use]
    pub fn bytes(status: u16, content_type: &str, body: Vec<u8>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body,
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The first header named `name`, case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Writes the response (status line, headers, `Content-Length`, the
    /// advisory `Connection` header, body) to `w`.
    ///
    /// # Errors
    ///
    /// Any socket write failure (including a write timeout).
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nServer: dsmt-serve\r\n",
            self.status,
            reason_phrase(self.status)
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// One buffered connection: owns the stream plus any bytes read beyond the
/// current request (so pipelined keep-alive requests are not lost between
/// [`Conn::read_request`] calls).
#[derive(Debug)]
pub struct Conn<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps a stream.
    pub fn new(stream: S) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Mutable access to the underlying stream, for writing responses.
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    fn fill(&mut self, mid_request: bool) -> Result<usize, ParseError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                if mid_request {
                    Err(ParseError::Truncated)
                } else {
                    Err(ParseError::Closed)
                }
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(classify_io(&e, mid_request)),
        }
    }

    /// Reads and parses one request, enforcing `limits`.
    ///
    /// # Errors
    ///
    /// A [`ParseError`]; see each variant for the condition it names. The
    /// parser itself is total — arbitrary bytes produce an error value,
    /// never a panic (property-tested).
    pub fn read_request(&mut self, limits: &Limits) -> Result<Request, ParseError> {
        // Accumulate until the head terminator, bounding the head size.
        let head_end = loop {
            if let Some(i) = find_terminator(&self.buf) {
                break i;
            }
            if self.buf.len() > limits.max_header_bytes {
                return Err(ParseError::HeaderTooLarge);
            }
            self.fill(!self.buf.is_empty())?;
        };
        if head_end > limits.max_header_bytes {
            return Err(ParseError::HeaderTooLarge);
        }
        let head = self.buf[..head_end].to_vec();
        let consumed = head_end + 4;
        self.buf.drain(..consumed);
        let mut request = parse_head(&head)?;

        if request.header("transfer-encoding").is_some() {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        let content_length = match request.header("content-length") {
            None => 0,
            Some(text) => text
                .trim()
                .parse::<u64>()
                .map_err(|_| ParseError::Malformed("unparseable content-length"))?,
        };
        if content_length > limits.max_body_bytes as u64 {
            return Err(ParseError::BodyTooLarge {
                declared: content_length,
            });
        }
        let content_length = content_length as usize;
        while self.buf.len() < content_length {
            self.fill(true)?;
        }
        request.body = self.buf.drain(..content_length).collect();
        Ok(request)
    }
}

/// Finds the `\r\n\r\n` head terminator, returning the head length.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the request line + header block (no terminator, no body).
fn parse_head(head: &[u8]) -> Result<Request, ParseError> {
    let text = std::str::from_utf8(head).map_err(|_| ParseError::Malformed("head is not utf-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(
            "request line is not METHOD SP TARGET SP VERSION",
        ));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("method is not an uppercase token"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::UnsupportedVersion);
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed("target must be an absolute path"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            // A lone trailing empty line would mean `\r\n\r\n` inside the
            // head, which find_terminator precludes; reject defensively.
            return Err(ParseError::Malformed("empty header line"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("header line without a colon"));
        };
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(ParseError::Malformed("header name is not a token"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        version: version.to_string(),
        headers,
        body: Vec::new(),
    })
}

/// Reads and parses one response from `stream` (client side). The body is
/// sized by `Content-Length` when present, otherwise read to EOF.
///
/// # Errors
///
/// A [`ParseError`] describing the malformation or I/O failure.
pub fn read_response(stream: &mut impl Read) -> Result<Response, ParseError> {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = find_terminator(&buf) {
            break i;
        }
        if buf.len() > 64 * 1024 {
            return Err(ParseError::HeaderTooLarge);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    ParseError::Closed
                } else {
                    ParseError::Truncated
                })
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(classify_io(&e, !buf.is_empty())),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::Malformed("head is not utf-8"))?
        .to_string();
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(code), _) = (parts.next(), parts.next(), parts.next()) else {
        return Err(ParseError::Malformed(
            "status line is not VERSION SP CODE SP REASON",
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::UnsupportedVersion);
    }
    let status: u16 = code
        .parse()
        .map_err(|_| ParseError::Malformed("unparseable status code"))?;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("header line without a colon"));
        };
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok());
    match content_length {
        Some(want) => {
            while body.len() < want {
                let mut chunk = [0u8; 4096];
                match stream.read(&mut chunk) {
                    Ok(0) => return Err(ParseError::Truncated),
                    Ok(n) => body.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(classify_io(&e, true)),
                }
            }
            body.truncate(want);
        }
        None => {
            let mut rest = Vec::new();
            stream
                .read_to_end(&mut rest)
                .map_err(|e| classify_io(&e, true))?;
            body.extend_from_slice(&rest);
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_bytes(bytes: &[u8]) -> Result<Request, ParseError> {
        let mut conn = Conn::new(std::io::Cursor::new(bytes.to_vec()));
        conn.read_request(&Limits::default())
    }

    #[test]
    fn parses_a_minimal_get() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, None);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.wants_keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse_bytes(
            b"POST /grids?dry=1 HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 4\r\n\r\n{\"\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/grids");
        assert_eq!(req.query.as_deref(), Some("dry=1"));
        assert_eq!(req.body, b"{\"\":".to_vec());
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse_bytes(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse_bytes(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive());
        let req = parse_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
    }

    #[test]
    fn rejects_malformed_heads() {
        for bad in [
            &b"garbage\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno colon\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
        ] {
            assert!(
                parse_bytes(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn enforces_header_limit() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "y".repeat(20_000)).as_bytes());
        assert_eq!(parse_bytes(&raw), Err(ParseError::HeaderTooLarge));
    }

    #[test]
    fn enforces_body_limit_without_reading_the_body() {
        let raw = b"POST /grids HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(
            parse_bytes(raw),
            Err(ParseError::BodyTooLarge {
                declared: 99_999_999
            })
        );
    }

    #[test]
    fn rejects_transfer_encoding() {
        let raw = b"POST /grids HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(
            parse_bytes(raw),
            Err(ParseError::UnsupportedTransferEncoding)
        );
    }

    #[test]
    fn clean_eof_is_closed_and_partial_eof_is_truncated() {
        assert_eq!(parse_bytes(b""), Err(ParseError::Closed));
        assert_eq!(parse_bytes(b"GET / HT"), Err(ParseError::Truncated));
        assert_eq!(
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ParseError::Truncated)
        );
    }

    #[test]
    fn keep_alive_requests_parse_back_to_back() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut conn = Conn::new(std::io::Cursor::new(raw.to_vec()));
        let limits = Limits::default();
        let a = conn.read_request(&limits).unwrap();
        let b = conn.read_request(&limits).unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(a.wants_keep_alive() && !b.wants_keep_alive());
        assert_eq!(conn.read_request(&limits), Err(ParseError::Closed));
    }

    #[test]
    fn response_round_trips_through_writer_and_reader() {
        let resp = Response::json(200, "{\"ok\":true}").with_header("ETag", "\"abc\"");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let back = read_response(&mut std::io::Cursor::new(wire)).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.header("etag"), Some("\"abc\""));
        assert_eq!(back.header("connection"), Some("keep-alive"));
        assert_eq!(back.body, resp.body);
    }
}
