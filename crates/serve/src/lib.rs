//! dsmt-serve: sweep-as-a-service over a hand-rolled `std::net` HTTP
//! stack.
//!
//! The store/shard substrate already coordinates fleets through one
//! directory — content-addressed checksummed segments, `O_EXCL` lockfile
//! claims with heartbeats, deterministic shard plans. This crate puts a
//! long-running daemon in front of that directory so submissions, status
//! polls and record reads become network calls:
//!
//! | Route | What it does |
//! |---|---|
//! | `POST /grids` | Plan a submitted grid (JSON or built-in name) |
//! | `GET /grids` | List submitted plans |
//! | `GET /grids/{hash}/status` | Done/claimed/missing per shard |
//! | `GET /grids/{hash}/record` | Merged `.dsr` bytes, ETag + 304 |
//! | `GET /cells/{key}` | One cached record as JSON |
//! | `GET /healthz` | Liveness |
//! | `GET /metricsz` | Obs registry snapshot |
//!
//! The stack is zero-dependency by necessity (the build environment has
//! no crates.io access) and by design (one static binary deploys the
//! daemon): [`http`] implements exactly the HTTP/1.1 subset the protocol
//! needs over blocking sockets, [`Server`] runs a bounded thread pool
//! with read/write timeouts and keep-alive, and every failure is a
//! structured JSON error with a stable code ([`ApiError`]). Workers need
//! no client at all — a submission writes an ordinary shard plan into the
//! daemon's store, and `dsmt shard run <plan> --missing --store <dir>`
//! picks it up through the existing protocol.

#![deny(missing_docs)]

pub mod client;
pub mod error;
pub mod http;
pub mod server;
pub mod service;

pub use client::{json_body, HttpClient};
pub use error::ApiError;
pub use http::{Conn, Limits, ParseError, Request, Response};
#[cfg(unix)]
pub use server::install_signal_handlers;
pub use server::{signal_shutdown_requested, ServeSummary, Server, ServerConfig, ShutdownHandle};
pub use service::{CellFetch, GridResolver, RecordFetch, SweepService};
