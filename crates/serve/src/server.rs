//! The daemon: a bounded thread-pool HTTP server over
//! [`std::net::TcpListener`], the route table, and graceful shutdown.
//!
//! Shape: the accept loop (caller's thread) pushes accepted connections
//! onto a bounded queue; `workers` threads pop connections and speak
//! keep-alive HTTP over them, with per-socket read/write timeouts. When
//! the queue is full the accept loop answers `503 busy` inline and closes
//! — the pool is bounded in both threads and memory. Shutdown (via
//! [`ShutdownHandle::shutdown`], `SIGTERM` or `SIGINT` after
//! [`install_signal_handlers`]) stops accepting, drains queued and
//! in-flight connections up to [`ServerConfig::drain_timeout`], warns
//! (`serve.forced_abort`) if it has to abandon stragglers, and releases
//! the daemon's `serve` claim on the store either way.
//!
//! While running, the daemon holds a heartbeated `serve` lockfile claim in
//! the store's lock directory so two daemons cannot own one directory.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::Value;

use crate::error::ApiError;
use crate::http::{Conn, Limits, ParseError, Request, Response};
use crate::service::SweepService;

/// How the daemon listens, pools and limits. `Default` is the
/// documented production shape; tests shrink the timeouts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7421` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before new
    /// arrivals are answered `503 busy`.
    pub backlog: usize,
    /// Per-request parsing limits and socket timeouts.
    pub limits: Limits,
    /// How long shutdown waits for queued + in-flight work to finish
    /// before abandoning it with a warning.
    pub drain_timeout: Duration,
    /// Keep-alive requests served per connection before it is closed.
    pub max_requests_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7421".to_string(),
            workers: 4,
            backlog: 64,
            limits: Limits::default(),
            drain_timeout: Duration::from_secs(15),
            max_requests_per_conn: 256,
        }
    }
}

/// What a server run did, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (responses written, error responses included).
    pub requests: u64,
    /// Connections refused with `503 busy` because the queue was full.
    pub rejected: u64,
    /// Whether shutdown abandoned in-flight work at the drain deadline.
    pub forced_abort: bool,
}

/// Requests a running server stop accepting and drain. Cheap to clone;
/// safe to trigger from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Asks the server to shut down (idempotent).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by this handle or a signal).
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal_shutdown_requested()
    }
}

/// Set by the process signal handler; checked alongside each server's own
/// stop flag so one `SIGTERM` stops every server in the process.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal (`SIGTERM`/`SIGINT`) has been delivered.
#[must_use]
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// Installs `SIGTERM` and `SIGINT` handlers that request graceful
/// shutdown (visible via [`signal_shutdown_requested`], observed by every
/// running [`Server`]). Uses `signal(2)` from the C runtime std already
/// links; the handler only stores to an atomic, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_shutdown_signal(_signum: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: registering an async-signal-safe handler (a single atomic
    // store) for signals whose default action would kill us anyway.
    unsafe {
        signal(SIGTERM, on_shutdown_signal);
        signal(SIGINT, on_shutdown_signal);
    }
}

/// State shared between the accept loop and the worker threads.
struct Shared {
    service: Arc<SweepService>,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: Arc<AtomicBool>,
    active: AtomicUsize,
    requests: AtomicU64,
    limits: Limits,
    max_requests_per_conn: usize,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal_shutdown_requested()
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<SweepService>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener (non-blocking, so the accept loop can observe
    /// shutdown) without starting to serve.
    ///
    /// # Errors
    ///
    /// Any bind failure (address in use, permission).
    pub fn bind(config: ServerConfig, service: SweepService) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            service: Arc::new(service),
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    ///
    /// # Errors
    ///
    /// As for [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serves until shutdown is requested, then drains and returns the
    /// run's summary. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Failure to acquire the store's `serve` claim (another daemon owns
    /// the directory) or to spawn worker threads.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let locks_dir = self.service.store_dir().join("locks");
        let Some(claim) = dsmt_store::LockFile::acquire(&locks_dir, "serve")? else {
            let holder = dsmt_store::LockFile::inspect(&locks_dir, "serve")
                .map_or_else(|| "unknown holder".to_string(), |info| info.describe());
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!(
                    "another daemon already serves this store (claim held by {holder}); \
                     stop it or remove {}",
                    locks_dir.join("serve.lock").display()
                ),
            ));
        };
        let heartbeat = claim.spawn_heartbeat(Duration::from_secs(30));

        let shared = Arc::new(Shared {
            service: Arc::clone(&self.service),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: Arc::clone(&self.stop),
            active: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            limits: self.config.limits.clone(),
            max_requests_per_conn: self.config.max_requests_per_conn,
        });
        dsmt_obs::gauge!("serve.queue_depth").set(0);
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dsmt-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<_>>()?;

        let mut summary = ServeSummary::default();
        while !shared.stopping() {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    summary.connections += 1;
                    dsmt_obs::counter!("serve.connections").inc();
                    dsmt_obs::debug!("serve.accept", peer = peer.to_string());
                    let mut queue = shared.queue.lock().expect("queue lock");
                    if queue.len() >= self.config.backlog {
                        drop(queue);
                        summary.rejected += 1;
                        dsmt_obs::counter!("http.rejected_busy").inc();
                        let _ = stream.set_write_timeout(Some(self.config.limits.write_timeout));
                        let _ = ApiError::busy().to_response().write_to(&mut &stream, false);
                        continue;
                    }
                    queue.push_back(stream);
                    dsmt_obs::gauge!("serve.queue_depth").set(queue.len() as i64);
                    drop(queue);
                    shared.ready.notify_one();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    dsmt_obs::warn!("serve.accept_failed", error = e.to_string());
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }

        // Drain: workers keep popping until the queue is empty, then exit.
        shared.ready.notify_all();
        let deadline = Instant::now() + self.config.drain_timeout;
        loop {
            let queued = shared.queue.lock().expect("queue lock").len();
            let active = shared.active.load(Ordering::SeqCst);
            if queued == 0 && active == 0 {
                break;
            }
            if Instant::now() >= deadline {
                summary.forced_abort = true;
                dsmt_obs::warn!(
                    "serve.forced_abort",
                    in_flight = active,
                    queued = queued,
                    drain_timeout_ms = self.config.drain_timeout.as_millis() as u64
                );
                break;
            }
            shared.ready.notify_all();
            std::thread::sleep(Duration::from_millis(10));
        }
        if !summary.forced_abort {
            for worker in workers {
                let _ = worker.join();
            }
        }
        summary.requests = shared.requests.load(Ordering::SeqCst);
        drop(heartbeat);
        drop(claim); // releases the store's `serve` claim
        dsmt_obs::info!(
            "serve.stopped",
            connections = summary.connections,
            requests = summary.requests,
            forced_abort = summary.forced_abort
        );
        Ok(summary)
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    dsmt_obs::gauge!("serve.queue_depth").set(queue.len() as i64);
                    break Some(stream);
                }
                if shared.stopping() {
                    break None;
                }
                let (q, _timeout) = shared
                    .ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = q;
            }
        };
        let Some(stream) = stream else { return };
        shared.active.fetch_add(1, Ordering::SeqCst);
        handle_connection(shared, stream);
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Speaks keep-alive HTTP on one connection until the peer closes, an
/// error ends it, the per-connection request cap is reached, or shutdown
/// is requested between requests.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.limits.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.limits.write_timeout));
    let mut conn = Conn::new(stream);
    let mut served = 0usize;
    loop {
        if shared.stopping() && served > 0 {
            // In-flight request already answered; close instead of waiting
            // for another one that may never come.
            break;
        }
        match conn.read_request(&shared.limits) {
            Ok(request) => {
                let started = Instant::now();
                shared.requests.fetch_add(1, Ordering::SeqCst);
                dsmt_obs::counter!("http.requests").inc();
                served += 1;
                let keep_alive = request.wants_keep_alive()
                    && served < shared.max_requests_per_conn
                    && !shared.stopping();
                let response = dispatch(&shared.service, &request);
                // counter! caches the first name per call site, so the
                // per-class counters go through the registry directly.
                let class = match response.status {
                    200..=299 => "http.responses_2xx",
                    400..=499 => "http.responses_4xx",
                    500..=599 => "http.responses_5xx",
                    _ => "http.responses_other",
                };
                dsmt_obs::registry().counter(class).inc();
                dsmt_obs::histogram!("http.request_us")
                    .record(started.elapsed().as_micros() as u64);
                dsmt_obs::debug!(
                    "http.request",
                    method = request.method.as_str(),
                    path = request.path.as_str(),
                    status = response.status,
                    micros = started.elapsed().as_micros() as u64
                );
                if response.write_to(conn.stream_mut(), keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
            Err(ParseError::Closed) | Err(ParseError::TimedOut { mid_request: false }) => break,
            Err(e) => {
                if let Some(error) = request_error(&e) {
                    dsmt_obs::counter!("http.responses_4xx").inc();
                    let _ = error.to_response().write_to(conn.stream_mut(), false);
                }
                break;
            }
        }
    }
}

/// Maps a request-reading failure to its structured response, or `None`
/// when the right move is to close silently (I/O errors mid-write).
fn request_error(e: &ParseError) -> Option<ApiError> {
    match e {
        ParseError::Closed | ParseError::TimedOut { mid_request: false } | ParseError::Io(_) => {
            None
        }
        ParseError::TimedOut { mid_request: true } => Some(ApiError::new(
            408,
            "timeout",
            "request not completed within the read timeout",
        )),
        ParseError::Truncated => Some(ApiError::new(
            400,
            "truncated_request",
            "connection closed mid-request",
        )),
        ParseError::Malformed(why) => Some(ApiError::bad_request(*why)),
        ParseError::HeaderTooLarge => Some(ApiError::new(
            431,
            "header_too_large",
            "request head exceeds the configured limit",
        )),
        ParseError::BodyTooLarge { declared } => Some(ApiError::new(
            413,
            "payload_too_large",
            format!("declared body of {declared} bytes exceeds the configured limit"),
        )),
        ParseError::UnsupportedTransferEncoding => Some(ApiError::new(
            501,
            "unsupported_transfer_encoding",
            "send a content-length body; transfer-encoding is not supported",
        )),
        ParseError::UnsupportedVersion => Some(ApiError::new(
            505,
            "http_version_not_supported",
            "only HTTP/1.0 and HTTP/1.1 are supported",
        )),
    }
}

/// Routes one request, never panicking: service bugs surface as 500
/// `internal` responses instead of killing the worker thread.
fn dispatch(service: &SweepService, request: &Request) -> Response {
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(service, request)));
    match outcome {
        Ok(response) => response,
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            dsmt_obs::warn!(
                "serve.handler_panicked",
                path = request.path.as_str(),
                panic = what.as_str()
            );
            ApiError::internal("handler panicked; see server log").to_response()
        }
    }
}

/// The route table. See `docs/ARCHITECTURE.md` ("Service protocol") for
/// the endpoint contract.
fn route(service: &SweepService, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let get = request.method == "GET";
    let post = request.method == "POST";
    let result: Result<Response, ApiError> = match segments.as_slice() {
        ["healthz"] if get => Ok(healthz(service)),
        ["healthz"] => Err(ApiError::method_not_allowed(&request.method, "GET")),
        ["metricsz"] if get => Ok(Response::json(
            200,
            dsmt_obs::registry().snapshot().to_json(),
        )),
        ["metricsz"] => Err(ApiError::method_not_allowed(&request.method, "GET")),
        ["grids"] if post => service
            .submit(&request.body)
            .map(|v| Response::json(201, serde::to_string(&v))),
        ["grids"] if get => service
            .list_grids()
            .map(|v| Response::json(200, serde::to_string(&v))),
        ["grids"] => Err(ApiError::method_not_allowed(&request.method, "GET, POST")),
        ["grids", hash, "status"] if get => service
            .status(hash)
            .map(|v| Response::json(200, serde::to_string(&v))),
        ["grids", _, "status"] => Err(ApiError::method_not_allowed(&request.method, "GET")),
        ["grids", hash, "record"] if get => service.record(hash).map(|fetch| {
            if request.header("if-none-match") == Some(fetch.etag.as_str()) {
                Response::json(304, String::new()).with_header("ETag", fetch.etag)
            } else {
                Response::bytes(200, "application/octet-stream", fetch.bytes)
                    .with_header("ETag", fetch.etag)
            }
        }),
        ["grids", _, "record"] => Err(ApiError::method_not_allowed(&request.method, "GET")),
        ["cells", key] if get => service
            .cell(key, request.header("if-none-match"))
            .map(|fetch| match fetch.json {
                None => Response::json(304, String::new()).with_header("ETag", fetch.etag),
                Some(json) => Response::json(200, json).with_header("ETag", fetch.etag),
            }),
        ["cells", _] => Err(ApiError::method_not_allowed(&request.method, "GET")),
        _ => Err(ApiError::not_found(&request.path)),
    };
    result.unwrap_or_else(|e| e.to_response())
}

fn healthz(service: &SweepService) -> Response {
    let value = Value::Object(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        ("pid".to_string(), Value::U64(u64::from(std::process::id()))),
        (
            "store".to_string(),
            Value::Str(service.store_dir().display().to_string()),
        ),
        ("plans".to_string(), Value::U64(service.plan_count() as u64)),
    ]);
    Response::json(200, serde::to_string(&value))
}
