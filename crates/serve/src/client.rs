//! The minimal blocking HTTP client `dsmt client` and the integration
//! tests share: one request per connection (`Connection: close`), typed
//! access to the structured error model.

use std::net::TcpStream;
use std::time::Duration;

use crate::http::{read_response, Request, Response};
use serde::Value;

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct HttpClient {
    addr: String,
    timeout: Duration,
}

impl HttpClient {
    /// A client for `addr` (`host:port`) with a 30 s timeout — generous
    /// because a record fetch can sit behind a large merge.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        HttpClient {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The address requests go to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and reads the response. Adds `Connection: close`
    /// and a `Content-Length` for non-empty bodies.
    ///
    /// # Errors
    ///
    /// A human-readable message for connect, send, or parse failures (an
    /// HTTP error *status* is a successful exchange, not an `Err`).
    pub fn send(&self, mut request: Request) -> Result<Response, String> {
        request
            .headers
            .push(("Connection".to_string(), "close".to_string()));
        let mut stream = self
            .connect()
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        std::io::Write::write_all(&mut stream, &request.encode())
            .map_err(|e| format!("send to {}: {e}", self.addr))?;
        read_response(&mut stream).map_err(|e| format!("response from {}: {e}", self.addr))
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        // connect_timeout needs a resolved SocketAddr; resolve via the
        // standard ToSocketAddrs and take the first candidate.
        use std::net::ToSocketAddrs;
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// As for [`HttpClient::send`].
    pub fn get(&self, path: &str) -> Result<Response, String> {
        self.send(Request::get(path))
    }

    /// `GET path` with extra headers (e.g. `If-None-Match`).
    ///
    /// # Errors
    ///
    /// As for [`HttpClient::send`].
    pub fn get_with(&self, path: &str, headers: &[(&str, &str)]) -> Result<Response, String> {
        let mut request = Request::get(path);
        for (k, v) in headers {
            request.headers.push(((*k).to_string(), (*v).to_string()));
        }
        self.send(request)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// As for [`HttpClient::send`].
    pub fn post_json(&self, path: &str, body: impl Into<String>) -> Result<Response, String> {
        let mut request = Request::get(path);
        request.method = "POST".to_string();
        request
            .headers
            .push(("Content-Type".to_string(), "application/json".to_string()));
        request.body = body.into().into_bytes();
        self.send(request)
    }
}

/// Parses a response body as JSON, mapping the service's structured error
/// model to `Err("code: message")` for non-2xx statuses — the one place
/// CLI subcommands and tests decode errors.
///
/// # Errors
///
/// The service error (`code: message`), or a description of a body that
/// is not valid JSON.
pub fn json_body(response: &Response) -> Result<Value, String> {
    let text = std::str::from_utf8(&response.body)
        .map_err(|_| format!("status {}: body is not utf-8", response.status))?;
    let value: Value =
        serde::from_str(text).map_err(|e| format!("status {}: {e}", response.status))?;
    if (200..300).contains(&response.status) {
        return Ok(value);
    }
    let detail = value
        .field("error")
        .ok()
        .map(|err| {
            let code = err
                .field("code")
                .ok()
                .and_then(|c| c.as_str().ok())
                .unwrap_or("unknown");
            let message = err
                .field("message")
                .ok()
                .and_then(|m| m.as_str().ok())
                .unwrap_or("");
            format!("{code}: {message}")
        })
        .unwrap_or_else(|| format!("status {}", response.status));
    Err(detail)
}
