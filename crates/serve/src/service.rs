//! The service behind the routes: one store directory the daemon owns,
//! plus a `plans/` directory of submitted shard manifests.
//!
//! A submission is *exactly* a `dsmt shard plan`: the grid is planned into
//! a [`ShardManifest`] whose hash names it, and the manifest is written to
//! `<store>/plans/<hash>.plan.json`. From there the existing store-backed
//! shard protocol takes over — remote workers run
//! `dsmt shard run <store>/plans/<hash>.plan.json --missing --store <store>`
//! against the same directory (or a mount/sync of it), and the daemon's
//! status and record endpoints observe their publishes through
//! [`dsmt_store::Store::refresh`]. The daemon adds no second coordination mechanism;
//! it is an HTTP veneer over the claims, segments and manifests that
//! already coordinate fleets.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dsmt_shard::{merge_from, plan, DsrFile, ShardManifest, ShardStrategy, Transport};
use dsmt_store::{atomic_write, fnv1a64};
use dsmt_sweep::SweepGrid;
use serde::{Deserialize, Value};

use crate::error::ApiError;

/// Resolves a built-in grid name (`demo`, `fig4`, ...) to its grid. The
/// binary supplies its catalog; tests supply small fixtures. Kept as a
/// callback so this crate does not depend on the experiment catalog.
pub type GridResolver = Box<dyn Fn(&str) -> Option<SweepGrid> + Send + Sync>;

/// The outcome of a record fetch: the merged bytes and their content-hash
/// ETag (already quoted, ready for the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordFetch {
    /// Encoded `.dsr` bytes, byte-identical to a monolithic local run.
    pub bytes: Vec<u8>,
    /// Strong ETag: the quoted 16-hex FNV-1a hash of `bytes`.
    pub etag: String,
}

/// The outcome of a cell fetch: the record rendered as JSON (unless the
/// client's `If-None-Match` already matched) and its strong ETag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFetch {
    /// The rendered record; `None` means "not modified" — the client's
    /// ETag matched and the record was never decoded or serialized.
    pub json: Option<String>,
    /// Strong ETag: the quoted 16-hex per-record FNV from the segment
    /// header (or, for eagerly loaded legacy segments, of the JSON body).
    pub etag: String,
}

/// The sweep service: store + plans + grid resolver, shared by every
/// worker thread behind a mutex (requests are short; the store handle is
/// the contended resource and [`dsmt_store::Store::refresh`] is cheap on an unchanged
/// directory).
pub struct SweepService {
    store_dir: PathBuf,
    plans_dir: PathBuf,
    transport: Mutex<Transport>,
    resolver: GridResolver,
}

impl std::fmt::Debug for SweepService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepService")
            .field("store_dir", &self.store_dir)
            .finish_non_exhaustive()
    }
}

impl SweepService {
    /// Opens (creating if needed) the daemon's store directory and its
    /// `plans/` subdirectory.
    ///
    /// # Errors
    ///
    /// A human-readable message when the store cannot be opened (schema
    /// mismatch, legacy layout, I/O) or `plans/` cannot be created.
    pub fn open(store_dir: impl Into<PathBuf>, resolver: GridResolver) -> Result<Self, String> {
        let store_dir = store_dir.into();
        let transport = Transport::store(&store_dir)?;
        let plans_dir = store_dir.join("plans");
        std::fs::create_dir_all(&plans_dir).map_err(|e| format!("{}: {e}", plans_dir.display()))?;
        Ok(SweepService {
            store_dir,
            plans_dir,
            transport: Mutex::new(transport),
            resolver,
        })
    }

    /// The store directory the daemon owns.
    #[must_use]
    pub fn store_dir(&self) -> &Path {
        &self.store_dir
    }

    /// Where submitted plans live (`<store>/plans`).
    #[must_use]
    pub fn plans_dir(&self) -> &Path {
        &self.plans_dir
    }

    fn plan_path(&self, hash: &str) -> PathBuf {
        self.plans_dir.join(format!("{hash}.plan.json"))
    }

    /// Number of submitted plans on disk.
    #[must_use]
    pub fn plan_count(&self) -> usize {
        std::fs::read_dir(&self.plans_dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().to_string_lossy().ends_with(".plan.json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Handles `POST /grids`: plans the submitted grid and writes the
    /// manifest where workers will find it. Body shape:
    ///
    /// ```json
    /// { "grid": { ...SweepGrid... }, "shards": 4, "strategy": "strided" }
    /// { "builtin": "demo", "shards": 2 }
    /// ```
    ///
    /// `shards` defaults to 1, `strategy` to `contiguous`. Submission is
    /// idempotent: the same grid re-planned lands on the same hash and
    /// overwrites its manifest atomically (`created` reports which
    /// happened). The response carries the grid hash, the plan location
    /// relative to the store, and an initial status probe — a resubmitted
    /// grid whose outputs still sit in the store shows up `done`
    /// immediately, which is the store's dedup doing its job.
    ///
    /// # Errors
    ///
    /// `invalid_json`, `bad_request`, `unknown_builtin`, `invalid_grid`,
    /// or `internal` (plan write failure).
    pub fn submit(&self, body: &[u8]) -> Result<Value, ApiError> {
        let text =
            std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not utf-8"))?;
        let v: Value = serde::from_str(text).map_err(|e| ApiError::invalid_json(e.to_string()))?;
        let grid = match (v.field("grid"), v.field("builtin")) {
            (Ok(g), _) => SweepGrid::from_value(g)
                .map_err(|e| ApiError::invalid_grid(format!("grid does not parse: {e}")))?,
            (_, Ok(b)) => {
                let name = b
                    .as_str()
                    .map_err(|_| ApiError::bad_request("\"builtin\" must be a string"))?;
                (self.resolver)(name).ok_or_else(|| ApiError::unknown_builtin(name))?
            }
            _ => {
                return Err(ApiError::bad_request(
                    "body must carry a \"grid\" object or a \"builtin\" name",
                ))
            }
        };
        let shards = match v.field("shards") {
            Ok(n) => usize::try_from(
                n.as_u64()
                    .map_err(|_| ApiError::bad_request("\"shards\" must be a positive integer"))?,
            )
            .map_err(|_| ApiError::bad_request("\"shards\" is out of range"))?,
            Err(_) => 1,
        };
        let strategy = match v.field("strategy") {
            Ok(s) => {
                let name = s
                    .as_str()
                    .map_err(|_| ApiError::bad_request("\"strategy\" must be a string"))?;
                ShardStrategy::from_name(name).ok_or_else(|| {
                    ApiError::bad_request(format!(
                        "unknown strategy {name:?} (contiguous, strided or hashed)"
                    ))
                })?
            }
            Err(_) => ShardStrategy::Contiguous,
        };
        let manifest =
            plan(&grid, shards, strategy).map_err(|e| ApiError::invalid_grid(e.to_string()))?;
        let path = self.plan_path(&manifest.grid_hash);
        let created = !path.exists();
        atomic_write(&path, manifest.to_json().as_bytes())
            .map_err(|e| ApiError::internal(format!("writing plan: {e}")))?;
        dsmt_obs::counter!("serve.submissions").inc();
        dsmt_obs::info!(
            "serve.submit",
            grid = manifest.grid.name.as_str(),
            hash = manifest.grid_hash.as_str(),
            shards = manifest.num_shards()
        );
        let status = self.status_value(&manifest)?;
        Ok(Value::Object(vec![
            ("grid".to_string(), Value::Str(manifest.grid.name.clone())),
            (
                "grid_hash".to_string(),
                Value::Str(manifest.grid_hash.clone()),
            ),
            ("cells".to_string(), Value::U64(manifest.grid.len() as u64)),
            (
                "shards".to_string(),
                Value::U64(manifest.num_shards() as u64),
            ),
            (
                "strategy".to_string(),
                Value::Str(manifest.strategy.name().to_string()),
            ),
            (
                "plan".to_string(),
                Value::Str(format!("plans/{}.plan.json", manifest.grid_hash)),
            ),
            ("created".to_string(), Value::Bool(created)),
            ("status".to_string(), status),
        ]))
    }

    /// Loads a submitted manifest by hash, or the errors the routes share.
    fn load_manifest(&self, hash: &str) -> Result<ShardManifest, ApiError> {
        validate_hex_key(hash)?;
        let path = self.plan_path(hash);
        if !path.exists() {
            return Err(ApiError::unknown_grid(hash));
        }
        let manifest = ShardManifest::load(&path)
            .map_err(|e| ApiError::internal(format!("plan on disk is unusable: {e}")))?;
        if manifest.grid_hash != hash {
            return Err(ApiError::internal(format!(
                "plan file {} carries hash {} (tampered?)",
                path.display(),
                manifest.grid_hash
            )));
        }
        Ok(manifest)
    }

    fn status_value(&self, manifest: &ShardManifest) -> Result<Value, ApiError> {
        let mut transport = self
            .transport
            .lock()
            .map_err(|_| ApiError::internal("service state poisoned"))?;
        Ok(transport.status(manifest).to_value(manifest))
    }

    /// Handles `GET /grids/{hash}/status`: the shared machine-readable
    /// status rendering (see [`dsmt_shard::StatusReport::to_value`]).
    ///
    /// # Errors
    ///
    /// `invalid_key`, `unknown_grid`, or `internal`.
    pub fn status(&self, hash: &str) -> Result<Value, ApiError> {
        let manifest = self.load_manifest(hash)?;
        self.status_value(&manifest)
    }

    /// Handles `GET /grids/{hash}/record`: merges the plan's shard
    /// outputs into the canonical monolithic `.dsr` packaging (shard 0 of
    /// 1) and returns the bytes with their content-hash ETag.
    ///
    /// # Errors
    ///
    /// `invalid_key`, `unknown_grid`, `grid_incomplete` while shards are
    /// still outstanding, or `internal` for structurally broken outputs.
    pub fn record(&self, hash: &str) -> Result<RecordFetch, ApiError> {
        let manifest = self.load_manifest(hash)?;
        let mut transport = self
            .transport
            .lock()
            .map_err(|_| ApiError::internal("service state poisoned"))?;
        let report = merge_from(&manifest, &mut transport).map_err(|e| match &e {
            dsmt_shard::MergeError::MissingShard(_) => ApiError::grid_incomplete(format!(
                "not every shard has published an output yet: {e}"
            )),
            _ => ApiError::internal(e.to_string()),
        })?;
        drop(transport);
        let bytes = DsrFile::from_report(&manifest.grid, &report, 0, 1).encode();
        let etag = format!("\"{:016x}\"", fnv1a64(&bytes));
        Ok(RecordFetch { bytes, etag })
    }

    /// Handles `GET /cells/{key}`: the raw store record under a cache key
    /// (16-hex, as printed by sweep reports), rendered as JSON with a
    /// strong ETag (mirroring `/grids/{hash}/record` semantics).
    ///
    /// The ETag is the per-record FNV the segment header already records,
    /// so a matching `If-None-Match` is answered from the index alone —
    /// no record decode, no serialization, no body. Records from eagerly
    /// loaded segments (legacy v1 files record no per-record FNV) fall
    /// back to hashing the rendered JSON.
    ///
    /// # Errors
    ///
    /// `invalid_key`, `unknown_cell`, or `internal` (which includes a
    /// stored record failing its checksum at decode).
    pub fn cell(&self, key: &str, if_none_match: Option<&str>) -> Result<CellFetch, ApiError> {
        validate_hex_key(key)?;
        let numeric = u64::from_str_radix(key, 16).map_err(|_| ApiError::invalid_key(key))?;
        let mut transport = self
            .transport
            .lock()
            .map_err(|_| ApiError::internal("service state poisoned"))?;
        let Transport::Store(store) = &mut *transport else {
            return Err(ApiError::internal("service transport is not a store"));
        };
        store.refresh();
        let store = store.as_store();
        if let Some(fnv) = store.record_fnv(numeric) {
            let etag = format!("\"{fnv:016x}\"");
            if if_none_match == Some(etag.as_str()) {
                return Ok(CellFetch { json: None, etag });
            }
        }
        match store.try_get(numeric) {
            Ok(Some(value)) => {
                let json = serde::to_string(value);
                let etag = match store.record_fnv(numeric) {
                    Some(fnv) => format!("\"{fnv:016x}\""),
                    None => format!("\"{:016x}\"", fnv1a64(json.as_bytes())),
                };
                if if_none_match == Some(etag.as_str()) {
                    return Ok(CellFetch { json: None, etag });
                }
                Ok(CellFetch {
                    json: Some(json),
                    etag,
                })
            }
            Ok(None) => Err(ApiError::unknown_cell(key)),
            Err(e) => Err(ApiError::internal(e.to_string())),
        }
    }

    /// Handles `GET /grids`: every submitted plan, newest knowledge of the
    /// disk (unreadable plan files are skipped).
    ///
    /// # Errors
    ///
    /// `internal` when the plans directory itself cannot be listed.
    pub fn list_grids(&self) -> Result<Value, ApiError> {
        let entries = std::fs::read_dir(&self.plans_dir)
            .map_err(|e| ApiError::internal(format!("listing plans: {e}")))?;
        let mut grids: Vec<(String, Value)> = Vec::new();
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if !path.to_string_lossy().ends_with(".plan.json") {
                continue;
            }
            let Ok(manifest) = ShardManifest::load(&path) else {
                continue;
            };
            grids.push((
                manifest.grid_hash.clone(),
                Value::Object(vec![
                    ("grid".to_string(), Value::Str(manifest.grid.name.clone())),
                    ("grid_hash".to_string(), Value::Str(manifest.grid_hash)),
                    ("cells".to_string(), Value::U64(manifest.grid.len() as u64)),
                    (
                        "shards".to_string(),
                        Value::U64(manifest.shards.len() as u64),
                    ),
                ]),
            ));
        }
        grids.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Value::Object(vec![(
            "grids".to_string(),
            Value::Array(grids.into_iter().map(|(_, v)| v).collect()),
        )]))
    }
}

/// Grid hashes and cell keys are 1–16 lowercase hex digits (hashes are
/// always exactly 16; short cell keys are tolerated for hand-typed reads).
fn validate_hex_key(text: &str) -> Result<(), ApiError> {
    let ok = !text.is_empty()
        && text.len() <= 16
        && text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    if ok {
        Ok(())
    } else {
        Err(ApiError::invalid_key(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmt_core::SimConfig;
    use dsmt_sweep::{Axis, SweepEngine, WorkloadSpec};

    fn small_grid(name: &str) -> SweepGrid {
        SweepGrid::new(name, SimConfig::paper_multithreaded(1))
            .with_workload(WorkloadSpec::spec_mix(1_000))
            .with_axis(Axis::l2_latencies(&[1, 16]))
            .with_budget(2_000)
    }

    fn service(tag: &str) -> (SweepService, PathBuf) {
        let dir = std::env::temp_dir().join(format!("dsmt-serve-svc-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let svc = SweepService::open(
            &dir,
            Box::new(|name| (name == "tiny").then(|| small_grid("tiny"))),
        )
        .expect("open service");
        (svc, dir)
    }

    #[test]
    fn submit_plans_and_status_reports_missing() {
        let (svc, dir) = service("submit");
        let out = svc.submit(br#"{"builtin":"tiny","shards":2}"#).unwrap();
        let hash = out
            .field("grid_hash")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(out.field("created").unwrap(), &Value::Bool(true));
        assert_eq!(out.field("cells").unwrap().as_u64().unwrap(), 2);
        assert!(dir
            .join("plans")
            .join(format!("{hash}.plan.json"))
            .is_file());
        let status = svc.status(&hash).unwrap();
        assert_eq!(status.field("missing").unwrap().as_u64().unwrap(), 2);
        // Resubmission is idempotent and flagged.
        let again = svc.submit(br#"{"builtin":"tiny","shards":2}"#).unwrap();
        assert_eq!(again.field("created").unwrap(), &Value::Bool(false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_rejections_carry_stable_codes() {
        let (svc, dir) = service("reject");
        let code = |body: &[u8]| svc.submit(body).unwrap_err().code;
        assert_eq!(code(b"not json"), "invalid_json");
        assert_eq!(code(br#"{"no":"grid"}"#), "bad_request");
        assert_eq!(code(br#"{"builtin":"absent"}"#), "unknown_builtin");
        assert_eq!(code(br#"{"builtin":"tiny","shards":0}"#), "invalid_grid");
        assert_eq!(
            code(br#"{"builtin":"tiny","strategy":"pony"}"#),
            "bad_request"
        );
        assert_eq!(code(br#"{"grid":{"name":1}}"#), "invalid_grid");
        assert_eq!(svc.status("no-such-hash").unwrap_err().code, "invalid_key");
        assert_eq!(
            svc.status("0123456789abcdef").unwrap_err().code,
            "unknown_grid"
        );
        assert_eq!(svc.cell("zz", None).unwrap_err().code, "invalid_key");
        assert_eq!(svc.cell("00ff", None).unwrap_err().code, "unknown_cell");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_fetches_carry_the_header_fnv_etag_and_304_without_decoding() {
        let (svc, dir) = service("cell-etag");
        let key = 0x00ffu64;
        {
            let mut store =
                dsmt_store::Store::open(&dir, dsmt_sweep::CACHE_SCHEMA_VERSION).unwrap();
            store
                .publish(vec![(
                    key,
                    Value::Object(vec![("ipc".to_string(), Value::F64(1.5))]),
                )])
                .unwrap();
        }
        let fetch = svc.cell("00ff", None).unwrap();
        let json = fetch.json.expect("cold fetch has a body");
        assert!(json.contains("ipc"));
        // The ETag is the per-record FNV from the segment header — knowable
        // without decoding — and a matching If-None-Match short-circuits.
        {
            let transport = svc.transport.lock().unwrap();
            let Transport::Store(store) = &*transport else {
                panic!("store transport")
            };
            let fnv = store.as_store().record_fnv(key).expect("headered record");
            assert_eq!(fetch.etag, format!("\"{fnv:016x}\""));
        }
        let revalidated = svc.cell("00ff", Some(fetch.etag.as_str())).unwrap();
        assert_eq!(revalidated.json, None, "matching ETag sends no body");
        assert_eq!(revalidated.etag, fetch.etag);
        let miss = svc.cell("00ff", Some("\"0000000000000000\"")).unwrap();
        assert!(miss.json.is_some(), "stale ETag gets the body again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_is_incomplete_until_workers_publish_then_byte_identical() {
        let (svc, dir) = service("record");
        let out = svc.submit(br#"{"builtin":"tiny","shards":2}"#).unwrap();
        let hash = out
            .field("grid_hash")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(svc.record(&hash).unwrap_err().code, "grid_incomplete");

        // A worker (same process here) runs the missing shards against the
        // daemon's store directory — the protocol the daemon enqueues into.
        let manifest = ShardManifest::load(dir.join("plans").join(format!("{hash}.plan.json")))
            .expect("plan readable");
        let engine = SweepEngine::new(1).without_cache();
        let mut worker = Transport::store(&dir).expect("worker transport");
        dsmt_shard::recover(&manifest, &mut worker, &engine, &Default::default())
            .expect("worker run");

        let fetch = svc.record(&hash).unwrap();
        let monolithic = {
            let report = engine.run(&manifest.grid);
            DsrFile::from_report(&manifest.grid, &report, 0, 1).encode()
        };
        assert_eq!(fetch.bytes, monolithic, "service merge is byte-identical");
        assert_eq!(fetch.etag, format!("\"{:016x}\"", fnv1a64(&monolithic)));
        // And the listing knows the grid.
        let listed = svc.list_grids().unwrap();
        let Value::Array(grids) = listed.field("grids").unwrap() else {
            panic!("grids should be an array")
        };
        assert_eq!(grids.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
