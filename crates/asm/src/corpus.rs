//! The checked-in workload corpus (`examples/asm/*.s`), compiled into the
//! crate so experiments and the CLI can assemble it without touching the
//! filesystem.
//!
//! Three deliberately different characters:
//!
//! * [`PTR_CHASE`] — memory-bound: serially dependent loads over a 4 MiB
//!   pseudo-random table; clogs its fetch buffer behind L1 misses.
//! * [`FP_KERNEL`] — compute-bound: an FP multiply/add dependence chain
//!   over an L1-resident vector; drains its fetch buffer steadily.
//! * [`BRANCHY`] — control-bound: a data-dependent coin-flip branch per
//!   element; mispredicts constantly.
//!
//! Heterogeneous mixes of these are what finally separate I-COUNT from
//! round-robin fetch (see the `fetch_policy_hetero` experiment).

use dsmt_trace::Program;

use crate::{assemble, AsmError};

/// Memory-bound pointer chaser (see `examples/asm/ptr_chase.s`).
pub const PTR_CHASE: &str = include_str!("../../../examples/asm/ptr_chase.s");

/// Compute-bound floating-point kernel (see `examples/asm/fp_kernel.s`).
pub const FP_KERNEL: &str = include_str!("../../../examples/asm/fp_kernel.s");

/// Branch-heavy scanner (see `examples/asm/branchy.s`).
pub const BRANCHY: &str = include_str!("../../../examples/asm/branchy.s");

/// All corpus programs as `(name, source)` pairs, in a fixed order.
pub const CORPUS: &[(&str, &str)] = &[
    ("ptr_chase", PTR_CHASE),
    ("fp_kernel", FP_KERNEL),
    ("branchy", BRANCHY),
];

/// Assembles one corpus program by name.
///
/// # Errors
///
/// Returns the assembler error (corpus sources are tested, so this only
/// fires for unknown names, reported as an [`AsmError`] at line 0).
pub fn corpus_program(name: &str) -> Result<Program, AsmError> {
    let (prog_name, source) = CORPUS
        .iter()
        .find(|(n, _)| *n == name)
        .ok_or_else(|| AsmError::new(0, 0, crate::AsmErrorKind::UnknownLabel(name.into())))?;
    assemble(prog_name, source)
}

/// Assembles the whole corpus, in [`CORPUS`] order.
///
/// # Panics
///
/// Panics if a checked-in corpus source fails to assemble (a build bug,
/// caught by tests).
#[must_use]
pub fn corpus_programs() -> Vec<Program> {
    CORPUS
        .iter()
        .map(|(name, source)| {
            assemble(name, source).unwrap_or_else(|e| panic!("corpus program {name}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_assembles_and_is_addressable() {
        let programs = corpus_programs();
        assert_eq!(programs.len(), 3);
        assert_eq!(programs[0].name, "ptr_chase");
        assert!(corpus_program("branchy").is_ok());
        assert!(corpus_program("nonesuch").is_err());
    }

    #[test]
    fn corpus_characters_differ() {
        use dsmt_isa::OpClass;
        let programs = corpus_programs();
        let share = |p: &Program, pred: fn(&OpClass) -> bool| {
            let insts = p.expand(7, 4000);
            insts.iter().filter(|i| pred(&i.op)).count() as f64 / insts.len() as f64
        };
        // The chaser is load-heavy, the kernel FP-heavy, the scanner
        // branch-heavy.
        let loads: Vec<f64> = programs
            .iter()
            .map(|p| share(p, OpClass::is_load))
            .collect();
        assert!(loads[0] > 0.15, "{loads:?}");
        let fp: Vec<f64> = programs
            .iter()
            .map(|p| share(p, OpClass::is_fp_compute))
            .collect();
        assert!(fp[1] > 0.3 && fp[0] < 0.05 && fp[2] < 0.05, "{fp:?}");
        let branches: Vec<f64> = programs
            .iter()
            .map(|p| share(p, OpClass::is_cond_branch))
            .collect();
        assert!(
            branches[2] > branches[0] && branches[2] > branches[1],
            "{branches:?}"
        );
    }
}
