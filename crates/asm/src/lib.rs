//! # dsmt-asm
//!
//! An assembler front-end for the DSMT simulator (reproduction of *"The
//! Synergy of Multithreading and Access/Execute Decoupling"*, HPCA 1999).
//!
//! Every workload so far has been a synthetic statistical profile; this
//! crate turns checked-in `.s` programs into executable
//! [`dsmt_trace::Program`]s, which is what makes genuinely heterogeneous
//! multiprogrammed workloads — and therefore a meaningful I-COUNT vs
//! round-robin fetch-policy comparison — possible. It provides:
//!
//! * [`assemble`] — a two-pass assembler (labels, `.org`/`.word`
//!   directives, typed [`AsmError`]s with line/column spans); grammar in
//!   [`assemble`]'s module docs and `ARCHITECTURE.md`;
//! * [`encode_program`] / [`decode_program`] — a canonical, checksummed
//!   binary artifact format (`DSMTASM1`) for assembled programs, used by
//!   `dsmt asm build` and the golden-fixture tests;
//! * [`parse_trace`] — the inverse of [`dsmt_isa::text::render_trace`]:
//!   parses canonical trace text back into instructions, rejecting
//!   non-canonical forms with spans;
//! * [`corpus`] — the compiled-in `examples/asm` corpus (pointer chaser,
//!   FP kernel, branchy scanner).
//!
//! # Example
//!
//! ```
//! use dsmt_trace::TraceSource;
//!
//! let program = dsmt_asm::assemble(
//!     "demo",
//!     "start: li r1, 2\n       subi r1, r1, 1\n       bnz r1, start\n       halt",
//! )
//! .expect("assembles");
//! let mut trace = dsmt_trace::ProgramTrace::new(program, 42, 0);
//! let first = trace.next_instruction().expect("programs restart forever");
//! assert!(first.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assemble;
mod binfmt;
pub mod corpus;
mod error;
mod tracetext;

pub use assemble::assemble;
pub use binfmt::{decode_program, encode_program, ProgramBinError, PROGRAM_MAGIC};
pub use error::{AsmError, AsmErrorKind};
pub use tracetext::{parse_trace, parse_trace_line};
