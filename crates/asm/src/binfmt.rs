//! Binary encoding of assembled programs (the `dsmt asm build` artifact
//! and the golden-fixture format).
//!
//! Layout (varints are the canonical LEB128 of [`dsmt_isa::varint`]):
//!
//! ```text
//! magic    8 bytes  "DSMTASM1"
//! name     uvarint length + UTF-8 bytes
//! code     uvarint count, then per instruction:
//!            pc     ivarint delta from the previous instruction's pc
//!            tag    u8 (operation, see below)
//!            ...    tag-specific fields
//! data     uvarint count, then per cell:
//!            addr   ivarint delta from the previous cell's address
//!            value  uvarint
//! checksum u64 LE   FNV-1a 64 of every preceding byte
//! ```
//!
//! Registers are one byte (bit 7 = FP class, bits 0–5 = index); ALU and
//! condition codes are one byte each. Canonical varints plus the trailing
//! checksum give every program exactly one byte representation, so golden
//! tests can compare artifacts byte-for-byte and any corruption is
//! fail-stop.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut};

use dsmt_isa::{
    fnv1a64, get_ivarint, get_uvarint, put_ivarint, put_uvarint, ArchReg, OpClass, VarintError,
    NUM_INT_REGS,
};
use dsmt_trace::{AluOp, Cond, Operand, ProgInst, ProgOp, Program};

/// Magic bytes identifying an assembled-program artifact (version 1).
pub const PROGRAM_MAGIC: &[u8; 8] = b"DSMTASM1";

/// Errors from decoding an assembled-program artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramBinError {
    /// The buffer does not start with [`PROGRAM_MAGIC`].
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The trailing FNV checksum does not match the contents.
    ChecksumMismatch,
    /// A varint field is truncated or non-canonical.
    BadVarint(VarintError),
    /// A field holds an impossible value.
    Malformed(&'static str),
}

impl fmt::Display for ProgramBinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramBinError::BadMagic => write!(f, "not a DSMT program artifact (bad magic)"),
            ProgramBinError::Truncated => write!(f, "program artifact ends prematurely"),
            ProgramBinError::ChecksumMismatch => {
                write!(
                    f,
                    "program artifact checksum mismatch (corrupt or truncated)"
                )
            }
            ProgramBinError::BadVarint(e) => write!(f, "malformed program varint: {e}"),
            ProgramBinError::Malformed(what) => write!(f, "malformed program artifact: {what}"),
        }
    }
}

impl Error for ProgramBinError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProgramBinError::BadVarint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VarintError> for ProgramBinError {
    fn from(e: VarintError) -> Self {
        ProgramBinError::BadVarint(e)
    }
}

// Operation tags.
const TAG_LOAD_IMM: u8 = 0;
const TAG_INT_ALU_REG: u8 = 1;
const TAG_INT_ALU_IMM: u8 = 2;
const TAG_INT_MUL_REG: u8 = 3;
const TAG_INT_MUL_IMM: u8 = 4;
const TAG_FP: u8 = 5;
const TAG_LOAD: u8 = 6;
const TAG_STORE: u8 = 7;
const TAG_COND_BRANCH: u8 = 8;
const TAG_COND_BRANCH2: u8 = 9;
const TAG_BRANCH: u8 = 10;
const TAG_JUMP: u8 = 11;
const TAG_NOP: u8 = 12;
const TAG_HALT: u8 = 13;

const REG_FP_BIT: u8 = 1 << 7;

fn reg_byte(reg: ArchReg) -> u8 {
    let class = if reg.is_fp() { REG_FP_BIT } else { 0 };
    class | (reg.index() & 0x3f)
}

fn alu_byte(alu: AluOp) -> u8 {
    match alu {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Sll => 5,
        AluOp::Srl => 6,
    }
}

fn cond_byte(cond: Cond) -> u8 {
    match cond {
        Cond::Eq0 => 0,
        Cond::Ne0 => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
    }
}

/// Encodes `program` into its canonical artifact bytes.
#[must_use]
pub fn encode_program(program: &Program) -> Vec<u8> {
    let mut buf = Vec::with_capacity(program.code.len() * 6 + program.data.len() * 4 + 64);
    buf.put_slice(PROGRAM_MAGIC);
    let name = program.name.as_bytes();
    put_uvarint(&mut buf, name.len() as u64);
    buf.put_slice(name);
    put_uvarint(&mut buf, program.code.len() as u64);
    let mut prev_pc: u64 = 0;
    for inst in &program.code {
        put_ivarint(&mut buf, inst.pc.wrapping_sub(prev_pc) as i64);
        prev_pc = inst.pc;
        match inst.op {
            ProgOp::LoadImm { dest, imm } => {
                buf.put_u8(TAG_LOAD_IMM);
                buf.put_u8(reg_byte(dest));
                put_ivarint(&mut buf, imm);
            }
            ProgOp::IntAlu {
                alu,
                dest,
                src1,
                rhs,
            } => {
                match rhs {
                    Operand::Reg(r) => {
                        buf.put_u8(TAG_INT_ALU_REG);
                        buf.put_u8(alu_byte(alu));
                        buf.put_u8(reg_byte(dest));
                        buf.put_u8(reg_byte(src1));
                        buf.put_u8(reg_byte(r));
                    }
                    Operand::Imm(i) => {
                        buf.put_u8(TAG_INT_ALU_IMM);
                        buf.put_u8(alu_byte(alu));
                        buf.put_u8(reg_byte(dest));
                        buf.put_u8(reg_byte(src1));
                        put_ivarint(&mut buf, i);
                    }
                };
            }
            ProgOp::IntMul { dest, src1, rhs } => match rhs {
                Operand::Reg(r) => {
                    buf.put_u8(TAG_INT_MUL_REG);
                    buf.put_u8(reg_byte(dest));
                    buf.put_u8(reg_byte(src1));
                    buf.put_u8(reg_byte(r));
                }
                Operand::Imm(i) => {
                    buf.put_u8(TAG_INT_MUL_IMM);
                    buf.put_u8(reg_byte(dest));
                    buf.put_u8(reg_byte(src1));
                    put_ivarint(&mut buf, i);
                }
            },
            ProgOp::Fp {
                op,
                dest,
                src1,
                src2,
            } => {
                buf.put_u8(TAG_FP);
                buf.put_u8(op.tag());
                buf.put_u8(reg_byte(dest));
                buf.put_u8(reg_byte(src1));
                buf.put_u8(reg_byte(src2));
            }
            ProgOp::Load { dest, base, disp } => {
                buf.put_u8(TAG_LOAD);
                buf.put_u8(reg_byte(dest));
                buf.put_u8(reg_byte(base));
                put_ivarint(&mut buf, disp);
            }
            ProgOp::Store { src, base, disp } => {
                buf.put_u8(TAG_STORE);
                buf.put_u8(reg_byte(src));
                buf.put_u8(reg_byte(base));
                put_ivarint(&mut buf, disp);
            }
            ProgOp::CondBranch {
                cond,
                src1,
                src2,
                target,
            } => {
                match src2 {
                    Some(s2) => {
                        buf.put_u8(TAG_COND_BRANCH2);
                        buf.put_u8(cond_byte(cond));
                        buf.put_u8(reg_byte(src1));
                        buf.put_u8(reg_byte(s2));
                    }
                    None => {
                        buf.put_u8(TAG_COND_BRANCH);
                        buf.put_u8(cond_byte(cond));
                        buf.put_u8(reg_byte(src1));
                    }
                }
                put_uvarint(&mut buf, target);
            }
            ProgOp::Branch { target } => {
                buf.put_u8(TAG_BRANCH);
                put_uvarint(&mut buf, target);
            }
            ProgOp::Jump { src } => {
                buf.put_u8(TAG_JUMP);
                buf.put_u8(reg_byte(src));
            }
            ProgOp::Nop => buf.put_u8(TAG_NOP),
            ProgOp::Halt => buf.put_u8(TAG_HALT),
        }
    }
    put_uvarint(&mut buf, program.data.len() as u64);
    let mut prev_addr: u64 = 0;
    for &(addr, value) in &program.data {
        put_ivarint(&mut buf, addr.wrapping_sub(prev_addr) as i64);
        prev_addr = addr;
        put_uvarint(&mut buf, value);
    }
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, ProgramBinError> {
    if !buf.has_remaining() {
        return Err(ProgramBinError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_reg(buf: &mut &[u8], want_fp: Option<bool>) -> Result<ArchReg, ProgramBinError> {
    let byte = get_u8(buf)?;
    if byte & 0x40 != 0 {
        return Err(ProgramBinError::Malformed("register byte has bit 6 set"));
    }
    let index = byte & 0x3f;
    if usize::from(index) >= NUM_INT_REGS {
        return Err(ProgramBinError::Malformed("register index out of range"));
    }
    let is_fp = byte & REG_FP_BIT != 0;
    if let Some(want) = want_fp {
        if want != is_fp {
            return Err(ProgramBinError::Malformed("register class mismatch"));
        }
    }
    Ok(if is_fp {
        ArchReg::fp(index)
    } else {
        ArchReg::int(index)
    })
}

fn get_alu(buf: &mut &[u8]) -> Result<AluOp, ProgramBinError> {
    Ok(match get_u8(buf)? {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sll,
        6 => AluOp::Srl,
        _ => return Err(ProgramBinError::Malformed("unknown alu code")),
    })
}

fn get_cond(buf: &mut &[u8]) -> Result<Cond, ProgramBinError> {
    Ok(match get_u8(buf)? {
        0 => Cond::Eq0,
        1 => Cond::Ne0,
        2 => Cond::Lt,
        3 => Cond::Ge,
        _ => return Err(ProgramBinError::Malformed("unknown condition code")),
    })
}

/// Decodes an artifact produced by [`encode_program`].
///
/// The trailing checksum is verified over the whole buffer before any
/// field is decoded.
///
/// # Errors
///
/// Returns [`ProgramBinError`] on bad magic, truncation, checksum
/// mismatch or malformed fields.
pub fn decode_program(bytes: &[u8]) -> Result<Program, ProgramBinError> {
    if bytes.len() < PROGRAM_MAGIC.len() {
        return Err(ProgramBinError::Truncated);
    }
    if &bytes[..PROGRAM_MAGIC.len()] != PROGRAM_MAGIC {
        return Err(ProgramBinError::BadMagic);
    }
    if bytes.len() < PROGRAM_MAGIC.len() + 8 {
        return Err(ProgramBinError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a64(body) != declared {
        return Err(ProgramBinError::ChecksumMismatch);
    }
    let mut buf = &body[PROGRAM_MAGIC.len()..];

    let name_len = get_uvarint(&mut buf)?;
    let name_len =
        usize::try_from(name_len).map_err(|_| ProgramBinError::Malformed("name length"))?;
    if buf.remaining() < name_len {
        return Err(ProgramBinError::Truncated);
    }
    let name = std::str::from_utf8(&buf[..name_len])
        .map_err(|_| ProgramBinError::Malformed("name is not utf-8"))?
        .to_string();
    buf.advance(name_len);

    let count = get_uvarint(&mut buf)?;
    if count == 0 {
        return Err(ProgramBinError::Malformed("empty program"));
    }
    let mut code = Vec::with_capacity(count.min(1_000_000) as usize);
    let mut prev_pc: u64 = 0;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..count {
        let pc = prev_pc.wrapping_add(get_ivarint(&mut buf)? as u64);
        prev_pc = pc;
        if !seen.insert(pc) {
            return Err(ProgramBinError::Malformed("duplicate instruction address"));
        }
        let op = match get_u8(&mut buf)? {
            TAG_LOAD_IMM => ProgOp::LoadImm {
                dest: get_reg(&mut buf, Some(false))?,
                imm: get_ivarint(&mut buf)?,
            },
            TAG_INT_ALU_REG => ProgOp::IntAlu {
                alu: get_alu(&mut buf)?,
                dest: get_reg(&mut buf, Some(false))?,
                src1: get_reg(&mut buf, Some(false))?,
                rhs: Operand::Reg(get_reg(&mut buf, Some(false))?),
            },
            TAG_INT_ALU_IMM => ProgOp::IntAlu {
                alu: get_alu(&mut buf)?,
                dest: get_reg(&mut buf, Some(false))?,
                src1: get_reg(&mut buf, Some(false))?,
                rhs: Operand::Imm(get_ivarint(&mut buf)?),
            },
            TAG_INT_MUL_REG => ProgOp::IntMul {
                dest: get_reg(&mut buf, Some(false))?,
                src1: get_reg(&mut buf, Some(false))?,
                rhs: Operand::Reg(get_reg(&mut buf, Some(false))?),
            },
            TAG_INT_MUL_IMM => ProgOp::IntMul {
                dest: get_reg(&mut buf, Some(false))?,
                src1: get_reg(&mut buf, Some(false))?,
                rhs: Operand::Imm(get_ivarint(&mut buf)?),
            },
            TAG_FP => {
                let op = OpClass::from_tag(get_u8(&mut buf)?)
                    .filter(OpClass::is_fp_compute)
                    .ok_or(ProgramBinError::Malformed("not an fp compute class"))?;
                ProgOp::Fp {
                    op,
                    dest: get_reg(&mut buf, Some(true))?,
                    src1: get_reg(&mut buf, Some(true))?,
                    src2: get_reg(&mut buf, Some(true))?,
                }
            }
            TAG_LOAD => ProgOp::Load {
                dest: get_reg(&mut buf, None)?,
                base: get_reg(&mut buf, Some(false))?,
                disp: get_ivarint(&mut buf)?,
            },
            TAG_STORE => ProgOp::Store {
                src: get_reg(&mut buf, None)?,
                base: get_reg(&mut buf, Some(false))?,
                disp: get_ivarint(&mut buf)?,
            },
            TAG_COND_BRANCH => ProgOp::CondBranch {
                cond: get_cond(&mut buf)?,
                src1: get_reg(&mut buf, Some(false))?,
                src2: None,
                target: get_uvarint(&mut buf)?,
            },
            TAG_COND_BRANCH2 => {
                let cond = get_cond(&mut buf)?;
                let src1 = get_reg(&mut buf, Some(false))?;
                let src2 = get_reg(&mut buf, Some(false))?;
                ProgOp::CondBranch {
                    cond,
                    src1,
                    src2: Some(src2),
                    target: get_uvarint(&mut buf)?,
                }
            }
            TAG_BRANCH => ProgOp::Branch {
                target: get_uvarint(&mut buf)?,
            },
            TAG_JUMP => ProgOp::Jump {
                src: get_reg(&mut buf, Some(false))?,
            },
            TAG_NOP => ProgOp::Nop,
            TAG_HALT => ProgOp::Halt,
            _ => return Err(ProgramBinError::Malformed("unknown op tag")),
        };
        code.push(ProgInst { pc, op });
    }

    let data_count = get_uvarint(&mut buf)?;
    let mut data = Vec::with_capacity(data_count.min(1_000_000) as usize);
    let mut prev_addr: u64 = 0;
    for _ in 0..data_count {
        let addr = prev_addr.wrapping_add(get_ivarint(&mut buf)? as u64);
        prev_addr = addr;
        data.push((addr, get_uvarint(&mut buf)?));
    }
    if buf.has_remaining() {
        return Err(ProgramBinError::Malformed("trailing bytes"));
    }
    Ok(Program::new(name, code, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn corpus_round_trip(name: &str, source: &str) {
        let program = assemble(name, source).unwrap();
        let bytes = encode_program(&program);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(back, program, "{name} artifact round-trip");
        // Canonical: re-encoding is byte-identical.
        assert_eq!(encode_program(&back), bytes);
    }

    #[test]
    fn corpus_round_trips() {
        for (name, source) in crate::corpus::CORPUS {
            corpus_round_trip(name, source);
        }
    }

    #[test]
    fn every_truncation_rejected() {
        let program = assemble("t", "start: li r1, 5\nbnz r1, start\nhalt").unwrap();
        let bytes = encode_program(&program);
        for cut in 0..bytes.len() {
            assert!(
                decode_program(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_rejected() {
        let program = assemble("t", "start: li r1, 5\nbnz r1, start\nhalt").unwrap();
        let bytes = encode_program(&program);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_program(&bad).is_err(), "flip at {i} must fail");
        }
    }

    #[test]
    fn checksum_verified_before_decode() {
        let program = assemble("t", "nop\nhalt").unwrap();
        let mut bytes = encode_program(&program);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert_eq!(
            decode_program(&bytes),
            Err(ProgramBinError::ChecksumMismatch)
        );
    }

    #[test]
    fn bad_magic_detected() {
        let program = assemble("t", "nop").unwrap();
        let mut bytes = encode_program(&program);
        bytes[0] = b'X';
        assert_eq!(decode_program(&bytes), Err(ProgramBinError::BadMagic));
    }

    #[test]
    fn error_display() {
        assert!(ProgramBinError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(ProgramBinError::BadVarint(VarintError::Truncated)
            .to_string()
            .contains("varint"));
    }
}
