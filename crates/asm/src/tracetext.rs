//! Parser for the canonical trace text format (the inverse of
//! [`dsmt_isa::text::render_trace`]).
//!
//! One instruction per line:
//!
//! ```text
//! 0x1000: ldt f2, r4, [0x8000+8]
//! 0x4: br.c r1, -> 0x100
//! 0x8: br.c r1, not-taken
//! ```
//!
//! Registers are assigned in prefix order (`dest`, `src1`, `src2` for
//! operations that write a register; `src1`, `src2` otherwise), which is
//! exactly the shape [`dsmt_isa::text::is_canonical`] guarantees — so
//! `render → parse → encode` reproduces the original bytes for canonical
//! instructions, and anything else (out-of-order operands, too many
//! registers, a target on a not-taken branch) is rejected with a
//! line/column span.

use dsmt_isa::{text::is_canonical, ArchReg, BranchInfo, Instruction, MemRef, OpClass};

use crate::assemble::parse_reg;
use crate::{AsmError, AsmErrorKind};

fn col_at(line: &str, idx: usize) -> u32 {
    let idx = idx.min(line.len());
    (line[..idx].chars().count() + 1) as u32
}

/// `0x`-prefixed lowercase hex, as `{:#x}` renders it.
fn parse_hex(text: &str) -> Option<u64> {
    let digits = text.strip_prefix("0x")?;
    if digits.is_empty() || digits.contains(|c: char| c.is_ascii_uppercase()) {
        return None;
    }
    u64::from_str_radix(digits, 16).ok()
}

/// What kind of operand a comma-separated item is; order must be
/// non-decreasing along the line.
#[derive(PartialEq, PartialOrd)]
enum Phase {
    Reg,
    Mem,
    Branch,
}

/// Parses one canonical trace line into an [`Instruction`].
///
/// # Errors
///
/// Returns an [`AsmError`] spanning the offending token on malformed or
/// non-canonical input.
pub fn parse_trace_line(line: &str, lineno: u32) -> Result<Instruction, AsmError> {
    let err = |idx: usize, kind: AsmErrorKind| AsmError::new(lineno, col_at(line, idx), kind);

    let colon = line
        .find(": ")
        .ok_or_else(|| err(line.len(), AsmErrorKind::Expected("`<pc>: `")))?;
    let pc = parse_hex(&line[..colon])
        .ok_or_else(|| err(0, AsmErrorKind::BadNumber(line[..colon].into())))?;

    let body_start = colon + 2;
    let body = &line[body_start..];
    let mnemonic_end = body.find(' ').unwrap_or(body.len());
    let mnemonic = &body[..mnemonic_end];
    let op = OpClass::ALL
        .iter()
        .copied()
        .find(|c| c.mnemonic() == mnemonic)
        .ok_or_else(|| err(body_start, AsmErrorKind::UnknownMnemonic(mnemonic.into())))?;

    let mut inst = Instruction::new(pc, op);
    let mut regs: Vec<ArchReg> = Vec::new();
    let mut phase = Phase::Reg;

    if mnemonic_end < body.len() {
        // Operands: "`<op>`, `<op>`, ..." — exactly ", " separated.
        let mut idx = body_start + mnemonic_end + 1;
        let operands = &line[idx..];
        for part in operands.split(", ") {
            let kind = if part == "not-taken" {
                if inst.branch.is_some() {
                    return Err(err(idx, AsmErrorKind::NonCanonical("duplicate branch")));
                }
                inst.branch = Some(BranchInfo::not_taken());
                Phase::Branch
            } else if let Some(target) = part.strip_prefix("-> ") {
                if inst.branch.is_some() {
                    return Err(err(idx, AsmErrorKind::NonCanonical("duplicate branch")));
                }
                let target = parse_hex(target)
                    .ok_or_else(|| err(idx + 3, AsmErrorKind::BadNumber(target.into())))?;
                inst.branch = Some(BranchInfo::taken(target));
                Phase::Branch
            } else if let Some(mem) = part.strip_prefix('[') {
                if inst.mem.is_some() {
                    return Err(err(
                        idx,
                        AsmErrorKind::NonCanonical("duplicate memory operand"),
                    ));
                }
                let mem = mem
                    .strip_suffix(']')
                    .ok_or_else(|| err(idx, AsmErrorKind::Expected("`]`")))?;
                let plus = mem
                    .find('+')
                    .ok_or_else(|| err(idx, AsmErrorKind::Expected("`+` in memory operand")))?;
                let addr = parse_hex(&mem[..plus])
                    .ok_or_else(|| err(idx + 1, AsmErrorKind::BadNumber(mem[..plus].into())))?;
                let size: u8 = mem[plus + 1..].parse().map_err(|_| {
                    err(
                        idx + 2 + plus,
                        AsmErrorKind::BadNumber(mem[plus + 1..].into()),
                    )
                })?;
                inst.mem = Some(MemRef::new(addr, size));
                Phase::Mem
            } else if let Some(reg) = parse_reg(part) {
                regs.push(reg);
                Phase::Reg
            } else {
                return Err(err(idx, AsmErrorKind::Expected("an operand")));
            };
            if kind < phase {
                return Err(err(idx, AsmErrorKind::NonCanonical("operand out of order")));
            }
            phase = kind;
            idx += part.len() + 2;
        }
    }

    // Assign registers in prefix order.
    let writes = op.writes_int() || op.writes_fp();
    let max = if writes { 3 } else { 2 };
    if regs.len() > max {
        return Err(err(
            body_start,
            AsmErrorKind::NonCanonical("too many registers"),
        ));
    }
    let mut it = regs.into_iter();
    if writes {
        inst.dest = it.next();
    }
    inst.src1 = it.next();
    inst.src2 = it.next();

    inst.validate()
        .map_err(|e| err(body_start, AsmErrorKind::InvalidInstruction(e.to_string())))?;
    debug_assert!(is_canonical(&inst), "parser built non-canonical {inst}");
    Ok(inst)
}

/// Parses a whole trace text (one instruction per line; blank lines are
/// ignored).
///
/// # Errors
///
/// Returns the first per-line [`AsmError`].
pub fn parse_trace(text: &str) -> Result<Vec<Instruction>, AsmError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        out.push(parse_trace_line(line, (i + 1) as u32)?);
    }
    dsmt_obs::counter!("asm.trace_lines_parsed").add(out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmt_isa::text::render_trace;

    fn rt(line: &str) -> Instruction {
        parse_trace_line(line, 1).unwrap()
    }

    #[test]
    fn parses_display_forms() {
        let ld = rt("0x1000: ldt f2, r4, [0x8000+8]");
        assert_eq!(ld.pc, 0x1000);
        assert_eq!(ld.op, OpClass::LoadFp);
        assert_eq!(ld.dest, Some(ArchReg::fp(2)));
        assert_eq!(ld.src1, Some(ArchReg::int(4)));
        assert_eq!(ld.mem, Some(MemRef::new(0x8000, 8)));

        let br = rt("0x4: br.c r1, -> 0x100");
        assert_eq!(br.branch, Some(BranchInfo::taken(0x100)));
        assert_eq!(br.src1, Some(ArchReg::int(1)), "br.c writes no register");

        let nt = rt("0x4: br.c r1, not-taken");
        assert_eq!(nt.branch, Some(BranchInfo::not_taken()));

        let st = rt("0x0: stq r5, r1, [0x4000+8]");
        assert_eq!(st.dest, None);
        assert_eq!(st.src1, Some(ArchReg::int(5)));
        assert_eq!(st.src2, Some(ArchReg::int(1)));

        assert_eq!(rt("0x8: nop").op, OpClass::Nop);
    }

    #[test]
    fn round_trips_rendered_text() {
        let insts = vec![
            Instruction::new(0x1000, OpClass::LoadFp)
                .with_dest(ArchReg::fp(2))
                .with_src1(ArchReg::int(4))
                .with_mem(0x8000, 8),
            Instruction::new(0x1004, OpClass::IntAlu)
                .with_dest(ArchReg::int(1))
                .with_src1(ArchReg::int(2))
                .with_src2(ArchReg::int(3)),
            Instruction::new(0x1008, OpClass::CondBranch)
                .with_src1(ArchReg::int(1))
                .with_branch(BranchInfo::taken(0x1000)),
            Instruction::new(0x100c, OpClass::Nop),
        ];
        let text = render_trace(&insts);
        assert_eq!(parse_trace(&text).unwrap(), insts);
    }

    #[test]
    fn rejects_with_spans() {
        let e = parse_trace_line("0x10 ldq r1", 3).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(matches!(e.kind, AsmErrorKind::Expected(_)));

        let e = parse_trace_line("0x10: frob r1", 1).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));
        assert_eq!(e.col, 7);

        let e = parse_trace_line("10: nop", 1).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadNumber(_)));

        // Non-canonical: register after the memory operand.
        let e = parse_trace_line("0x0: stq r5, [0x10+8], r1", 1).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::NonCanonical(_)));

        // Non-canonical: too many registers for a store.
        let e = parse_trace_line("0x0: stq r5, r1, r2, [0x10+8]", 1).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::NonCanonical(_)));

        // Structurally invalid: load without a memory operand.
        let e = parse_trace_line("0x0: ldq r1", 1).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::InvalidInstruction(_)));

        // Uppercase hex is not canonical output.
        let e = parse_trace_line("0xFF: nop", 1).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadNumber(_)));
    }

    #[test]
    fn never_panics_on_junk_lines() {
        for junk in [
            "",
            ":",
            ": ",
            "0x: nop",
            "0x0:",
            "0x0: ",
            "0x0: ldq [",
            "0x0: ldq [0x10+",
            "0x0: br.c -> ",
            "0x0: nop, nop",
            "🦀: nop",
            "0x0: nop 🦀",
        ] {
            let _ = parse_trace_line(junk, 1);
        }
    }
}
