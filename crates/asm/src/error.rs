//! Typed assembler errors with line/column spans.

use std::error::Error;
use std::fmt;

use dsmt_isa::RegClass;

/// An assembler (or trace-text parser) error, located in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl AsmError {
    /// Builds an error at a source position.
    #[must_use]
    pub fn new(line: u32, col: u32, kind: AsmErrorKind) -> Self {
        AsmError { line, col, kind }
    }
}

/// The failure classes the assembler can report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// A character no token may contain.
    UnexpectedChar(char),
    /// A numeric literal that does not parse (or overflows 64 bits).
    BadNumber(String),
    /// A mnemonic the ISA does not define.
    UnknownMnemonic(String),
    /// A directive other than `.org` / `.word`.
    UnknownDirective(String),
    /// An operand that should be a register but is not `rN` / `fN`.
    BadRegister(String),
    /// A register of the wrong class for this operand slot.
    WrongRegClass {
        /// The class the mnemonic requires here.
        want: RegClass,
    },
    /// The parser expected a specific token (described in prose).
    Expected(&'static str),
    /// Extra tokens after a complete statement.
    TrailingTokens,
    /// The same label defined twice.
    DuplicateLabel(String),
    /// A reference to a label that is never defined.
    UnknownLabel(String),
    /// Two instructions (or data words) placed at the same address via
    /// `.org`.
    OverlappingPlacement(u64),
    /// The source contains no instructions.
    EmptyProgram,
    /// A trace-text line whose operands are not in canonical form
    /// (see `dsmt_isa::text::is_canonical`).
    NonCanonical(&'static str),
    /// A parsed trace-text instruction that fails `Instruction::validate`
    /// (the message is the validator's).
    InvalidInstruction(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.kind)
    }
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            AsmErrorKind::BadNumber(s) => write!(f, "bad numeric literal `{s}`"),
            AsmErrorKind::UnknownMnemonic(s) => write!(f, "unknown mnemonic `{s}`"),
            AsmErrorKind::UnknownDirective(s) => write!(f, "unknown directive `{s}`"),
            AsmErrorKind::BadRegister(s) => write!(f, "`{s}` is not a register"),
            AsmErrorKind::WrongRegClass { want } => {
                write!(f, "operand must be an {want} register")
            }
            AsmErrorKind::Expected(what) => write!(f, "expected {what}"),
            AsmErrorKind::TrailingTokens => write!(f, "trailing tokens after statement"),
            AsmErrorKind::DuplicateLabel(s) => write!(f, "label `{s}` defined twice"),
            AsmErrorKind::UnknownLabel(s) => write!(f, "unknown label `{s}`"),
            AsmErrorKind::OverlappingPlacement(pc) => {
                write!(f, "two placements at address {pc:#x}")
            }
            AsmErrorKind::EmptyProgram => write!(f, "program has no instructions"),
            AsmErrorKind::NonCanonical(what) => write!(f, "non-canonical trace text: {what}"),
            AsmErrorKind::InvalidInstruction(msg) => write!(f, "invalid instruction: {msg}"),
        }
    }
}

impl Error for AsmError {}
