//! The two-pass assembler: source text → [`Program`].
//!
//! Pass 1 lexes and parses every line, placing statements at the running
//! location counter (instructions advance it by [`INST_BYTES`], `.word`
//! cells by 8, `.org` sets it) and recording label definitions. Pass 2
//! resolves label references — branch targets, `li` immediates, `.word`
//! values — and lowers each statement to a semantic [`ProgOp`].
//!
//! The grammar (one statement per line, `#` or `;` starts a comment):
//!
//! ```text
//! line     := [label ':'] [stmt] [comment]
//! stmt     := directive | inst
//! directive:= '.org' expr | '.word' expr (',' expr)*
//! expr     := number | label
//! number   := ['-'] (decimal | '0x' hex)
//! inst     := 'li'    ireg ',' expr
//!           | alu     ireg ',' ireg ',' ireg      ; add sub and or xor sll srl mul
//!           | alu-i   ireg ',' ireg ',' number    ; addi subi andi ori xori slli srli muli
//!           | fp      freg ',' freg ',' freg      ; fadd fmul fdiv
//!           | 'ldq'   ireg ',' number '(' ireg ')'
//!           | 'ldt'   freg ',' number '(' ireg ')'
//!           | 'stq'   ireg ',' number '(' ireg ')'
//!           | 'stt'   freg ',' number '(' ireg ')'
//!           | 'bz'|'bnz'  ireg ',' expr
//!           | 'blt'|'bge' ireg ',' ireg ',' expr
//!           | 'br'    expr
//!           | 'jmp'   ireg
//!           | 'nop' | 'halt'
//! ```
//!
//! Every error carries a 1-based line/column span; the assembler never
//! panics, whatever bytes it is fed.

use std::collections::HashMap;

use dsmt_isa::{ArchReg, OpClass, RegClass, NUM_INT_REGS};
use dsmt_trace::{AluOp, Cond, Operand, ProgInst, ProgOp, Program, INST_BYTES};

use crate::{AsmError, AsmErrorKind};

/// One lexed token with its 1-based column.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok<'a> {
    /// Identifier, directive (leading `.`) or register name.
    Ident(&'a str),
    /// A 64-bit literal (negatives are wrapped, hex accepted).
    Num(i64),
    Comma,
    Colon,
    LParen,
    RParen,
}

#[derive(Debug, Clone)]
struct Spanned<'a> {
    tok: Tok<'a>,
    col: u32,
}

fn lex_line(line: &str, lineno: u32) -> Result<Vec<Spanned<'_>>, AsmError> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let col = (line[..i].chars().count() + 1) as u32;
        let c = bytes[i];
        match c {
            b'#' | b';' => break,
            b' ' | b'\t' | b'\r' => i += 1,
            b',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    col,
                });
                i += 1;
            }
            b':' => {
                out.push(Spanned {
                    tok: Tok::Colon,
                    col,
                });
                i += 1;
            }
            b'(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    col,
                });
                i += 1;
            }
            b')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    col,
                });
                i += 1;
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'x')
                {
                    i += 1;
                }
                let text = &line[start..i];
                let value = parse_number(text).ok_or_else(|| {
                    AsmError::new(lineno, col, AsmErrorKind::BadNumber(text.into()))
                })?;
                out.push(Spanned {
                    tok: Tok::Num(value),
                    col,
                });
            }
            b'.' | b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(&line[start..i]),
                    col,
                });
            }
            _ => {
                // Fall back to the char at this byte position (the input
                // may be arbitrary UTF-8).
                let ch = line[i..].chars().next().unwrap_or('\u{fffd}');
                return Err(AsmError::new(lineno, col, AsmErrorKind::UnexpectedChar(ch)));
            }
        }
    }
    Ok(out)
}

/// Parses a literal: optional `-`, then decimal or `0x` hex. Underscores
/// are digit separators. Out-of-range values return `None`.
fn parse_number(text: &str) -> Option<i64> {
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let cleaned: String = body.chars().filter(|&c| c != '_').collect();
    let hex = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"));
    let (is_hex, magnitude) = match hex {
        Some(digits) => (true, u64::from_str_radix(digits, 16).ok()?),
        None => (false, cleaned.parse::<u64>().ok()?),
    };
    if neg {
        // -2^63 ..= 0
        if magnitude > (1u64 << 63) {
            return None;
        }
        Some((magnitude as i64).wrapping_neg())
    } else if magnitude <= i64::MAX as u64 {
        Some(magnitude as i64)
    } else if is_hex {
        // Full-range u64 hex literals (masks, addresses) wrap into the i64
        // carrier; the interpreter computes in u64 anyway.
        Some(magnitude as i64)
    } else {
        None
    }
}

/// A not-yet-resolved value: a literal or a label reference.
#[derive(Debug, Clone)]
enum Expr {
    Num(i64),
    Label(String, u32),
}

/// A statement awaiting label resolution.
#[derive(Debug)]
enum Pending {
    LoadImm {
        dest: ArchReg,
        imm: Expr,
    },
    IntAlu {
        alu: AluOp,
        dest: ArchReg,
        src1: ArchReg,
        rhs: PendingRhs,
    },
    IntMul {
        dest: ArchReg,
        src1: ArchReg,
        rhs: PendingRhs,
    },
    Fp {
        op: OpClass,
        dest: ArchReg,
        src1: ArchReg,
        src2: ArchReg,
    },
    Load {
        dest: ArchReg,
        base: ArchReg,
        disp: i64,
    },
    Store {
        src: ArchReg,
        base: ArchReg,
        disp: i64,
    },
    CondBranch {
        cond: Cond,
        src1: ArchReg,
        src2: Option<ArchReg>,
        target: Expr,
    },
    Branch {
        target: Expr,
    },
    Jump {
        src: ArchReg,
    },
    Nop,
    Halt,
}

#[derive(Debug)]
enum PendingRhs {
    Reg(ArchReg),
    Imm(i64),
}

/// Cursor over one line's tokens.
struct Cursor<'a, 'b> {
    toks: &'b [Spanned<'a>],
    pos: usize,
    line: u32,
    /// Column just past the last consumed token (for end-of-line errors).
    end_col: u32,
}

impl<'a, 'b> Cursor<'a, 'b> {
    fn new(toks: &'b [Spanned<'a>], line: u32) -> Self {
        Cursor {
            toks,
            pos: 0,
            line,
            end_col: toks.last().map_or(1, |t| t.col + 1),
        }
    }

    fn peek(&self) -> Option<Spanned<'a>> {
        self.toks.get(self.pos).cloned()
    }

    fn next(&mut self) -> Option<Spanned<'a>> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, col: u32, kind: AsmErrorKind) -> AsmError {
        AsmError::new(self.line, col, kind)
    }

    fn here(&self) -> u32 {
        self.peek().map_or(self.end_col, |t| t.col)
    }

    fn expect_comma(&mut self) -> Result<(), AsmError> {
        let col = self.here();
        match self.next() {
            Some(Spanned {
                tok: Tok::Comma, ..
            }) => Ok(()),
            _ => Err(self.err(col, AsmErrorKind::Expected("`,`"))),
        }
    }

    fn expect_reg(&mut self, want: RegClass) -> Result<ArchReg, AsmError> {
        let at = self.here();
        match self.next() {
            Some(Spanned {
                tok: Tok::Ident(name),
                col,
            }) => {
                let reg = parse_reg(name)
                    .ok_or_else(|| self.err(col, AsmErrorKind::BadRegister(name.into())))?;
                if reg.class() != want {
                    return Err(self.err(col, AsmErrorKind::WrongRegClass { want }));
                }
                Ok(reg)
            }
            _ => Err(self.err(at, AsmErrorKind::Expected("a register"))),
        }
    }

    fn expect_num(&mut self) -> Result<i64, AsmError> {
        let at = self.here();
        match self.next() {
            Some(Spanned {
                tok: Tok::Num(n), ..
            }) => Ok(n),
            _ => Err(self.err(at, AsmErrorKind::Expected("a number"))),
        }
    }

    /// A literal or a label reference.
    fn expect_expr(&mut self) -> Result<Expr, AsmError> {
        let at = self.here();
        match self.next() {
            Some(Spanned {
                tok: Tok::Num(n), ..
            }) => Ok(Expr::Num(n)),
            Some(Spanned {
                tok: Tok::Ident(name),
                col,
            }) => {
                if parse_reg(name).is_some() {
                    return Err(self.err(col, AsmErrorKind::Expected("a number or label")));
                }
                Ok(Expr::Label(name.into(), col))
            }
            _ => Err(self.err(at, AsmErrorKind::Expected("a number or label"))),
        }
    }

    /// `disp '(' reg ')'` — the memory operand.
    fn expect_mem_operand(&mut self) -> Result<(i64, ArchReg), AsmError> {
        let disp = self.expect_num()?;
        let at = self.here();
        match self.next() {
            Some(Spanned {
                tok: Tok::LParen, ..
            }) => {}
            _ => return Err(self.err(at, AsmErrorKind::Expected("`(`"))),
        }
        let base = self.expect_reg(RegClass::Int)?;
        let at = self.here();
        match self.next() {
            Some(Spanned {
                tok: Tok::RParen, ..
            }) => {}
            _ => return Err(self.err(at, AsmErrorKind::Expected("`)`"))),
        }
        Ok((disp, base))
    }

    fn expect_end(&self) -> Result<(), AsmError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(t.col, AsmErrorKind::TrailingTokens)),
        }
    }
}

pub(crate) fn parse_reg(name: &str) -> Option<ArchReg> {
    let class = match name.as_bytes().first()? {
        b'r' => RegClass::Int,
        b'f' => RegClass::Fp,
        _ => return None,
    };
    // Reject `r07`-style and non-digit tails so labels like `result` stay
    // labels.
    let index = &name[1..];
    if index.is_empty() || index.len() > 2 || !index.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if index.len() == 2 && index.starts_with('0') {
        return None;
    }
    let index: u8 = index.parse().ok()?;
    if usize::from(index) >= NUM_INT_REGS {
        return None;
    }
    Some(ArchReg::new(class, index))
}

/// Integer three-operand mnemonics and their semantics.
fn alu_mnemonic(name: &str) -> Option<(AluOp, bool)> {
    Some(match name {
        "add" => (AluOp::Add, false),
        "addi" => (AluOp::Add, true),
        "sub" => (AluOp::Sub, false),
        "subi" => (AluOp::Sub, true),
        "and" => (AluOp::And, false),
        "andi" => (AluOp::And, true),
        "or" => (AluOp::Or, false),
        "ori" => (AluOp::Or, true),
        "xor" => (AluOp::Xor, false),
        "xori" => (AluOp::Xor, true),
        "sll" => (AluOp::Sll, false),
        "slli" => (AluOp::Sll, true),
        "srl" => (AluOp::Srl, false),
        "srli" => (AluOp::Srl, true),
        _ => return None,
    })
}

fn fp_mnemonic(name: &str) -> Option<OpClass> {
    Some(match name {
        "fadd" => OpClass::FpAdd,
        "fmul" => OpClass::FpMul,
        "fdiv" => OpClass::FpDiv,
        _ => return None,
    })
}

fn parse_inst(cur: &mut Cursor<'_, '_>, mnemonic: &str, col: u32) -> Result<Pending, AsmError> {
    if let Some((alu, imm)) = alu_mnemonic(mnemonic) {
        let dest = cur.expect_reg(RegClass::Int)?;
        cur.expect_comma()?;
        let src1 = cur.expect_reg(RegClass::Int)?;
        cur.expect_comma()?;
        let rhs = if imm {
            PendingRhs::Imm(cur.expect_num()?)
        } else {
            PendingRhs::Reg(cur.expect_reg(RegClass::Int)?)
        };
        return Ok(Pending::IntAlu {
            alu,
            dest,
            src1,
            rhs,
        });
    }
    if let Some(op) = fp_mnemonic(mnemonic) {
        let dest = cur.expect_reg(RegClass::Fp)?;
        cur.expect_comma()?;
        let src1 = cur.expect_reg(RegClass::Fp)?;
        cur.expect_comma()?;
        let src2 = cur.expect_reg(RegClass::Fp)?;
        return Ok(Pending::Fp {
            op,
            dest,
            src1,
            src2,
        });
    }
    match mnemonic {
        "li" => {
            let dest = cur.expect_reg(RegClass::Int)?;
            cur.expect_comma()?;
            let imm = cur.expect_expr()?;
            Ok(Pending::LoadImm { dest, imm })
        }
        "mul" | "muli" => {
            let dest = cur.expect_reg(RegClass::Int)?;
            cur.expect_comma()?;
            let src1 = cur.expect_reg(RegClass::Int)?;
            cur.expect_comma()?;
            let rhs = if mnemonic == "muli" {
                PendingRhs::Imm(cur.expect_num()?)
            } else {
                PendingRhs::Reg(cur.expect_reg(RegClass::Int)?)
            };
            Ok(Pending::IntMul { dest, src1, rhs })
        }
        "ldq" | "ldt" => {
            let class = if mnemonic == "ldq" {
                RegClass::Int
            } else {
                RegClass::Fp
            };
            let dest = cur.expect_reg(class)?;
            cur.expect_comma()?;
            let (disp, base) = cur.expect_mem_operand()?;
            Ok(Pending::Load { dest, base, disp })
        }
        "stq" | "stt" => {
            let class = if mnemonic == "stq" {
                RegClass::Int
            } else {
                RegClass::Fp
            };
            let src = cur.expect_reg(class)?;
            cur.expect_comma()?;
            let (disp, base) = cur.expect_mem_operand()?;
            Ok(Pending::Store { src, base, disp })
        }
        "bz" | "bnz" => {
            let cond = if mnemonic == "bz" {
                Cond::Eq0
            } else {
                Cond::Ne0
            };
            let src1 = cur.expect_reg(RegClass::Int)?;
            cur.expect_comma()?;
            let target = cur.expect_expr()?;
            Ok(Pending::CondBranch {
                cond,
                src1,
                src2: None,
                target,
            })
        }
        "blt" | "bge" => {
            let cond = if mnemonic == "blt" {
                Cond::Lt
            } else {
                Cond::Ge
            };
            let src1 = cur.expect_reg(RegClass::Int)?;
            cur.expect_comma()?;
            let src2 = cur.expect_reg(RegClass::Int)?;
            cur.expect_comma()?;
            let target = cur.expect_expr()?;
            Ok(Pending::CondBranch {
                cond,
                src1,
                src2: Some(src2),
                target,
            })
        }
        "br" => Ok(Pending::Branch {
            target: cur.expect_expr()?,
        }),
        "jmp" => Ok(Pending::Jump {
            src: cur.expect_reg(RegClass::Int)?,
        }),
        "nop" => Ok(Pending::Nop),
        "halt" => Ok(Pending::Halt),
        other => Err(cur.err(col, AsmErrorKind::UnknownMnemonic(other.into()))),
    }
}

/// Assembles `source` into a named [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its line/column span.
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut code: Vec<(u32, u64, Pending)> = Vec::new();
    let mut data: Vec<(u32, u64, Expr)> = Vec::new();
    let mut loc: u64 = 0;

    // Pass 1: parse statements, place them, collect label definitions.
    for (i, raw_line) in source.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let toks = lex_line(raw_line, lineno)?;
        let mut cur = Cursor::new(&toks, lineno);
        // Leading `label:` definitions (possibly several).
        while let (Some(first), Some(second)) = (cur.peek(), cur.toks.get(cur.pos + 1).cloned()) {
            let (Tok::Ident(name), Tok::Colon) = (first.tok, second.tok) else {
                break;
            };
            if parse_reg(name).is_some() || name.starts_with('.') {
                return Err(cur.err(first.col, AsmErrorKind::Expected("a label name")));
            }
            if labels.insert(name.into(), loc).is_some() {
                return Err(cur.err(first.col, AsmErrorKind::DuplicateLabel(name.into())));
            }
            cur.pos += 2;
        }
        let Some(Spanned { tok, col }) = cur.peek() else {
            continue; // blank / comment / label-only line
        };
        match tok {
            Tok::Ident(word) if word.starts_with('.') => {
                cur.pos += 1;
                match word {
                    ".org" => {
                        let value = cur.expect_num()?;
                        loc = value as u64;
                    }
                    ".word" => loop {
                        let value = cur.expect_expr()?;
                        data.push((lineno, loc, value));
                        loc = loc.wrapping_add(8);
                        if matches!(
                            cur.peek(),
                            Some(Spanned {
                                tok: Tok::Comma,
                                ..
                            })
                        ) {
                            cur.pos += 1;
                        } else {
                            break;
                        }
                    },
                    other => return Err(cur.err(col, AsmErrorKind::UnknownDirective(other.into()))),
                }
                cur.expect_end()?;
            }
            Tok::Ident(word) => {
                cur.pos += 1;
                let pending = parse_inst(&mut cur, word, col)?;
                cur.expect_end()?;
                code.push((lineno, loc, pending));
                loc = loc.wrapping_add(INST_BYTES);
            }
            _ => return Err(cur.err(col, AsmErrorKind::Expected("a mnemonic or directive"))),
        }
    }

    // Pass 2: resolve labels, check placements, lower to ProgOps.
    let resolve = |expr: &Expr, line: u32| -> Result<i64, AsmError> {
        match expr {
            Expr::Num(n) => Ok(*n),
            Expr::Label(name, col) => labels
                .get(name)
                .map(|&a| a as i64)
                .ok_or_else(|| AsmError::new(line, *col, AsmErrorKind::UnknownLabel(name.clone()))),
        }
    };

    let mut placed: HashMap<u64, u32> = HashMap::new();
    let mut insts = Vec::with_capacity(code.len());
    for (line, pc, pending) in &code {
        if placed.insert(*pc, *line).is_some() {
            return Err(AsmError::new(
                *line,
                1,
                AsmErrorKind::OverlappingPlacement(*pc),
            ));
        }
        let op = match pending {
            Pending::LoadImm { dest, imm } => ProgOp::LoadImm {
                dest: *dest,
                imm: resolve(imm, *line)?,
            },
            Pending::IntAlu {
                alu,
                dest,
                src1,
                rhs,
            } => ProgOp::IntAlu {
                alu: *alu,
                dest: *dest,
                src1: *src1,
                rhs: match rhs {
                    PendingRhs::Reg(r) => Operand::Reg(*r),
                    PendingRhs::Imm(i) => Operand::Imm(*i),
                },
            },
            Pending::IntMul { dest, src1, rhs } => ProgOp::IntMul {
                dest: *dest,
                src1: *src1,
                rhs: match rhs {
                    PendingRhs::Reg(r) => Operand::Reg(*r),
                    PendingRhs::Imm(i) => Operand::Imm(*i),
                },
            },
            Pending::Fp {
                op,
                dest,
                src1,
                src2,
            } => ProgOp::Fp {
                op: *op,
                dest: *dest,
                src1: *src1,
                src2: *src2,
            },
            Pending::Load { dest, base, disp } => ProgOp::Load {
                dest: *dest,
                base: *base,
                disp: *disp,
            },
            Pending::Store { src, base, disp } => ProgOp::Store {
                src: *src,
                base: *base,
                disp: *disp,
            },
            Pending::CondBranch {
                cond,
                src1,
                src2,
                target,
            } => ProgOp::CondBranch {
                cond: *cond,
                src1: *src1,
                src2: *src2,
                target: resolve(target, *line)? as u64,
            },
            Pending::Branch { target } => ProgOp::Branch {
                target: resolve(target, *line)? as u64,
            },
            Pending::Jump { src } => ProgOp::Jump { src: *src },
            Pending::Nop => ProgOp::Nop,
            Pending::Halt => ProgOp::Halt,
        };
        insts.push(ProgInst { pc: *pc, op });
    }
    if insts.is_empty() {
        return Err(AsmError::new(1, 1, AsmErrorKind::EmptyProgram));
    }

    let mut image = Vec::with_capacity(data.len());
    for (line, addr, expr) in &data {
        let cell = *addr & !7;
        if placed.insert(cell, *line).is_some() {
            return Err(AsmError::new(
                *line,
                1,
                AsmErrorKind::OverlappingPlacement(cell),
            ));
        }
        image.push((*addr, resolve(expr, *line)? as u64));
    }

    dsmt_obs::counter!("asm.programs_assembled").inc();
    dsmt_obs::counter!("asm.instructions_assembled").add(insts.len() as u64);
    Ok(Program::new(name, insts, image))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsmt_trace::TraceSource;

    #[test]
    fn assembles_a_counted_loop() {
        let src = "
        .org 0x1000
start:  li   r1, 3
loop:   subi r1, r1, 1
        bnz  r1, loop
        halt
";
        let p = assemble("loop", src).unwrap();
        assert_eq!(p.entry, 0x1000);
        assert_eq!(p.len(), 4);
        let insts = p.expand(1, 9);
        // One pass is li, then 3 × (subi, bnz) = 7 instructions; the halt
        // restarts the program, so the budget of 9 spills into pass two.
        assert_eq!(insts.len(), 9);
        assert_eq!(insts[0].pc, 0x1000);
        let outcomes: Vec<bool> = insts[..7]
            .iter()
            .filter_map(|i| i.branch.map(|b| b.taken))
            .collect();
        assert_eq!(outcomes, vec![true, true, false]);
        assert_eq!(insts[7].pc, 0x1000, "restart re-enters at the entry pc");
    }

    #[test]
    fn label_as_li_immediate_and_word_directive() {
        let src = "
        li   r1, table
        ldq  r2, 0(r1)
        halt
        .org 0x100
table:  .word 0xdead, 17
";
        let p = assemble("t", src).unwrap();
        assert_eq!(p.data, vec![(0x100, 0xdead), (0x108, 17)]);
        let insts = p.expand(0, 2);
        assert_eq!(insts[1].mem.unwrap().addr, 0x100);
    }

    #[test]
    fn full_grammar_smoke() {
        let src = "
start:  li   r1, -8
        add  r2, r1, r1
        addi r2, r2, 5
        mul  r3, r2, r2
        muli r3, r3, 3
        xor  r4, r3, r2
        ori  r4, r4, 1
        slli r5, r4, 2
        srl  r5, r5, r1
        fadd f1, f2, f3
        fmul f2, f1, f1
        fdiv f3, f2, f1
        ldt  f4, 8(r5)
        stt  f4, -8(r5)
        stq  r4, 0(r5)
        bz   r4, skip
        nop
skip:   blt  r1, r2, start
        bge  r2, r1, skip
        jmp  r1
        br   start
        halt
";
        let p = assemble("smoke", src).unwrap();
        assert_eq!(p.len(), 22);
        // Every emitted record must be structurally valid.
        let mut t = dsmt_trace::ProgramTrace::new(p, 5, 0).with_budget(200);
        let mut n = 0;
        while let Some(inst) = t.next_instruction() {
            inst.validate().unwrap();
            n += 1;
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn corpus_assembles() {
        for (name, source) in crate::corpus::CORPUS {
            let p = assemble(name, source).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(p.len() > 4, "{name} suspiciously small");
            for inst in p.expand(3, 2000) {
                inst.validate().unwrap();
            }
        }
    }

    #[test]
    fn errors_carry_spans() {
        let e = assemble("x", "        frob r1, r2").unwrap_err();
        assert_eq!((e.line, e.col), (1, 9));
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));

        let e = assemble("x", "li r1, 1\nadd r1, f2, r3").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(
            e.kind,
            AsmErrorKind::WrongRegClass {
                want: RegClass::Int
            }
        ));

        let e = assemble("x", "bz r1, nowhere").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UnknownLabel(_)));
        assert_eq!((e.line, e.col), (1, 8));

        let e = assemble("x", "a: nop\na: nop").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DuplicateLabel(_)));

        let e = assemble("x", "li r1, 1 li r2, 2").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::TrailingTokens));

        let e = assemble("x", "# nothing\n\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::EmptyProgram));

        let e = assemble("x", "nop\n.org 0\nnop").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::OverlappingPlacement(0)));

        let e = assemble("x", "li r99, 1").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadRegister(_)));

        let e = assemble("x", "li r1, 99999999999999999999").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadNumber(_)));

        let e = assemble("x", ".frob 1").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UnknownDirective(_)));

        let e = assemble("x", "li r1, 1 @").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UnexpectedChar('@')));
    }

    #[test]
    fn number_forms() {
        assert_eq!(parse_number("42"), Some(42));
        assert_eq!(parse_number("-42"), Some(-42));
        assert_eq!(parse_number("0x10"), Some(16));
        assert_eq!(parse_number("0X10"), Some(16));
        assert_eq!(parse_number("-0x10"), Some(-16));
        assert_eq!(parse_number("1_000"), Some(1000));
        assert_eq!(
            parse_number("0xffffffffffffffff"),
            Some(-1),
            "full-range hex wraps into the i64 carrier"
        );
        assert_eq!(parse_number("-0x8000000000000000"), Some(i64::MIN));
        assert_eq!(parse_number("-0x8000000000000001"), None);
        assert_eq!(parse_number("18446744073709551616"), None);
        assert_eq!(parse_number("12ab"), None);
        assert_eq!(parse_number("-"), None);
        assert_eq!(parse_number("0x"), None);
    }

    #[test]
    fn register_names() {
        assert_eq!(parse_reg("r0"), Some(ArchReg::int(0)));
        assert_eq!(parse_reg("r31"), Some(ArchReg::int(31)));
        assert_eq!(parse_reg("f7"), Some(ArchReg::fp(7)));
        assert_eq!(parse_reg("r32"), None);
        assert_eq!(parse_reg("r07"), None);
        assert_eq!(parse_reg("r"), None);
        assert_eq!(parse_reg("rax"), None);
        assert_eq!(parse_reg("result"), None);
        assert_eq!(parse_reg("x1"), None);
    }
}
