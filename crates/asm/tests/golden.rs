//! Golden fixtures pinning the assembled corpus.
//!
//! Two layers are pinned: the `DSMTASM1` binary layout of every
//! `examples/asm/*.s` program, and an FNV digest of each program's first
//! 2048 expanded trace instructions (which freezes the interpreter
//! semantics — register file behavior, hash-backed memory, restart rules).
//!
//! Regenerate intentionally with
//! `DSMT_REGEN_GOLDEN=1 cargo test -p dsmt-asm --test golden`.

use std::path::PathBuf;

use dsmt_asm::{corpus, decode_program, encode_program};
use dsmt_isa::{encode_stream, fnv1a64};

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

fn regen() -> bool {
    std::env::var("DSMT_REGEN_GOLDEN").is_ok_and(|v| v == "1")
}

#[test]
fn corpus_binaries_match_goldens() {
    for program in corpus::corpus_programs() {
        let bytes = encode_program(&program);
        let path = golden_path(&format!("{}.dsmtasm", program.name));
        if regen() {
            std::fs::write(&path, &bytes).expect("write golden");
            continue;
        }
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {} ({e}); regenerate with DSMT_REGEN_GOLDEN=1",
                path.display()
            )
        });
        assert_eq!(
            bytes, golden,
            "{} binary layout drifted; if the change is intentional, \
             regenerate with DSMT_REGEN_GOLDEN=1",
            program.name
        );
        assert_eq!(
            decode_program(&golden).expect("golden decodes"),
            program,
            "golden no longer decodes to the assembled program"
        );
    }
}

#[test]
fn expansion_digests_match_goldens() {
    let mut lines = String::new();
    for program in corpus::corpus_programs() {
        let insts = program.expand(7, 2048);
        assert_eq!(insts.len(), 2048, "{} under-expanded", program.name);
        let digest = fnv1a64(&encode_stream(&insts));
        lines.push_str(&format!("{} {digest:#018x}\n", program.name));
    }
    let path = golden_path("expansion.fnv");
    if regen() {
        std::fs::write(&path, lines).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with DSMT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        lines, golden,
        "interpreter expansion drifted; this changes every assembled \
         workload's trace — regenerate with DSMT_REGEN_GOLDEN=1 only if \
         that is intended"
    );
}
