//! Property tests for the assembler front-end.
//!
//! Two families: *totality* — no input, however malformed, may panic the
//! assembler, the trace-text parser or the program decoder — and the
//! *canonical round-trip* — `render_trace → parse_trace → encode_stream`
//! is byte-identical for arbitrary sequences of canonical instructions.

use dsmt_asm::{assemble, corpus, decode_program, parse_trace};
use dsmt_isa::text::{is_canonical, render_trace};
use dsmt_isa::{encode_stream, ArchReg, BranchInfo, Instruction, MemRef, OpClass};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    (any::<bool>(), 0u8..32).prop_map(|(fp, i)| if fp { ArchReg::fp(i) } else { ArchReg::int(i) })
}

/// An arbitrary instruction that satisfies [`is_canonical`]: a dest of the
/// class the operation writes, sources filling a prefix of the operand
/// order, a memory reference exactly when the class is a memory operation,
/// and a branch outcome (zero target when not taken) exactly when it is a
/// control operation.
fn arb_canonical() -> impl Strategy<Value = Instruction> {
    (
        any::<u64>(),
        0u8..13,
        0u8..32,
        0usize..3,
        arb_reg(),
        arb_reg(),
        (any::<u64>(), any::<u8>()),
        (any::<bool>(), any::<u64>()),
    )
        .prop_map(
            |(pc, tag, dest_idx, num_srcs, s1, s2, (addr, size), (taken, target))| {
                let op = OpClass::from_tag(tag).unwrap();
                let mut inst = Instruction::new(pc, op);
                if op.writes_fp() {
                    inst.dest = Some(ArchReg::fp(dest_idx));
                } else if op.writes_int() {
                    inst.dest = Some(ArchReg::int(dest_idx));
                }
                if num_srcs >= 1 {
                    inst.src1 = Some(s1);
                }
                if num_srcs >= 2 {
                    inst.src2 = Some(s2);
                }
                if op.is_mem() {
                    inst.mem = Some(MemRef::new(addr, size));
                }
                if op.is_control() {
                    inst.branch = Some(if taken {
                        BranchInfo::taken(target)
                    } else {
                        BranchInfo::not_taken()
                    });
                }
                inst
            },
        )
}

proptest! {
    #[test]
    fn assembling_arbitrary_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = assemble("fuzz", &text);
    }

    #[test]
    fn assembling_valid_prefix_plus_garbage_never_panics(
        which in 0usize..3,
        bytes in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let (name, source) = corpus::CORPUS[which];
        let text = format!("{source}\n{}", String::from_utf8_lossy(&bytes));
        let _ = assemble(name, &text);
    }

    #[test]
    fn parsing_arbitrary_trace_text_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = parse_trace(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn decoding_arbitrary_program_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_program(&bytes);
    }

    #[test]
    fn canonical_sequences_roundtrip_byte_identically(
        insts in prop::collection::vec(arb_canonical(), 0..48),
    ) {
        for inst in &insts {
            prop_assert!(is_canonical(inst), "generator produced non-canonical {inst}");
        }
        let text = render_trace(&insts);
        let parsed = parse_trace(&text);
        prop_assert!(parsed.is_ok(), "canonical text failed to parse: {parsed:?}");
        prop_assert_eq!(encode_stream(&parsed.unwrap()), encode_stream(&insts));
    }
}
