//! A set-associative (including direct-mapped) cache tag array with LRU
//! replacement and write-back dirty tracking.

use serde::{Deserialize, Serialize};

use crate::CacheConfig;

/// The result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the access hit in the cache.
    pub hit: bool,
    /// On a miss that evicted a dirty line, the evicted line's base address
    /// (so the memory system can schedule the write-back traffic).
    pub evicted_dirty_line: Option<u64>,
}

/// Hit/miss counters kept by the tag array itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of dirty lines evicted (write-backs generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total number of accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Monotonic timestamp of the most recent touch, for LRU.
    last_use: u64,
}

impl Line {
    fn empty() -> Self {
        Line {
            valid: false,
            dirty: false,
            tag: 0,
            last_use: 0,
        }
    }
}

/// A cache tag array.
///
/// Data values are never stored — the simulator is timing-only — but tags,
/// validity, dirtiness and LRU ordering are modelled exactly so that miss
/// ratios and write-back traffic are faithful.
///
/// The geometry arithmetic is precomputed at construction: line and set
/// indexing are shift/mask operations when the set count is a power of two
/// (every paper configuration), falling back to modulo/division only for
/// exotic geometries. Lines live in one flat array (`set * associativity`
/// stride) so a set probe touches a single contiguous cache line of host
/// memory.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All lines, flattened: set `s` occupies
    /// `lines[s * associativity .. (s + 1) * associativity]`.
    lines: Vec<Line>,
    num_sets: usize,
    line_shift: u32,
    /// `log2(num_sets)` when the set count is a power of two.
    set_shift: Option<u32>,
    stats: CacheStats,
    access_counter: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid cache config: {e}"));
        let num_sets = config.num_sets();
        Cache {
            config,
            lines: vec![Line::empty(); num_sets * config.associativity],
            num_sets,
            line_shift: config.line_bytes.trailing_zeros(),
            set_shift: num_sets
                .is_power_of_two()
                .then(|| num_sets.trailing_zeros()),
            stats: CacheStats::default(),
            access_counter: 0,
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated hit/miss/write-back statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The base address of the line containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    fn set_index(&self, addr: u64) -> usize {
        match self.set_shift {
            Some(_) => ((addr >> self.line_shift) as usize) & (self.num_sets - 1),
            None => ((addr >> self.line_shift) as usize) % self.num_sets,
        }
    }

    fn tag(&self, addr: u64) -> u64 {
        match self.set_shift {
            Some(s) => addr >> (self.line_shift + s),
            None => (addr >> self.line_shift) / self.num_sets as u64,
        }
    }

    /// The flat-index range of the ways of one set.
    fn set_range(&self, set_idx: usize) -> std::ops::Range<usize> {
        let assoc = self.config.associativity;
        set_idx * assoc..(set_idx + 1) * assoc
    }

    /// Looks up `addr` without modifying any state (no LRU update, no fill).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let tag = self.tag(addr);
        let set = &self.lines[self.set_range(self.set_index(addr))];
        set.iter().any(|l| l.valid && l.tag == tag)
    }

    /// Performs an access: on a hit, updates LRU (and dirtiness for stores);
    /// on a miss, fills the line, possibly evicting an older one.
    ///
    /// Returns whether the access hit and, on a miss, whether a dirty line
    /// had to be written back (and which one).
    pub fn access(&mut self, addr: u64, is_store: bool) -> CacheAccess {
        self.access_counter += 1;
        let stamp = self.access_counter;
        let set_idx = self.set_index(addr);
        let tag = self.tag(addr);
        let num_sets = self.num_sets as u64;
        let line_shift = self.line_shift;
        let range = self.set_range(set_idx);
        let set = &mut self.lines[range];

        // Hit path: direct-mapped caches (the paper's L1D) have exactly one
        // candidate way, so the tag compare is branch-only; wider caches
        // scan the (small) set.
        let way = if set.len() == 1 {
            if set[0].valid && set[0].tag == tag {
                Some(0)
            } else {
                None
            }
        } else {
            set.iter().position(|l| l.valid && l.tag == tag)
        };
        if let Some(w) = way {
            let line = &mut set[w];
            line.last_use = stamp;
            if is_store {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                evicted_dirty_line: None,
            };
        }

        // Miss: pick a victim — an invalid way if there is one, otherwise the
        // way with the oldest (smallest) monotonic access stamp, i.e. LRU.
        self.stats.misses += 1;
        let victim_idx = if set.len() == 1 {
            0
        } else {
            set.iter()
                .enumerate()
                .find(|(_, l)| !l.valid)
                .map(|(i, _)| i)
                .unwrap_or_else(|| {
                    set.iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.last_use)
                        .map(|(i, _)| i)
                        .expect("associativity is non-zero")
                })
        };
        let victim = &mut set[victim_idx];
        let evicted_dirty_line = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            // Reconstruct the victim's base address from its tag and set index.
            let line_number = victim.tag * num_sets + set_idx as u64;
            Some(line_number << line_shift)
        } else {
            None
        };
        *victim = Line {
            valid: true,
            dirty: is_store,
            tag,
            last_use: stamp,
        };
        CacheAccess {
            hit: false,
            evicted_dirty_line,
        }
    }

    /// Invalidates every line and clears the statistics.
    pub fn reset(&mut self) {
        for line in &mut self.lines {
            *line = Line::empty();
        }
        self.stats = CacheStats::default();
        self.access_counter = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(assoc: usize) -> Cache {
        // 8 sets x assoc ways x 32-byte lines.
        Cache::new(CacheConfig {
            size_bytes: 8 * assoc * 32,
            line_bytes: 32,
            associativity: assoc,
            ports: 1,
            mshrs: 4,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(1);
        assert!(!c.probe(0x100));
        let a = c.access(0x100, false);
        assert!(!a.hit);
        assert!(a.evicted_dirty_line.is_none());
        assert!(c.probe(0x100));
        assert!(c.access(0x104, false).hit, "same line must hit");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = small_cache(1);
        // 8 sets * 32 B = 256 B stride maps to the same set.
        assert!(!c.access(0x0, false).hit);
        assert!(!c.access(0x100, false).hit); // evicts 0x0
        assert!(!c.access(0x0, false).hit); // miss again
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn two_way_avoids_single_conflict() {
        let mut c = small_cache(2);
        assert!(!c.access(0x0, false).hit);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x0, false).hit, "2-way keeps both lines");
        assert!(c.access(0x100, false).hit);
    }

    #[test]
    fn lru_replacement_order() {
        let mut c = small_cache(2);
        c.access(0x0, false); // way A
        c.access(0x100, false); // way B
        c.access(0x0, false); // touch A so B is LRU
        c.access(0x200, false); // evicts B (0x100)
        assert!(c.probe(0x0));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = small_cache(1);
        c.access(0x40, true); // store: line dirty
        let a = c.access(0x140, false); // conflicting line, evicts dirty 0x40
        assert!(!a.hit);
        assert_eq!(a.evicted_dirty_line, Some(0x40));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_reports_nothing() {
        let mut c = small_cache(1);
        c.access(0x40, false);
        let a = c.access(0x140, false);
        assert!(!a.hit);
        assert_eq!(a.evicted_dirty_line, None);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = small_cache(1);
        c.access(0x40, false); // clean fill
        c.access(0x44, true); // store hit marks dirty
        let a = c.access(0x140, false);
        assert_eq!(a.evicted_dirty_line, Some(0x40));
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = small_cache(1);
        assert_eq!(c.line_addr(0x1234), 0x1220);
        assert_eq!(c.line_addr(0x1220), 0x1220);
        assert_eq!(c.line_addr(0x123f), 0x1220);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = small_cache(1);
        c.access(0x40, true);
        c.reset();
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = small_cache(1);
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_l1d_capacity_behaviour() {
        // Streaming 64 KB twice through the paper's 64 KB direct-mapped cache
        // should miss on the first pass (per line) and hit on the second.
        let mut c = Cache::new(CacheConfig::paper_l1d());
        for addr in (0..64 * 1024u64).step_by(32) {
            assert!(!c.access(addr, false).hit);
        }
        for addr in (0..64 * 1024u64).step_by(32) {
            assert!(c.access(addr, false).hit);
        }
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig::paper_l1d());
        // 128 KB working set in a 64 KB direct-mapped cache, streamed twice:
        // every access in the second pass also misses.
        for _ in 0..2 {
            for addr in (0..128 * 1024u64).step_by(32) {
                c.access(addr, false);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    #[should_panic(expected = "invalid cache config")]
    fn invalid_config_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            line_bytes: 32,
            associativity: 1,
            ports: 1,
            mshrs: 1,
            hit_latency: 1,
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A probe immediately after an access to the same address always hits,
        /// regardless of geometry or access history.
        #[test]
        fn access_then_probe_hits(
            addrs in prop::collection::vec(0u64..0x10_0000, 1..200),
            assoc in 1usize..4,
        ) {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 16 * assoc * 64,
                line_bytes: 64,
                associativity: assoc,
                ports: 1,
                mshrs: 4,
                hit_latency: 1,
            });
            for &a in &addrs {
                c.access(a, false);
                prop_assert!(c.probe(a));
            }
        }

        /// hits + misses always equals the number of accesses, and the miss
        /// ratio stays within [0, 1].
        #[test]
        fn stats_are_consistent(addrs in prop::collection::vec(0u64..0x1_0000, 0..300)) {
            let mut c = Cache::new(CacheConfig::paper_l1d());
            for &a in &addrs {
                c.access(a, a % 3 == 0);
            }
            let s = c.stats();
            prop_assert_eq!(s.accesses(), addrs.len() as u64);
            prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
            prop_assert!(s.writebacks <= s.misses);
        }
    }
}
