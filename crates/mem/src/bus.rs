//! The L1–L2 bus: a fixed-bandwidth, in-order transfer channel.
//!
//! The paper uses a 128-bit bus moving 16 bytes per cycle between the on-chip
//! L1 and the off-chip L2. When many threads miss concurrently the bus
//! saturates — Figure 5 reports 89% utilisation with 12 non-decoupled
//! threads and 98% with 16 at a 64-cycle L2 latency — so modelling queueing
//! and utilisation is essential to reproduce that result.

use serde::{Deserialize, Serialize};

/// A simple bandwidth-limited bus with FIFO queueing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bus {
    bytes_per_cycle: u64,
    /// First cycle at which the bus is free to start a new transfer.
    next_free: u64,
    /// Total number of cycles the bus has spent transferring data.
    busy_cycles: u64,
    /// Total number of transfers performed.
    transfers: u64,
    /// Total bytes moved.
    bytes_moved: u64,
    /// Total cycles transfers spent waiting for the bus to become free.
    queueing_cycles: u64,
}

impl Bus {
    /// Creates an idle bus with the given bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    #[must_use]
    pub fn new(bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "bus bandwidth must be non-zero");
        Bus {
            bytes_per_cycle,
            next_free: 0,
            busy_cycles: 0,
            transfers: 0,
            bytes_moved: 0,
            queueing_cycles: 0,
        }
    }

    /// The configured bandwidth in bytes per cycle.
    #[must_use]
    pub fn bytes_per_cycle(&self) -> u64 {
        self.bytes_per_cycle
    }

    /// Schedules a transfer of `bytes` that becomes *eligible* at
    /// `earliest_start` and returns the cycle at which the transfer
    /// completes. Transfers are granted in request order (FIFO).
    pub fn schedule_transfer(&mut self, earliest_start: u64, bytes: u64) -> u64 {
        let duration = bytes.div_ceil(self.bytes_per_cycle).max(1);
        let start = earliest_start.max(self.next_free);
        self.queueing_cycles += start - earliest_start;
        let done = start + duration;
        self.next_free = done;
        self.busy_cycles += duration;
        self.transfers += 1;
        self.bytes_moved += bytes;
        done
    }

    /// Cycle at which the bus next becomes free.
    #[must_use]
    pub fn next_free_cycle(&self) -> u64 {
        self.next_free
    }

    /// Total cycles spent actively transferring.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total number of transfers granted.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total cycles transfers spent queueing behind earlier transfers.
    #[must_use]
    pub fn queueing_cycles(&self) -> u64 {
        self.queueing_cycles
    }

    /// Bus utilisation over a run of `total_cycles` cycles, in `[0, 1]`.
    ///
    /// This is the metric the paper quotes for Figure 5 ("the average bus
    /// utilization is 89% for 12 threads, and 98% for 16 threads").
    #[must_use]
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            (self.busy_cycles.min(total_cycles)) as f64 / total_cycles as f64
        }
    }

    /// Clears all statistics and scheduling state.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.busy_cycles = 0;
        self.transfers = 0;
        self.bytes_moved = 0;
        self.queueing_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_timing() {
        let mut bus = Bus::new(16);
        // 32-byte line at 16 B/cycle = 2 cycles, starting at cycle 10.
        let done = bus.schedule_transfer(10, 32);
        assert_eq!(done, 12);
        assert_eq!(bus.busy_cycles(), 2);
        assert_eq!(bus.transfers(), 1);
        assert_eq!(bus.bytes_moved(), 32);
        assert_eq!(bus.queueing_cycles(), 0);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut bus = Bus::new(16);
        let a = bus.schedule_transfer(0, 32); // 0..2
        let b = bus.schedule_transfer(0, 32); // queued: 2..4
        let c = bus.schedule_transfer(1, 32); // queued: 4..6
        assert_eq!(a, 2);
        assert_eq!(b, 4);
        assert_eq!(c, 6);
        assert_eq!(bus.busy_cycles(), 6);
        assert_eq!(bus.queueing_cycles(), 2 + 3);
    }

    #[test]
    fn gap_leaves_bus_idle() {
        let mut bus = Bus::new(16);
        bus.schedule_transfer(0, 32);
        let done = bus.schedule_transfer(100, 32);
        assert_eq!(done, 102);
        assert_eq!(bus.busy_cycles(), 4);
        assert_eq!(bus.utilization(102), 4.0 / 102.0);
    }

    #[test]
    fn small_transfer_takes_at_least_one_cycle() {
        let mut bus = Bus::new(16);
        let done = bus.schedule_transfer(0, 4);
        assert_eq!(done, 1);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut bus = Bus::new(16);
        for _ in 0..100 {
            bus.schedule_transfer(0, 32);
        }
        assert!(bus.utilization(200) <= 1.0);
        assert!((bus.utilization(200) - 1.0).abs() < 1e-12);
        assert_eq!(bus.utilization(0), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = Bus::new(16);
        bus.schedule_transfer(0, 32);
        bus.reset();
        assert_eq!(bus.busy_cycles(), 0);
        assert_eq!(bus.next_free_cycle(), 0);
        assert_eq!(bus.transfers(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_panics() {
        let _ = Bus::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Transfers never overlap: each completes no earlier than
        /// its start, starts no earlier than requested, and the bus's busy
        /// time never exceeds the time span it has been asked to cover.
        #[test]
        fn transfers_are_serialized(
            reqs in prop::collection::vec((0u64..1000, 1u64..256), 1..50)
        ) {
            let mut bus = Bus::new(16);
            let mut prev_done = 0u64;
            let mut max_done = 0u64;
            for &(start, bytes) in &reqs {
                let done = bus.schedule_transfer(start, bytes);
                prop_assert!(done > start);
                prop_assert!(done >= prev_done);
                prev_done = done;
                max_done = max_done.max(done);
            }
            prop_assert!(bus.busy_cycles() <= max_done);
            prop_assert!((0.0..=1.0).contains(&bus.utilization(max_done)));
        }
    }
}
