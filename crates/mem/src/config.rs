//! Memory system configuration.

use serde::{Deserialize, Serialize};

/// Geometry and behaviour of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (block) size in bytes.
    pub line_bytes: usize,
    /// Associativity (1 = direct mapped).
    pub associativity: usize,
    /// Number of access ports available per cycle.
    pub ports: usize,
    /// Number of Miss Status Holding Registers (outstanding misses).
    pub mshrs: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's L1 data cache: 64 KB, direct mapped, 32-byte lines,
    /// 4 ports, 16 MSHRs, 1-cycle hits, write back.
    #[must_use]
    pub fn paper_l1d() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 32,
            associativity: 1,
            ports: 4,
            mshrs: 16,
            hit_latency: 1,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, capacity not a
    /// multiple of `line_bytes * associativity`).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes > 0, "line size must be non-zero");
        assert!(self.associativity > 0, "associativity must be non-zero");
        let way_bytes = self.line_bytes * self.associativity;
        assert!(
            self.size_bytes > 0 && self.size_bytes.is_multiple_of(way_bytes),
            "cache size must be a non-zero multiple of line_bytes * associativity"
        );
        self.size_bytes / way_bytes
    }

    /// Validates the configuration, returning a human-readable reason when
    /// it is unusable.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description when any field is zero or the
    /// geometry is inconsistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err("line size must be a non-zero power of two".to_string());
        }
        if self.associativity == 0 {
            return Err("associativity must be non-zero".to_string());
        }
        if self.size_bytes == 0
            || !self
                .size_bytes
                .is_multiple_of(self.line_bytes * self.associativity)
        {
            return Err(
                "cache size must be a non-zero multiple of line_bytes * associativity".to_string(),
            );
        }
        if self.ports == 0 {
            return Err("cache must have at least one port".to_string());
        }
        if self.mshrs == 0 {
            return Err("cache must have at least one MSHR".to_string());
        }
        Ok(())
    }
}

/// Configuration of the whole memory subsystem seen by the data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 data cache configuration.
    pub l1d: CacheConfig,
    /// L2 hit latency in cycles (the paper sweeps 1–256; its baseline is 16).
    pub l2_latency: u64,
    /// L1–L2 bus bandwidth in bytes per cycle (paper: 128-bit bus = 16 B/cycle).
    pub bus_bytes_per_cycle: u64,
    /// Whether the L1 is write back (dirty evictions generate bus traffic).
    pub write_back: bool,
    /// Whether stores allocate on miss.
    pub write_allocate: bool,
}

impl MemConfig {
    /// The paper's baseline memory system (Figure 2): 64 KB L1D as above,
    /// 16-cycle L2, 16 bytes/cycle bus, write back, write allocate.
    #[must_use]
    pub fn paper_default() -> Self {
        MemConfig {
            l1d: CacheConfig::paper_l1d(),
            l2_latency: 16,
            bus_bytes_per_cycle: 16,
            write_back: true,
            write_allocate: true,
        }
    }

    /// Same configuration with a different L2 latency (the paper's sweep
    /// variable).
    #[must_use]
    pub fn with_l2_latency(mut self, latency: u64) -> Self {
        self.l2_latency = latency;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description when the L1 geometry is invalid or
    /// the bus bandwidth is zero.
    pub fn validate(&self) -> Result<(), String> {
        self.l1d.validate()?;
        if self.bus_bytes_per_cycle == 0 {
            return Err("bus bandwidth must be non-zero".to_string());
        }
        Ok(())
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1d_geometry() {
        let c = CacheConfig::paper_l1d();
        assert_eq!(c.num_sets(), 2048);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn paper_default_mem_config() {
        let m = MemConfig::paper_default();
        assert_eq!(m.l2_latency, 16);
        assert_eq!(m.bus_bytes_per_cycle, 16);
        assert!(m.write_back);
        assert!(m.validate().is_ok());
        assert_eq!(MemConfig::default(), m);
    }

    #[test]
    fn with_l2_latency_overrides() {
        let m = MemConfig::paper_default().with_l2_latency(256);
        assert_eq!(m.l2_latency, 256);
        assert_eq!(m.l1d, CacheConfig::paper_l1d());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = CacheConfig::paper_l1d();
        c.line_bytes = 0;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::paper_l1d();
        c.line_bytes = 24; // not a power of two
        assert!(c.validate().is_err());

        let mut c = CacheConfig::paper_l1d();
        c.associativity = 0;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::paper_l1d();
        c.size_bytes = 1000; // not a multiple of 32
        assert!(c.validate().is_err());

        let mut c = CacheConfig::paper_l1d();
        c.ports = 0;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::paper_l1d();
        c.mshrs = 0;
        assert!(c.validate().is_err());

        let mut m = MemConfig::paper_default();
        m.bus_bytes_per_cycle = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn set_associative_geometry() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 4,
            ports: 2,
            mshrs: 8,
            hit_latency: 2,
        };
        assert_eq!(c.num_sets(), 128);
        assert!(c.validate().is_ok());
    }
}
