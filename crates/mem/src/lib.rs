//! # dsmt-mem
//!
//! The memory hierarchy model for the DSMT simulator (reproduction of
//! *"The Synergy of Multithreading and Access/Execute Decoupling"*,
//! HPCA 1999).
//!
//! The paper's memory system is:
//!
//! * an on-chip L1 data cache: 64 KB, direct mapped, 32-byte lines,
//!   write back, 4 ports, lockup-free with 16 MSHRs, 1-cycle hits;
//! * an on-chip L1 instruction cache: infinite, 2 ports (modelled by the
//!   fetch stage, not here);
//! * an off-chip L2 cache: infinite, multibanked, with a configurable hit
//!   latency (the paper sweeps 1–256 cycles);
//! * a 128-bit L1–L2 bus transferring 16 bytes/cycle, whose contention and
//!   utilisation matter when many threads miss concurrently (Figure 5).
//!
//! [`MemorySystem`] is the facade the processor core uses: it arbitrates
//! D-cache ports, performs the tag lookup, allocates/merges MSHRs, schedules
//! the L2 access and the bus transfer, and accumulates the statistics
//! (miss ratios, bus utilisation) that the paper's figures report.
//!
//! # Example
//!
//! ```
//! use dsmt_mem::{MemConfig, MemorySystem, AccessKind, AccessResponse};
//!
//! let mut mem = MemorySystem::new(MemConfig::paper_default());
//! mem.begin_cycle(0);
//! match mem.try_access(0, 0x1000, AccessKind::Load) {
//!     AccessResponse::Done { hit, ready_cycle } => {
//!         assert!(!hit);                       // cold miss
//!         assert!(ready_cycle > 16);           // paid the L2 latency + bus
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bus;
mod cache;
mod config;
mod mshr;
mod stats;
mod system;

pub use bus::Bus;
pub use cache::{Cache, CacheAccess, CacheStats};
pub use config::{CacheConfig, MemConfig};
pub use mshr::{MshrFile, MshrOutcome};
pub use stats::MemStats;
pub use system::{AccessKind, AccessResponse, MemorySystem};
