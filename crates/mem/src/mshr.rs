//! Miss Status Holding Registers (MSHRs).
//!
//! The paper's L1 data cache is lockup-free with 16 MSHRs: up to 16 distinct
//! cache lines may be outstanding at once, and secondary misses to a line
//! that is already being fetched merge into the existing entry instead of
//! generating new L2/bus traffic.
//!
//! Latency-scaled configurations replicate MSHRs aggressively (a 16-thread
//! machine at a 256-cycle L2 holds hundreds of outstanding lines), so the
//! file avoids O(occupancy) work per cycle: entries sit in a `VecDeque` in
//! allocation order — fill completions are monotone in that order because
//! the L1–L2 bus grants transfers FIFO ([`crate::Bus::schedule_transfer`])
//! — making [`MshrFile::retire_completed`] a pop-from-the-front loop, and a
//! hash index over line addresses makes lookups and merges O(1).

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

/// A multiply-shift hasher for line addresses (the only key type the MSHR
/// index uses). Far cheaper than the std SipHash and perfectly adequate:
/// keys are not attacker-controlled and collisions only cost a probe.
#[derive(Debug, Default)]
pub struct LineAddrHasher(u64);

impl Hasher for LineAddrHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only fixed-width integer keys are hashed; this path is unused.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        // Fibonacci multiplicative hash: one multiply, good avalanche in the
        // high bits (which HashMap uses after its own mask).
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type LineIndex = HashMap<u64, u64, BuildHasherDefault<LineAddrHasher>>;

/// The outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must schedule the L2 access and
    /// record the fill time with [`MshrFile::set_ready_cycle`].
    Allocated,
    /// The line is already outstanding; the miss merges with the existing
    /// entry and the data will be available at `ready_cycle`.
    Merged {
        /// Cycle at which the already-outstanding fill completes.
        ready_cycle: u64,
    },
    /// All MSHRs are busy: the access must be retried later (structural
    /// hazard — this is what "lockup-free up to N misses" bounds).
    Full,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    line_addr: u64,
    ready_cycle: u64,
}

/// A file of miss status holding registers.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// Outstanding entries in allocation order. Fill completions are
    /// monotone in this order (FIFO bus), so releases pop from the front.
    entries: VecDeque<Entry>,
    /// line address → pending ready cycle, for O(1) lookups and merges.
    index: LineIndex,
    /// Peak simultaneous occupancy observed (useful for ablation studies).
    peak_occupancy: usize,
    /// Number of merged (secondary) misses.
    merges: u64,
    /// Number of times an access found the file full.
    full_events: u64,
}

impl MshrFile {
    /// Creates an empty MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file must have at least one entry");
        MshrFile {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            index: LineIndex::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
            peak_occupancy: 0,
            merges: 0,
            full_events: 0,
        }
    }

    /// Number of entries currently outstanding.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Total capacity of the file.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Peak simultaneous occupancy observed since construction/reset.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of secondary misses that merged into an existing entry.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of accesses rejected because the file was full.
    #[must_use]
    pub fn full_events(&self) -> u64 {
        self.full_events
    }

    /// Whether the file has no free entry.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Returns the pending fill-completion cycle if `line_addr` is already
    /// outstanding, without counting a merge.
    #[must_use]
    pub fn lookup(&self, line_addr: u64) -> Option<u64> {
        self.index.get(&line_addr).copied()
    }

    /// Records a secondary (merged) miss on an outstanding line.
    pub fn record_merge(&mut self) {
        self.merges += 1;
    }

    /// Presents a miss on `line_addr` to the file.
    ///
    /// If the line is already outstanding the miss merges; if there is a free
    /// entry one is allocated (the caller must then call
    /// [`MshrFile::set_ready_cycle`] once it has scheduled the fill);
    /// otherwise the file is full.
    pub fn lookup_or_allocate(&mut self, line_addr: u64) -> MshrOutcome {
        if let Some(&ready_cycle) = self.index.get(&line_addr) {
            self.merges += 1;
            return MshrOutcome::Merged { ready_cycle };
        }
        if self.is_full() {
            self.full_events += 1;
            return MshrOutcome::Full;
        }
        self.entries.push_back(Entry {
            line_addr,
            ready_cycle: u64::MAX,
        });
        self.index.insert(line_addr, u64::MAX);
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Records the cycle at which the fill for `line_addr` completes.
    ///
    /// # Panics
    ///
    /// Panics if no entry for `line_addr` exists (allocate first).
    pub fn set_ready_cycle(&mut self, line_addr: u64, ready_cycle: u64) {
        let slot = self
            .index
            .get_mut(&line_addr)
            .expect("set_ready_cycle called for a line with no MSHR entry");
        *slot = ready_cycle;
        // The deque entry is almost always the most recent allocation; walk
        // from the back for the generic case.
        let entry = self
            .entries
            .iter_mut()
            .rev()
            .find(|e| e.line_addr == line_addr)
            .expect("index and release queue agree on outstanding lines");
        entry.ready_cycle = ready_cycle;
    }

    /// Releases every entry whose fill has completed by `cycle`.
    ///
    /// Entries are released strictly in allocation order: the FIFO bus
    /// guarantees fills complete in the order they were scheduled, so the
    /// first still-pending entry bounds everything behind it.
    pub fn retire_completed(&mut self, cycle: u64) {
        while let Some(front) = self.entries.front() {
            if front.ready_cycle > cycle {
                break;
            }
            let e = self.entries.pop_front().expect("front exists");
            self.index.remove(&e.line_addr);
        }
    }

    /// Clears all entries and statistics.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.peak_occupancy = 0;
        self.merges = 0;
        self.full_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.lookup_or_allocate(0x100), MshrOutcome::Allocated);
        m.set_ready_cycle(0x100, 50);
        assert_eq!(
            m.lookup_or_allocate(0x100),
            MshrOutcome::Merged { ready_cycle: 50 }
        );
        assert_eq!(m.merges(), 1);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.lookup_or_allocate(0x0), MshrOutcome::Allocated);
        assert_eq!(m.lookup_or_allocate(0x20), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.lookup_or_allocate(0x40), MshrOutcome::Full);
        assert_eq!(m.full_events(), 1);
        // But a merge to an outstanding line still works when full.
        m.set_ready_cycle(0x0, 10);
        assert_eq!(
            m.lookup_or_allocate(0x0),
            MshrOutcome::Merged { ready_cycle: 10 }
        );
    }

    #[test]
    fn retire_frees_entries() {
        let mut m = MshrFile::new(2);
        m.lookup_or_allocate(0x0);
        m.set_ready_cycle(0x0, 10);
        m.lookup_or_allocate(0x20);
        m.set_ready_cycle(0x20, 30);
        m.retire_completed(10);
        assert_eq!(m.occupancy(), 1);
        assert!(!m.is_full());
        m.retire_completed(30);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn retire_keeps_unset_entries() {
        let mut m = MshrFile::new(2);
        m.lookup_or_allocate(0x0);
        // ready_cycle not set yet => must not be retired.
        m.retire_completed(1_000_000);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn peak_occupancy_tracks_maximum() {
        let mut m = MshrFile::new(8);
        for i in 0..5u64 {
            m.lookup_or_allocate(i * 32);
            m.set_ready_cycle(i * 32, 100);
        }
        m.retire_completed(100);
        m.lookup_or_allocate(0x1000);
        assert_eq!(m.peak_occupancy(), 5);
    }

    #[test]
    #[should_panic(expected = "no MSHR entry")]
    fn set_ready_without_allocation_panics() {
        let mut m = MshrFile::new(2);
        m.set_ready_cycle(0x123, 4);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = MshrFile::new(2);
        m.lookup_or_allocate(0x0);
        m.lookup_or_allocate(0x0);
        m.reset();
        assert_eq!(m.occupancy(), 0);
        assert_eq!(m.merges(), 0);
        assert_eq!(m.peak_occupancy(), 0);
        assert_eq!(m.full_events(), 0);
    }
}
