//! Aggregate statistics reported by the memory system.

use serde::{Deserialize, Serialize};

/// Counters accumulated by [`crate::MemorySystem`] over a simulation run.
///
/// These feed directly into the paper's figures: load/store miss ratios
/// (Figure 1-c), and external bus utilisation (Figure 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// Load accesses that hit in the L1 data cache.
    pub load_hits: u64,
    /// Load accesses that missed in the L1 data cache.
    pub load_misses: u64,
    /// Store accesses that hit in the L1 data cache.
    pub store_hits: u64,
    /// Store accesses that missed in the L1 data cache.
    pub store_misses: u64,
    /// Secondary misses that merged into an outstanding MSHR.
    pub mshr_merges: u64,
    /// Accesses rejected because every MSHR was busy.
    pub mshr_full_rejections: u64,
    /// Accesses rejected because every D-cache port was busy.
    pub port_rejections: u64,
    /// Dirty lines written back to the L2.
    pub writebacks: u64,
    /// Cycles the L1–L2 bus spent busy.
    pub bus_busy_cycles: u64,
    /// Total transfers over the L1–L2 bus (fills + write-backs).
    pub bus_transfers: u64,
    /// Total bytes moved over the L1–L2 bus.
    pub bus_bytes: u64,
}

impl MemStats {
    /// Total load accesses (hits + misses).
    #[must_use]
    pub fn load_accesses(&self) -> u64 {
        self.load_hits + self.load_misses
    }

    /// Total store accesses (hits + misses).
    #[must_use]
    pub fn store_accesses(&self) -> u64 {
        self.store_hits + self.store_misses
    }

    /// Load miss ratio in `[0, 1]` (0 when there were no loads).
    #[must_use]
    pub fn load_miss_ratio(&self) -> f64 {
        ratio(self.load_misses, self.load_accesses())
    }

    /// Store miss ratio in `[0, 1]` (0 when there were no stores).
    #[must_use]
    pub fn store_miss_ratio(&self) -> f64 {
        ratio(self.store_misses, self.store_accesses())
    }

    /// Overall data-cache miss ratio.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        ratio(
            self.load_misses + self.store_misses,
            self.load_accesses() + self.store_accesses(),
        )
    }

    /// External bus utilisation over a run of `total_cycles`.
    #[must_use]
    pub fn bus_utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            (self.bus_busy_cycles.min(total_cycles)) as f64 / total_cycles as f64
        }
    }

    /// Element-wise accumulation of another stats block (used when merging
    /// per-thread or per-phase statistics).
    pub fn accumulate(&mut self, other: &MemStats) {
        self.load_hits += other.load_hits;
        self.load_misses += other.load_misses;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.mshr_merges += other.mshr_merges;
        self.mshr_full_rejections += other.mshr_full_rejections;
        self.port_rejections += other.port_rejections;
        self.writebacks += other.writebacks;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.bus_transfers += other.bus_transfers;
        self.bus_bytes += other.bus_bytes;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_with_no_accesses_are_zero() {
        let s = MemStats::default();
        assert_eq!(s.load_miss_ratio(), 0.0);
        assert_eq!(s.store_miss_ratio(), 0.0);
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.bus_utilization(0), 0.0);
    }

    #[test]
    fn ratios_compute_correctly() {
        let s = MemStats {
            load_hits: 75,
            load_misses: 25,
            store_hits: 40,
            store_misses: 10,
            ..MemStats::default()
        };
        assert!((s.load_miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.store_miss_ratio() - 0.2).abs() < 1e-12);
        assert!((s.miss_ratio() - 35.0 / 150.0).abs() < 1e-12);
        assert_eq!(s.load_accesses(), 100);
        assert_eq!(s.store_accesses(), 50);
    }

    #[test]
    fn bus_utilization_bounds() {
        let s = MemStats {
            bus_busy_cycles: 500,
            ..MemStats::default()
        };
        assert!((s.bus_utilization(1000) - 0.5).abs() < 1e-12);
        assert!((s.bus_utilization(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = MemStats {
            load_hits: 1,
            load_misses: 2,
            store_hits: 3,
            store_misses: 4,
            mshr_merges: 5,
            mshr_full_rejections: 6,
            port_rejections: 7,
            writebacks: 8,
            bus_busy_cycles: 9,
            bus_transfers: 10,
            bus_bytes: 11,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.load_hits, 2);
        assert_eq!(a.bus_bytes, 22);
        assert_eq!(a.port_rejections, 14);
    }
}
