//! The memory-system facade used by the processor core.

use crate::{Bus, Cache, MemConfig, MemStats, MshrFile, MshrOutcome};

/// The kind of data-cache access being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (read).
    Load,
    /// A store (write).
    Store,
}

impl AccessKind {
    /// Whether this is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// The response to a data-cache access attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResponse {
    /// The access was accepted.
    Done {
        /// Whether the access was satisfied without allocating a new
        /// outstanding miss. This includes *delayed hits* that merge into an
        /// in-flight fill: they are counted as hits (they generate no new L2
        /// traffic) but their `ready_cycle` reflects the pending fill, not
        /// the hit latency.
        hit: bool,
        /// Cycle at which the data is available to dependent instructions
        /// (hit latency for plain hits; fill completion for misses and
        /// delayed hits).
        ready_cycle: u64,
    },
    /// All D-cache ports are already used this cycle; retry next cycle.
    NoPort,
    /// The access misses but every MSHR is busy; retry later.
    NoMshr,
}

impl AccessResponse {
    /// Whether the access was accepted this cycle.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self, AccessResponse::Done { .. })
    }
}

/// The complete L1D + MSHR + bus + L2 model.
///
/// Timing model for a miss accepted at cycle `c`:
///
/// 1. the request spends `l1.hit_latency` cycles detecting the miss;
/// 2. the L2 (infinite, multibanked) produces the line `l2_latency` cycles
///    later;
/// 3. the 32-byte line is transferred over the shared bus at
///    `bus_bytes_per_cycle`, queueing FIFO behind earlier transfers
///    (including write-backs of dirty victims);
/// 4. the data is ready when the transfer completes, and the MSHR entry is
///    released at that point.
#[derive(Debug)]
pub struct MemorySystem {
    config: MemConfig,
    l1d: Cache,
    mshrs: MshrFile,
    bus: Bus,
    stats: MemStats,
    ports_used: usize,
    current_cycle: u64,
}

impl MemorySystem {
    /// Creates a memory system from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`MemConfig::validate`]).
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid memory config: {e}"));
        MemorySystem {
            l1d: Cache::new(config.l1d),
            mshrs: MshrFile::new(config.l1d.mshrs),
            bus: Bus::new(config.bus_bytes_per_cycle),
            stats: MemStats::default(),
            ports_used: 0,
            current_cycle: 0,
            config,
        }
    }

    /// The configuration this memory system was built with.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Starts a new cycle: releases the per-cycle port budget and retires
    /// MSHR entries whose fills completed.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.current_cycle = cycle;
        self.ports_used = 0;
        self.mshrs.retire_completed(cycle);
    }

    /// Number of D-cache ports still available this cycle.
    #[must_use]
    pub fn free_ports(&self) -> usize {
        self.config.l1d.ports.saturating_sub(self.ports_used)
    }

    /// Attempts a data-cache access at `cycle` for the byte address `addr`.
    ///
    /// Consumes one D-cache port on success (and on `NoMshr`, since the tag
    /// lookup still happened). Misses allocate an MSHR, schedule the L2
    /// access and the line fill over the bus, and account write-back traffic
    /// for dirty victims.
    pub fn try_access(&mut self, cycle: u64, addr: u64, kind: AccessKind) -> AccessResponse {
        debug_assert_eq!(
            cycle, self.current_cycle,
            "begin_cycle must be called for each simulated cycle"
        );
        if self.ports_used >= self.config.l1d.ports {
            self.stats.port_rejections += 1;
            return AccessResponse::NoPort;
        }

        let line_addr = self.l1d.line_addr(addr);
        let is_store = kind.is_store();
        let hit_latency = self.config.l1d.hit_latency;

        // A line that is still being filled is a *delayed hit*: the tag may
        // already be installed, but the data is not available until the fill
        // completes. Such accesses merge with the outstanding MSHR entry:
        // they count as hits (no new L2 traffic) but see the fill latency.
        if let Some(pending_ready) = self.mshrs.lookup(line_addr) {
            self.ports_used += 1;
            self.mshrs.record_merge();
            self.stats.mshr_merges += 1;
            self.record_access(kind, true);
            let _ = self.l1d.access(addr, is_store); // keep LRU / dirty state coherent
            return AccessResponse::Done {
                hit: true,
                ready_cycle: pending_ready.max(cycle + hit_latency),
            };
        }

        // If this would miss and every MSHR is busy, reject before touching
        // cache state so the retry behaves identically.
        if !self.l1d.probe(addr) && self.mshrs.is_full() {
            self.stats.mshr_full_rejections += 1;
            return AccessResponse::NoMshr;
        }

        self.ports_used += 1;
        let access = self.l1d.access(addr, is_store);
        self.record_access(kind, access.hit);

        if access.hit {
            return AccessResponse::Done {
                hit: true,
                ready_cycle: cycle + hit_latency,
            };
        }

        // Miss path: write-back the dirty victim first (it occupies the bus
        // ahead of the fill in this simple in-order bus model).
        if self.config.write_back && access.evicted_dirty_line.is_some() {
            self.bus
                .schedule_transfer(cycle + hit_latency, self.config.l1d.line_bytes as u64);
            self.stats.writebacks += 1;
        }

        let ready_cycle = match self.mshrs.lookup_or_allocate(line_addr) {
            MshrOutcome::Allocated => {
                // L2 access starts after the miss is detected; the line then
                // crosses the bus.
                let l2_data_ready = cycle + hit_latency + self.config.l2_latency;
                let fill_done = self
                    .bus
                    .schedule_transfer(l2_data_ready, self.config.l1d.line_bytes as u64);
                self.mshrs.set_ready_cycle(line_addr, fill_done);
                fill_done
            }
            MshrOutcome::Merged { .. } | MshrOutcome::Full => {
                // Cannot happen: outstanding lines were handled above and the
                // full check precedes allocation.
                unreachable!("inconsistent MSHR state in try_access")
            }
        };

        AccessResponse::Done {
            hit: false,
            ready_cycle,
        }
    }

    fn record_access(&mut self, kind: AccessKind, hit: bool) {
        match (kind, hit) {
            (AccessKind::Load, true) => self.stats.load_hits += 1,
            (AccessKind::Load, false) => self.stats.load_misses += 1,
            (AccessKind::Store, true) => self.stats.store_hits += 1,
            (AccessKind::Store, false) => self.stats.store_misses += 1,
        }
    }

    /// Accumulated statistics (bus counters are folded in on the fly).
    #[must_use]
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats;
        s.bus_busy_cycles = self.bus.busy_cycles();
        s.bus_transfers = self.bus.transfers();
        s.bus_bytes = self.bus.bytes_moved();
        s
    }

    /// Current number of outstanding misses.
    #[must_use]
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.occupancy()
    }

    /// Peak number of simultaneously outstanding misses.
    #[must_use]
    pub fn peak_outstanding_misses(&self) -> usize {
        self.mshrs.peak_occupancy()
    }

    /// External bus utilisation over `total_cycles`.
    #[must_use]
    pub fn bus_utilization(&self, total_cycles: u64) -> f64 {
        self.bus.utilization(total_cycles)
    }

    /// Resets caches, MSHRs, bus and statistics (configuration unchanged).
    pub fn reset(&mut self) {
        self.l1d.reset();
        self.mshrs.reset();
        self.bus.reset();
        self.stats = MemStats::default();
        self.ports_used = 0;
        self.current_cycle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    fn small_system(l2_latency: u64) -> MemorySystem {
        MemorySystem::new(MemConfig {
            l1d: CacheConfig {
                size_bytes: 1024,
                line_bytes: 32,
                associativity: 1,
                ports: 2,
                mshrs: 2,
                hit_latency: 1,
            },
            l2_latency,
            bus_bytes_per_cycle: 16,
            write_back: true,
            write_allocate: true,
        })
    }

    #[test]
    fn cold_miss_pays_l2_and_bus() {
        let mut m = small_system(16);
        m.begin_cycle(0);
        match m.try_access(0, 0x100, AccessKind::Load) {
            AccessResponse::Done { hit, ready_cycle } => {
                assert!(!hit);
                // 1 (hit detect) + 16 (L2) + 2 (32B over 16B/cyc bus) = 19
                assert_eq!(ready_cycle, 19);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = m.stats();
        assert_eq!(s.load_misses, 1);
        assert_eq!(s.bus_transfers, 1);
        assert_eq!(s.bus_bytes, 32);
    }

    #[test]
    fn hit_after_fill() {
        let mut m = small_system(16);
        m.begin_cycle(0);
        m.try_access(0, 0x100, AccessKind::Load);
        m.begin_cycle(30);
        match m.try_access(30, 0x104, AccessKind::Load) {
            AccessResponse::Done { hit, ready_cycle } => {
                assert!(hit);
                assert_eq!(ready_cycle, 31);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn port_limit_enforced() {
        let mut m = small_system(16);
        m.begin_cycle(0);
        assert!(m.try_access(0, 0x0, AccessKind::Load).is_done());
        assert!(m.try_access(0, 0x1000, AccessKind::Load).is_done());
        assert_eq!(m.free_ports(), 0);
        assert_eq!(
            m.try_access(0, 0x2000, AccessKind::Load),
            AccessResponse::NoPort
        );
        // Next cycle the ports are free again; an access to an already
        // outstanding line is accepted even though the MSHRs are busy.
        m.begin_cycle(1);
        assert_eq!(m.free_ports(), 2);
        assert!(m.try_access(1, 0x8, AccessKind::Load).is_done());
        assert_eq!(m.stats().port_rejections, 1);
    }

    #[test]
    fn mshr_limit_enforced_and_merging_allowed() {
        let mut m = small_system(64);
        m.begin_cycle(0);
        assert!(m.try_access(0, 0x0, AccessKind::Load).is_done());
        assert!(m.try_access(0, 0x1000, AccessKind::Load).is_done());
        // Both MSHRs busy; a third distinct line must be rejected.
        m.begin_cycle(1);
        assert_eq!(
            m.try_access(1, 0x2000, AccessKind::Load),
            AccessResponse::NoMshr
        );
        // But another access to an outstanding line merges (a delayed hit
        // that sees the fill latency).
        match m.try_access(1, 0x8, AccessKind::Load) {
            AccessResponse::Done { hit, ready_cycle } => {
                assert!(hit);
                assert!(ready_cycle >= 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.stats().mshr_full_rejections, 1);
        assert!(m.stats().mshr_merges >= 1);
        assert_eq!(m.peak_outstanding_misses(), 2);
    }

    #[test]
    fn mshrs_release_after_fill() {
        let mut m = small_system(16);
        m.begin_cycle(0);
        m.try_access(0, 0x0, AccessKind::Load);
        m.try_access(0, 0x1000, AccessKind::Load);
        // Fills complete by cycle 25; at cycle 30 new misses are accepted.
        m.begin_cycle(30);
        assert!(m.try_access(30, 0x2000, AccessKind::Load).is_done());
        assert_eq!(m.outstanding_misses(), 1);
    }

    #[test]
    fn secondary_miss_merges_without_new_bus_traffic() {
        let mut m = small_system(32);
        m.begin_cycle(0);
        m.try_access(0, 0x40, AccessKind::Load);
        let transfers_before = m.stats().bus_transfers;
        m.begin_cycle(1);
        match m.try_access(1, 0x48, AccessKind::Load) {
            AccessResponse::Done { hit, ready_cycle } => {
                // A delayed hit: counted as a hit, but the data only arrives
                // when the outstanding fill completes.
                assert!(hit);
                assert!(ready_cycle > 30);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.stats().bus_transfers, transfers_before);
        assert_eq!(m.stats().mshr_merges, 1);
        assert_eq!(m.stats().load_misses, 1, "only the primary miss counts");
        assert_eq!(m.stats().load_hits, 1);
    }

    #[test]
    fn dirty_eviction_generates_writeback_traffic() {
        let mut m = small_system(4);
        m.begin_cycle(0);
        m.try_access(0, 0x40, AccessKind::Store); // fill + dirty
        m.begin_cycle(100);
        // 1024-byte direct-mapped cache: 0x40 + 1024 conflicts with 0x40.
        m.try_access(100, 0x40 + 1024, AccessKind::Load);
        let s = m.stats();
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.bus_transfers, 3); // store fill + writeback + load fill
    }

    #[test]
    fn bus_contention_delays_fills() {
        let mut m = small_system(16);
        m.begin_cycle(0);
        let r1 = m.try_access(0, 0x0, AccessKind::Load);
        let r2 = m.try_access(0, 0x1000, AccessKind::Load);
        let (c1, c2) = match (r1, r2) {
            (
                AccessResponse::Done { ready_cycle: a, .. },
                AccessResponse::Done { ready_cycle: b, .. },
            ) => (a, b),
            other => panic!("unexpected {other:?}"),
        };
        // Both L2 accesses complete at the same time, but the second line
        // must wait for the first to cross the bus.
        assert_eq!(c1, 19);
        assert_eq!(c2, 21);
    }

    #[test]
    fn stats_reflect_store_misses() {
        let mut m = small_system(16);
        m.begin_cycle(0);
        m.try_access(0, 0x0, AccessKind::Store);
        m.begin_cycle(40);
        m.try_access(40, 0x4, AccessKind::Store);
        let s = m.stats();
        assert_eq!(s.store_misses, 1);
        assert_eq!(s.store_hits, 1);
        assert!((s.store_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn higher_l2_latency_delays_ready_cycle() {
        for lat in [1u64, 16, 64, 256] {
            let mut m = small_system(lat);
            m.begin_cycle(0);
            match m.try_access(0, 0x0, AccessKind::Load) {
                AccessResponse::Done { ready_cycle, .. } => {
                    assert_eq!(ready_cycle, 1 + lat + 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = small_system(16);
        m.begin_cycle(0);
        m.try_access(0, 0x0, AccessKind::Load);
        m.reset();
        assert_eq!(m.stats(), MemStats::default());
        assert_eq!(m.outstanding_misses(), 0);
        m.begin_cycle(0);
        match m.try_access(0, 0x0, AccessKind::Load) {
            AccessResponse::Done { hit, .. } => assert!(!hit),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_default_construction() {
        let m = MemorySystem::new(MemConfig::paper_default());
        assert_eq!(m.config().l2_latency, 16);
        assert_eq!(m.free_ports(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The memory system never hands back a ready cycle in the past, and
        /// its hit/miss counters always sum to the number of accepted accesses.
        #[test]
        fn ready_cycles_are_causal(
            addrs in prop::collection::vec((0u64..0x4000, prop::bool::ANY), 1..300),
            l2 in 1u64..128,
        ) {
            let mut m = MemorySystem::new(MemConfig::paper_default().with_l2_latency(l2));
            let mut accepted = 0u64;
            for (i, &(addr, is_store)) in addrs.iter().enumerate() {
                let cycle = i as u64;
                m.begin_cycle(cycle);
                let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
                match m.try_access(cycle, addr, kind) {
                    AccessResponse::Done { ready_cycle, hit: _ } => {
                        accepted += 1;
                        prop_assert!(ready_cycle > cycle);
                    }
                    AccessResponse::NoPort | AccessResponse::NoMshr => {}
                }
            }
            let s = m.stats();
            prop_assert_eq!(
                s.load_hits + s.load_misses + s.store_hits + s.store_misses,
                accepted
            );
        }
    }
}
