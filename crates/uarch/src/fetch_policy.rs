//! Fetch thread selection.
//!
//! The paper fetches from two threads per cycle, each supplying up to eight
//! consecutive instructions, choosing "those with less instructions pending
//! to be dispatched (similar to the RR-2.8 with I-COUNT schemes)". That
//! load-aware scheme is [`icount_pick`]; the plain rotation it is compared
//! against in Section 3.1 (RR-2.8 without I-COUNT) is [`round_robin_pick`].

/// Selects up to `max_threads` eligible threads with the fewest pending
/// (fetched but not yet dispatched) instructions.
///
/// Ties are broken by thread index rotated by `rotation`, so that equally
/// loaded threads share fetch bandwidth fairly over time.
///
/// # Panics
///
/// Panics if `pending` and `eligible` have different lengths.
///
/// # Example
///
/// ```
/// use dsmt_uarch::icount_pick;
///
/// let pending = [5, 0, 3, 0];
/// let eligible = [true, true, true, true];
/// // The two least-loaded threads are 1 and 3.
/// assert_eq!(icount_pick(&pending, &eligible, 2, 0), vec![1, 3]);
/// ```
#[must_use]
pub fn icount_pick(
    pending: &[usize],
    eligible: &[bool],
    max_threads: usize,
    rotation: usize,
) -> Vec<usize> {
    let mut out = Vec::new();
    icount_pick_into(pending, eligible, max_threads, rotation, &mut out);
    out
}

/// [`icount_pick`] writing into a caller-owned buffer (cleared first): the
/// allocation-free form used by the simulator hot loop, which calls the
/// fetch policy every cycle with a reused scratch `Vec`.
///
/// # Panics
///
/// Panics if `pending` and `eligible` have different lengths.
pub fn icount_pick_into(
    pending: &[usize],
    eligible: &[bool],
    max_threads: usize,
    rotation: usize,
    out: &mut Vec<usize>,
) {
    assert_eq!(
        pending.len(),
        eligible.len(),
        "pending and eligible must describe the same threads"
    );
    out.clear();
    let n = pending.len();
    if n == 0 || max_threads == 0 {
        return;
    }
    out.extend((0..n).filter(|&i| eligible[i]));
    // Sort by pending count; tie-break by rotated index for fairness. The
    // key is a total order (the rotated index is unique), so the unstable
    // sort is deterministic.
    out.sort_unstable_by_key(|&i| (pending[i], (i + n - rotation % n) % n));
    out.truncate(max_threads);
}

/// Selects up to `max_threads` eligible threads by plain rotation: thread
/// `rotation % n` has top priority this cycle, then indices wrap upward.
/// Pending-instruction counts are ignored — this is the paper's RR-2.8
/// scheme *without* I-COUNT, the baseline its fetch discussion compares
/// against.
#[must_use]
pub fn round_robin_pick(eligible: &[bool], max_threads: usize, rotation: usize) -> Vec<usize> {
    let mut out = Vec::new();
    round_robin_pick_into(eligible, max_threads, rotation, &mut out);
    out
}

/// [`round_robin_pick`] writing into a caller-owned buffer (cleared first):
/// the allocation-free form used by the simulator hot loop.
pub fn round_robin_pick_into(
    eligible: &[bool],
    max_threads: usize,
    rotation: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    let n = eligible.len();
    if n == 0 || max_threads == 0 {
        return;
    }
    let start = rotation % n;
    out.extend(
        (0..n)
            .map(|i| (start + i) % n)
            .filter(|&t| eligible[t])
            .take(max_threads),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_least_loaded() {
        let pending = [10, 2, 7, 1];
        let eligible = [true; 4];
        assert_eq!(icount_pick(&pending, &eligible, 2, 0), vec![3, 1]);
    }

    #[test]
    fn respects_eligibility() {
        let pending = [10, 2, 7, 1];
        let eligible = [true, false, true, false];
        assert_eq!(icount_pick(&pending, &eligible, 2, 0), vec![2, 0]);
    }

    #[test]
    fn fewer_candidates_than_slots() {
        let pending = [3, 4];
        let eligible = [true, false];
        assert_eq!(icount_pick(&pending, &eligible, 2, 0), vec![0]);
        assert_eq!(
            icount_pick(&pending, &[false, false], 2, 0),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn zero_slots_returns_empty() {
        let pending = [1, 2];
        let eligible = [true, true];
        assert_eq!(icount_pick(&pending, &eligible, 0, 0), Vec::<usize>::new());
    }

    #[test]
    fn ties_rotate_with_rotation_parameter() {
        let pending = [0, 0, 0, 0];
        let eligible = [true; 4];
        assert_eq!(icount_pick(&pending, &eligible, 2, 0), vec![0, 1]);
        assert_eq!(icount_pick(&pending, &eligible, 2, 1), vec![1, 2]);
        assert_eq!(icount_pick(&pending, &eligible, 2, 3), vec![3, 0]);
    }

    #[test]
    fn rotation_fairness_over_many_cycles() {
        let pending = [0usize; 4];
        let eligible = [true; 4];
        let mut counts = [0usize; 4];
        for cycle in 0..400 {
            for t in icount_pick(&pending, &eligible, 2, cycle) {
                counts[t] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 200), "counts {counts:?}");
    }

    #[test]
    fn single_thread_always_picked() {
        assert_eq!(icount_pick(&[100], &[true], 2, 5), vec![0]);
    }

    #[test]
    #[should_panic(expected = "same threads")]
    fn mismatched_lengths_panic() {
        let _ = icount_pick(&[1, 2], &[true], 2, 0);
    }

    #[test]
    fn empty_inputs_return_empty() {
        assert_eq!(icount_pick(&[], &[], 2, 0), Vec::<usize>::new());
    }

    #[test]
    fn round_robin_rotates_priority() {
        let eligible = [true; 4];
        assert_eq!(round_robin_pick(&eligible, 2, 0), vec![0, 1]);
        assert_eq!(round_robin_pick(&eligible, 2, 1), vec![1, 2]);
        assert_eq!(round_robin_pick(&eligible, 2, 3), vec![3, 0]);
        assert_eq!(round_robin_pick(&eligible, 2, 7), vec![3, 0]);
    }

    #[test]
    fn round_robin_skips_ineligible_threads() {
        let eligible = [false, true, false, true];
        assert_eq!(round_robin_pick(&eligible, 2, 0), vec![1, 3]);
        assert_eq!(round_robin_pick(&eligible, 2, 2), vec![3, 1]);
        assert_eq!(round_robin_pick(&eligible, 1, 2), vec![3]);
        assert_eq!(round_robin_pick(&[false; 4], 2, 0), Vec::<usize>::new());
    }

    #[test]
    fn round_robin_ignores_load_unlike_icount() {
        // Thread 0 is far more loaded, but round-robin at rotation 0 still
        // fetches it first; I-COUNT prefers the idle threads.
        let pending = [100, 0, 0, 0];
        let eligible = [true; 4];
        assert_eq!(round_robin_pick(&eligible, 2, 0), vec![0, 1]);
        assert_eq!(icount_pick(&pending, &eligible, 2, 0), vec![1, 2]);
    }

    #[test]
    fn round_robin_edge_cases() {
        assert_eq!(round_robin_pick(&[], 2, 5), Vec::<usize>::new());
        assert_eq!(round_robin_pick(&[true], 0, 0), Vec::<usize>::new());
        assert_eq!(round_robin_pick(&[true], 4, 9), vec![0]);
    }

    #[test]
    fn round_robin_fairness_over_many_cycles() {
        let eligible = [true; 4];
        let mut counts = [0usize; 4];
        for cycle in 0..400 {
            for t in round_robin_pick(&eligible, 2, cycle) {
                counts[t] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 200), "counts {counts:?}");
    }
}
