//! # dsmt-uarch
//!
//! Reusable micro-architecture building blocks for the DSMT simulator
//! (reproduction of *"The Synergy of Multithreading and Access/Execute
//! Decoupling"*, HPCA 1999):
//!
//! * [`BranchPredictor`] — the paper's 2K-entry, 2-bit branch history table;
//! * [`RegisterFile`] — register rename map, free list and physical
//!   register ready times (one instance per thread per unit);
//! * [`Rob`] — a reorder buffer supporting in-order graduation;
//! * [`BoundedQueue`] — the per-thread Instruction Queue and Store Address
//!   Queue;
//! * [`FuPool`] — a pool of (optionally pipelined) functional units;
//! * [`RoundRobin`] — the rotating thread priority used by the shared issue
//!   stage;
//! * [`icount_pick`] — the RR-2.8 / I-COUNT fetch thread selection policy;
//! * [`EventWheel`] — an O(1) timing wheel for deferred completion events.
//!
//! These pieces are deliberately independent of the simulator's main loop so
//! that they can be unit-tested (and reused in ablation studies) in
//! isolation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbiter;
mod fetch_policy;
mod fu;
mod predictor;
mod queue;
mod regfile;
mod rob;
mod wheel;

pub use arbiter::RoundRobin;
pub use fetch_policy::{icount_pick, icount_pick_into, round_robin_pick, round_robin_pick_into};
pub use fu::FuPool;
pub use predictor::{BranchPredictor, PredictorStats};
pub use queue::BoundedQueue;
pub use regfile::{PhysReg, RegisterFile, RenameOutcome};
pub use rob::{Rob, RobToken};
pub use wheel::{EventWheel, WakeList};
