//! Functional unit pools.
//!
//! The paper's configuration has 4 AP functional units (1-cycle latency) and
//! 4 EP functional units (4-cycle latency), all general purpose within
//! their unit and shared by every thread.
//!
//! Occupancy is tracked with O(1) counters instead of scanning a
//! per-unit `next_accept` array on every issue attempt (the simulator
//! probes the pools several times per cycle):
//!
//! * **pipelined** units accept one operation per cycle each, so a single
//!   `(cycle, issued_this_cycle)` pair fully describes availability;
//! * **non-pipelined** units are busy for the whole latency, so a FIFO of
//!   release cycles (monotone, because issue cycles are monotone and the
//!   latency is constant) gives O(1) amortised issue and O(log n) probes.
//!
//! Both representations require the issue stream to be non-decreasing in
//! cycle, which the cycle-by-cycle simulator guarantees; this is asserted
//! in debug builds.

use std::collections::VecDeque;

/// A pool of identical functional units.
///
/// Pipelined units accept one new operation per cycle regardless of latency;
/// non-pipelined units are busy for the whole latency of the operation.
#[derive(Debug, Clone)]
pub struct FuPool {
    count: usize,
    latency: u64,
    pipelined: bool,
    /// Pipelined pools: the cycle of the most recent issue...
    last_issue_cycle: u64,
    /// ...and how many operations were issued in that cycle.
    issued_this_cycle: usize,
    /// Non-pipelined pools: release cycles of busy units, oldest first.
    /// Monotone non-decreasing, so expiry is a pop from the front.
    busy_until: VecDeque<u64>,
    /// Totals.
    total_issued: u64,
    busy_unit_cycles: u64,
}

impl FuPool {
    /// Creates a pool of `count` units with the given `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `latency` is zero.
    #[must_use]
    pub fn new(count: usize, latency: u64, pipelined: bool) -> Self {
        assert!(
            count > 0,
            "functional unit pool must have at least one unit"
        );
        assert!(latency > 0, "functional unit latency must be non-zero");
        FuPool {
            count,
            latency,
            pipelined,
            last_issue_cycle: 0,
            issued_this_cycle: 0,
            busy_until: VecDeque::with_capacity(if pipelined { 0 } else { count }),
            total_issued: 0,
            busy_unit_cycles: 0,
        }
    }

    /// Number of units in the pool.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Operation latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Whether the units are pipelined.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Number of operations issued to this pool in total.
    #[must_use]
    pub fn total_issued(&self) -> u64 {
        self.total_issued
    }

    /// Sum over units of cycles spent occupied by operation initiation
    /// (pipelined: one cycle per op; non-pipelined: `latency` per op).
    #[must_use]
    pub fn busy_unit_cycles(&self) -> u64 {
        self.busy_unit_cycles
    }

    /// Number of operations that could still be issued to this pool at
    /// `cycle` (units whose initiation interval has elapsed).
    ///
    /// `cycle` must not precede the most recent issue.
    #[must_use]
    pub fn available(&self, cycle: u64) -> usize {
        debug_assert!(
            cycle >= self.last_issue_cycle || self.total_issued == 0,
            "FuPool cycles must be non-decreasing"
        );
        if self.pipelined {
            if cycle > self.last_issue_cycle {
                self.count
            } else {
                self.count - self.issued_this_cycle
            }
        } else {
            // Busy units are those whose release cycle lies in the future;
            // the deque is sorted, so count them with a binary search.
            let expired = self.busy_until.partition_point(|&r| r <= cycle);
            self.count - (self.busy_until.len() - expired)
        }
    }

    /// Attempts to issue one operation at `cycle` (cycles must be
    /// non-decreasing across calls). On success returns the cycle at which
    /// the result is available.
    pub fn try_issue(&mut self, cycle: u64) -> Option<u64> {
        debug_assert!(
            cycle >= self.last_issue_cycle || self.total_issued == 0,
            "FuPool cycles must be non-decreasing"
        );
        if self.pipelined {
            if cycle > self.last_issue_cycle {
                self.last_issue_cycle = cycle;
                self.issued_this_cycle = 0;
            }
            if self.issued_this_cycle >= self.count {
                return None;
            }
            self.issued_this_cycle += 1;
            self.busy_unit_cycles += 1;
        } else {
            while self.busy_until.front().is_some_and(|&r| r <= cycle) {
                self.busy_until.pop_front();
            }
            if self.busy_until.len() >= self.count {
                return None;
            }
            self.busy_until.push_back(cycle + self.latency);
            self.last_issue_cycle = cycle;
            self.busy_unit_cycles += self.latency;
        }
        self.total_issued += 1;
        Some(cycle + self.latency)
    }

    /// Utilisation of the pool over `total_cycles`: busy unit-cycles divided
    /// by available unit-cycles.
    #[must_use]
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        let capacity = total_cycles * self.count as u64;
        (self.busy_unit_cycles as f64 / capacity as f64).min(1.0)
    }

    /// Resets scheduling state and statistics.
    pub fn reset(&mut self) {
        self.last_issue_cycle = 0;
        self.issued_this_cycle = 0;
        self.busy_until.clear();
        self.total_issued = 0;
        self.busy_unit_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pools_construct() {
        let ap = FuPool::new(4, 1, true);
        let ep = FuPool::new(4, 4, true);
        assert_eq!(ap.count(), 4);
        assert_eq!(ap.latency(), 1);
        assert_eq!(ep.latency(), 4);
    }

    #[test]
    fn issue_returns_completion_cycle() {
        let mut ep = FuPool::new(4, 4, true);
        assert_eq!(ep.try_issue(10), Some(14));
    }

    #[test]
    fn per_cycle_issue_limit() {
        let mut ap = FuPool::new(2, 1, true);
        assert!(ap.try_issue(0).is_some());
        assert!(ap.try_issue(0).is_some());
        assert!(ap.try_issue(0).is_none(), "only 2 units");
        assert!(ap.try_issue(1).is_some(), "next cycle they are free again");
    }

    #[test]
    fn pipelined_units_accept_every_cycle() {
        let mut ep = FuPool::new(1, 4, true);
        assert_eq!(ep.try_issue(0), Some(4));
        assert_eq!(ep.try_issue(1), Some(5));
        assert_eq!(ep.try_issue(2), Some(6));
    }

    #[test]
    fn non_pipelined_units_block_for_latency() {
        let mut div = FuPool::new(1, 4, false);
        assert_eq!(div.try_issue(0), Some(4));
        assert!(div.try_issue(1).is_none());
        assert!(div.try_issue(3).is_none());
        assert_eq!(div.try_issue(4), Some(8));
    }

    #[test]
    fn available_counts_free_units() {
        let mut ap = FuPool::new(4, 1, true);
        assert_eq!(ap.available(0), 4);
        ap.try_issue(0);
        ap.try_issue(0);
        assert_eq!(ap.available(0), 2);
        assert_eq!(ap.available(1), 4);
    }

    #[test]
    fn available_counts_non_pipelined_busy_units() {
        let mut div = FuPool::new(3, 4, false);
        assert_eq!(div.available(0), 3);
        div.try_issue(0);
        div.try_issue(0);
        assert_eq!(div.available(0), 1);
        assert_eq!(div.available(3), 1);
        assert_eq!(div.available(4), 3, "both ops release at cycle 4");
    }

    #[test]
    fn utilization_accumulates() {
        let mut ap = FuPool::new(2, 1, true);
        for c in 0..10u64 {
            ap.try_issue(c);
        }
        // 10 busy unit-cycles out of 2 units * 10 cycles.
        assert!((ap.utilization(10) - 0.5).abs() < 1e-12);
        assert_eq!(ap.total_issued(), 10);
        assert_eq!(ap.utilization(0), 0.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ap = FuPool::new(1, 1, true);
        ap.try_issue(0);
        ap.reset();
        assert_eq!(ap.total_issued(), 0);
        assert_eq!(ap.available(0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        let _ = FuPool::new(0, 1, true);
    }

    #[test]
    #[should_panic(expected = "latency must be non-zero")]
    fn zero_latency_panics() {
        let _ = FuPool::new(1, 0, true);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference: the pre-counter implementation scanning a per-unit
    /// `next_accept` array.
    struct NaivePool {
        next_accept: Vec<u64>,
        latency: u64,
        pipelined: bool,
    }

    impl NaivePool {
        fn try_issue(&mut self, cycle: u64) -> Option<u64> {
            let unit = self.next_accept.iter().position(|&next| next <= cycle)?;
            self.next_accept[unit] = if self.pipelined {
                cycle + 1
            } else {
                cycle + self.latency
            };
            Some(cycle + self.latency)
        }

        fn available(&self, cycle: u64) -> usize {
            self.next_accept.iter().filter(|&&n| n <= cycle).count()
        }
    }

    proptest! {
        /// Never more than `count` issues in a single cycle, and completion
        /// times always equal issue time + latency.
        #[test]
        fn issue_limits_hold(
            count in 1usize..6,
            latency in 1u64..8,
            attempts in prop::collection::vec(0u64..50, 1..200),
        ) {
            let mut pool = FuPool::new(count, latency, true);
            let mut sorted = attempts.clone();
            sorted.sort_unstable();
            let mut per_cycle = std::collections::HashMap::new();
            for cycle in sorted {
                if let Some(done) = pool.try_issue(cycle) {
                    prop_assert_eq!(done, cycle + latency);
                    *per_cycle.entry(cycle).or_insert(0usize) += 1;
                }
            }
            for (_, n) in per_cycle {
                prop_assert!(n <= count);
            }
        }

        /// The O(1) counters agree with the naive scan-based pool on every
        /// monotone issue stream, pipelined or not.
        #[test]
        fn counters_match_naive_scan(
            count in 1usize..6,
            latency in 1u64..8,
            pipelined in prop::bool::ANY,
            deltas in prop::collection::vec(0u64..4, 1..200),
        ) {
            let mut pool = FuPool::new(count, latency, pipelined);
            let mut naive = NaivePool {
                next_accept: vec![0; count],
                latency,
                pipelined,
            };
            let mut cycle = 0u64;
            for d in deltas {
                cycle += d;
                prop_assert_eq!(pool.available(cycle), naive.available(cycle));
                prop_assert_eq!(pool.try_issue(cycle), naive.try_issue(cycle));
            }
        }
    }
}
