//! The branch history table: 2K entries of 2-bit saturating counters,
//! indexed by the branch PC (the paper's per-thread BHT).

use serde::{Deserialize, Serialize};

/// Prediction accuracy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Number of conditional branches predicted.
    pub predictions: u64,
    /// Number of those predictions that were wrong.
    pub mispredictions: u64,
}

impl PredictorStats {
    /// Prediction accuracy in `[0, 1]` (1.0 when no branches were seen).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// A table of 2-bit saturating counters indexed by the low bits of the
/// branch PC (instruction-granular: the PC is divided by 4 first).
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    stats: PredictorStats,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` 2-bit counters, initialised to
    /// weakly taken (2).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor must have at least one entry");
        BranchPredictor {
            counters: vec![2; entries],
            stats: PredictorStats::default(),
        }
    }

    /// The paper's configuration: 2K entries × 2 bits.
    #[must_use]
    pub fn paper_default() -> Self {
        BranchPredictor::new(2048)
    }

    /// Number of table entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.counters.len()
    }

    /// Predicts whether the branch at `pc` is taken, without updating state.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates the counter for `pc` with the actual outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Predicts, compares with the actual outcome, updates the counter, and
    /// records accuracy statistics. Returns `true` when the prediction was
    /// correct.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        let predicted = self.predict(pc);
        self.update(pc, taken);
        self.stats.predictions += 1;
        let correct = predicted == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        correct
    }

    /// Accuracy counters accumulated by [`BranchPredictor::predict_and_train`].
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Resets the table and statistics.
    pub fn reset(&mut self) {
        for c in &mut self.counters {
            *c = 2;
        }
        self.stats = PredictorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_size() {
        assert_eq!(BranchPredictor::paper_default().entries(), 2048);
    }

    #[test]
    fn initially_predicts_taken() {
        let p = BranchPredictor::new(16);
        assert!(p.predict(0x100));
    }

    #[test]
    fn learns_always_taken() {
        let mut p = BranchPredictor::new(16);
        for _ in 0..100 {
            p.predict_and_train(0x40, true);
        }
        assert!(p.predict(0x40));
        assert!(p.stats().accuracy() > 0.95);
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = BranchPredictor::new(16);
        for _ in 0..100 {
            p.predict_and_train(0x40, false);
        }
        assert!(!p.predict(0x40));
        // Only the first couple of predictions are wrong.
        assert!(p.stats().mispredictions <= 2);
    }

    #[test]
    fn hysteresis_of_two_bit_counter() {
        let mut p = BranchPredictor::new(16);
        for _ in 0..10 {
            p.update(0x40, true);
        }
        // One not-taken outcome does not flip a strongly-taken counter.
        p.update(0x40, false);
        assert!(p.predict(0x40));
        p.update(0x40, false);
        assert!(!p.predict(0x40));
    }

    #[test]
    fn alternating_pattern_has_poor_accuracy() {
        let mut p = BranchPredictor::new(16);
        let mut taken = false;
        for _ in 0..1000 {
            p.predict_and_train(0x40, taken);
            taken = !taken;
        }
        assert!(p.stats().accuracy() < 0.7);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = BranchPredictor::new(1024);
        for _ in 0..10 {
            p.predict_and_train(0x100, true);
            p.predict_and_train(0x104, false);
        }
        assert!(p.predict(0x100));
        assert!(!p.predict(0x104));
    }

    #[test]
    fn aliasing_wraps_around_table() {
        let mut p = BranchPredictor::new(4);
        // PCs 0x0 and 0x10 (>>2 = 0 and 4) alias in a 4-entry table.
        for _ in 0..10 {
            p.update(0x0, false);
        }
        assert!(!p.predict(0x10));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut p = BranchPredictor::new(16);
        for _ in 0..10 {
            p.predict_and_train(0x40, false);
        }
        p.reset();
        assert!(p.predict(0x40));
        assert_eq!(p.stats(), PredictorStats::default());
    }

    #[test]
    fn accuracy_with_no_predictions_is_one() {
        assert_eq!(PredictorStats::default().accuracy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = BranchPredictor::new(0);
    }
}
