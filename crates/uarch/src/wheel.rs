//! A timing/event wheel for deferred completion events.
//!
//! The simulator's completion queue used to be a `BinaryHeap`: O(log n) per
//! push/pop with allocator churn as the heap grows and shrinks every cycle.
//! Almost every event lands within a small, configuration-bounded horizon
//! (functional-unit latency, or L1 + L2 + bus time for a fill), so a wheel
//! of `Vec` buckets indexed by `cycle % size` gives O(1) pushes and drains
//! with zero steady-state allocation — bucket `Vec`s are drained in place
//! and their capacity is reused.
//!
//! Events beyond the horizon (e.g. fills delayed by deep bus queueing) spill
//! into an overflow binary heap keyed by `(cycle, insertion order)`, so
//! correctness never depends on the horizon being large enough — only the
//! fast path does.
//!
//! Draining must visit every cycle in order (`drain_due(0)`, `drain_due(1)`,
//! ...), which is exactly how the cycle-by-cycle simulator runs; this is
//! asserted in debug builds.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event parked in the overflow heap, ordered by due cycle with
/// insertion order as the deterministic tie-break.
#[derive(Debug)]
struct Parked<T> {
    due: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Parked<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Parked<T> {}
impl<T> PartialOrd for Parked<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Parked<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A fixed-horizon event wheel with an overflow heap.
#[derive(Debug)]
pub struct EventWheel<T> {
    /// One bucket per cycle in the horizon window; index = `cycle & mask`.
    buckets: Vec<Vec<T>>,
    mask: u64,
    /// The lowest cycle that has not been drained yet.
    next_cycle: u64,
    /// Events due at or beyond `next_cycle + buckets.len()`.
    overflow: BinaryHeap<Reverse<Parked<T>>>,
    overflow_seq: u64,
    len: usize,
}

impl<T> EventWheel<T> {
    /// Creates a wheel able to hold events up to `horizon` cycles in the
    /// future on its fast path (rounded up to a power of two, at least 64).
    /// Events farther out are still accepted — they take the overflow path.
    #[must_use]
    pub fn with_horizon(horizon: u64) -> Self {
        let size = horizon.next_power_of_two().max(64) as usize;
        EventWheel {
            buckets: (0..size).map(|_| Vec::new()).collect(),
            mask: size as u64 - 1,
            next_cycle: 0,
            overflow: BinaryHeap::new(),
            overflow_seq: 0,
            len: 0,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bucket count (fast-path horizon in cycles).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Schedules `item` for cycle `due`. Events due in the past (already
    /// drained cycles) fire at the next drain, matching the behaviour of a
    /// heap popped with a `cycle <= now` condition.
    pub fn push(&mut self, due: u64, item: T) {
        let due = due.max(self.next_cycle);
        if due - self.next_cycle < self.horizon() {
            self.buckets[(due & self.mask) as usize].push(item);
        } else {
            let seq = self.overflow_seq;
            self.overflow_seq += 1;
            self.overflow.push(Reverse(Parked { due, seq, item }));
        }
        self.len += 1;
    }

    /// Delivers every event due at or before `now` to `f`.
    ///
    /// Cycles must be drained consecutively (each call with `now` equal to
    /// the previous `now + 1`) unless the wheel is empty, in which case the
    /// wheel may jump forward.
    pub fn drain_due<F: FnMut(T)>(&mut self, now: u64, mut f: F) {
        debug_assert!(
            now == self.next_cycle || (self.len == 0 && now >= self.next_cycle),
            "event wheel drained out of order: now={now}, expected {}",
            self.next_cycle
        );
        self.next_cycle = now + 1;
        // Overflow first: these events were scheduled earliest-horizon and
        // the order (overflow by insertion, then bucket by insertion) is
        // deterministic.
        while let Some(Reverse(parked)) = self.overflow.peek() {
            if parked.due > now {
                break;
            }
            let Reverse(parked) = self.overflow.pop().expect("peeked entry exists");
            self.len -= 1;
            f(parked.item);
        }
        let bucket = &mut self.buckets[(now & self.mask) as usize];
        self.len -= bucket.len();
        for item in bucket.drain(..) {
            f(item);
        }
        // Promote overflow events that fit in the window uncovered by
        // advancing one cycle (the slot `now + horizon` is now free).
        let promote_limit = self.next_cycle + self.horizon();
        while let Some(Reverse(parked)) = self.overflow.peek() {
            if parked.due >= promote_limit {
                break;
            }
            let Reverse(parked) = self.overflow.pop().expect("peeked entry exists");
            self.buckets[(parked.due & self.mask) as usize].push(parked.item);
        }
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.len = 0;
    }

    /// The earliest pending due cycle strictly below `limit`, or `None` if
    /// no event fires before `limit`. Only cycles from the next undrained
    /// cycle onwards are considered (everything earlier has already fired).
    #[must_use]
    pub fn next_due_before(&self, limit: u64) -> Option<u64> {
        let scan_end = limit.min(self.next_cycle + self.horizon());
        let mut best: Option<u64> = None;
        for c in self.next_cycle..scan_end {
            if !self.buckets[(c & self.mask) as usize].is_empty() {
                best = Some(c);
                break;
            }
        }
        if let Some(Reverse(parked)) = self.overflow.peek() {
            if parked.due < limit && best.is_none_or(|b| parked.due < b) {
                best = Some(parked.due);
            }
        }
        best
    }

    /// Advances the wheel to `target` without draining, asserting (in debug
    /// builds) that no event is pending before it. Used by the simulator's
    /// stall fast-forward, which has already proven the skipped cycles
    /// cannot fire anything.
    pub fn skip_to(&mut self, target: u64) {
        debug_assert!(
            target >= self.next_cycle,
            "event wheel cannot skip backwards"
        );
        debug_assert!(
            self.next_due_before(target).is_none(),
            "event wheel skip would jump over pending events"
        );
        self.next_cycle = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut EventWheel<u32>, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        w.drain_due(now, |x| out.push(x));
        out
    }

    #[test]
    fn events_fire_at_their_cycle() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(8);
        w.push(2, 20);
        w.push(1, 10);
        w.push(2, 21);
        assert_eq!(w.len(), 3);
        assert_eq!(drain_all(&mut w, 0), Vec::<u32>::new());
        assert_eq!(drain_all(&mut w, 1), vec![10]);
        assert_eq!(drain_all(&mut w, 2), vec![20, 21]);
        assert!(w.is_empty());
    }

    #[test]
    fn horizon_rounds_up_to_power_of_two() {
        let w: EventWheel<u32> = EventWheel::with_horizon(100);
        assert_eq!(w.horizon(), 128);
        let tiny: EventWheel<u32> = EventWheel::with_horizon(1);
        assert_eq!(tiny.horizon(), 64);
    }

    #[test]
    fn far_future_events_take_the_overflow_path_and_still_fire() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(64);
        w.push(1000, 99);
        w.push(3, 3);
        for now in 0..1000 {
            let fired = drain_all(&mut w, now);
            if now == 3 {
                assert_eq!(fired, vec![3]);
            } else {
                assert!(fired.is_empty(), "unexpected event at cycle {now}");
            }
        }
        assert_eq!(drain_all(&mut w, 1000), vec![99]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_due_events_fire_at_next_drain() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(8);
        drain_all(&mut w, 0);
        drain_all(&mut w, 1);
        w.push(0, 7); // already-drained cycle: clamps forward
        assert_eq!(drain_all(&mut w, 2), vec![7]);
    }

    #[test]
    fn empty_wheel_may_jump_forward() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(8);
        drain_all(&mut w, 0);
        assert_eq!(drain_all(&mut w, 100), Vec::<u32>::new());
        w.push(101, 1);
        assert_eq!(drain_all(&mut w, 101), vec![1]);
    }

    #[test]
    fn clear_removes_everything() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(8);
        w.push(1, 1);
        w.push(500, 2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(drain_all(&mut w, 0), Vec::<u32>::new());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The wheel delivers exactly the same (cycle → multiset of events)
        /// schedule as a naive reference binary heap, for any mix of
        /// in-horizon and overflow deltas.
        #[test]
        fn wheel_matches_naive_heap_reference(
            pushes in prop::collection::vec((0u64..20, 0u64..200, 0u32..1000), 1..150),
            horizon in 1u64..70,
        ) {
            let mut wheel: EventWheel<u32> = EventWheel::with_horizon(horizon);
            // Naive reference: (due, value) pairs popped when due <= now.
            let mut naive: Vec<(u64, u32)> = Vec::new();
            let mut now = 0u64;
            for (advance, delta, value) in pushes {
                // Drain up to the new cycle, comparing sorted multisets.
                for _ in 0..advance {
                    let mut fired = Vec::new();
                    wheel.drain_due(now, |x| fired.push(x));
                    let mut expected: Vec<u32> = naive
                        .iter()
                        .filter(|(due, _)| *due <= now)
                        .map(|(_, v)| *v)
                        .collect();
                    naive.retain(|(due, _)| *due > now);
                    fired.sort_unstable();
                    expected.sort_unstable();
                    prop_assert_eq!(fired, expected);
                    now += 1;
                }
                let due = (now + delta).max(now);
                wheel.push(due, value);
                naive.push((due, value));
                prop_assert_eq!(wheel.len(), naive.len());
            }
            // Drain the tail.
            while !naive.is_empty() {
                let mut fired = Vec::new();
                wheel.drain_due(now, |x| fired.push(x));
                let mut expected: Vec<u32> = naive
                    .iter()
                    .filter(|(due, _)| *due <= now)
                    .map(|(_, v)| *v)
                    .collect();
                naive.retain(|(due, _)| *due > now);
                fired.sort_unstable();
                expected.sort_unstable();
                prop_assert_eq!(fired, expected);
                now += 1;
            }
            prop_assert!(wheel.is_empty());
        }
    }
}
