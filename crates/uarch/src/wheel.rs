//! A timing/event wheel for deferred completion events.
//!
//! The simulator's completion queue used to be a `BinaryHeap`: O(log n) per
//! push/pop with allocator churn as the heap grows and shrinks every cycle.
//! Almost every event lands within a small, configuration-bounded horizon
//! (functional-unit latency, or L1 + L2 + bus time for a fill), so a wheel
//! of `Vec` buckets indexed by `cycle % size` gives O(1) pushes and drains
//! with zero steady-state allocation — bucket `Vec`s are drained in place
//! and their capacity is reused.
//!
//! Events beyond the horizon (e.g. fills delayed by deep bus queueing) spill
//! into an overflow binary heap keyed by `(cycle, insertion order)`, so
//! correctness never depends on the horizon being large enough — only the
//! fast path does.
//!
//! Draining must visit every cycle in order (`drain_due(0)`, `drain_due(1)`,
//! ...), which is exactly how the cycle-by-cycle simulator runs; this is
//! asserted in debug builds.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event parked in the overflow heap, ordered by due cycle with
/// insertion order as the deterministic tie-break.
#[derive(Debug)]
struct Parked<T> {
    due: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Parked<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Parked<T> {}
impl<T> PartialOrd for Parked<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Parked<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A fixed-horizon event wheel with an overflow heap.
#[derive(Debug)]
pub struct EventWheel<T> {
    /// One bucket per cycle in the horizon window; index = `cycle & mask`.
    buckets: Vec<Vec<T>>,
    /// Occupancy bitmap over `buckets` (bit `i % 64` of word `i / 64`), so
    /// [`next_due_before`](Self::next_due_before) — the stall
    /// fast-forward's bound query — scans 64 buckets per word load instead
    /// of touching every bucket `Vec`.
    occupied: Vec<u64>,
    mask: u64,
    /// The lowest cycle that has not been drained yet.
    next_cycle: u64,
    /// Events due at or beyond `next_cycle + buckets.len()`.
    overflow: BinaryHeap<Reverse<Parked<T>>>,
    overflow_seq: u64,
    len: usize,
}

impl<T> EventWheel<T> {
    /// Creates a wheel able to hold events up to `horizon` cycles in the
    /// future on its fast path (rounded up to a power of two, at least 64).
    /// Events farther out are still accepted — they take the overflow path.
    #[must_use]
    pub fn with_horizon(horizon: u64) -> Self {
        let size = horizon.next_power_of_two().max(64) as usize;
        EventWheel {
            buckets: (0..size).map(|_| Vec::new()).collect(),
            occupied: vec![0; size / 64],
            mask: size as u64 - 1,
            next_cycle: 0,
            overflow: BinaryHeap::new(),
            overflow_seq: 0,
            len: 0,
        }
    }

    #[inline]
    fn mark_occupied(&mut self, bucket: usize) {
        self.occupied[bucket / 64] |= 1u64 << (bucket % 64);
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bucket count (fast-path horizon in cycles).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Schedules `item` for cycle `due`. Events due in the past (already
    /// drained cycles) fire at the next drain, matching the behaviour of a
    /// heap popped with a `cycle <= now` condition.
    pub fn push(&mut self, due: u64, item: T) {
        let due = due.max(self.next_cycle);
        if due - self.next_cycle < self.horizon() {
            let bucket = (due & self.mask) as usize;
            self.buckets[bucket].push(item);
            self.mark_occupied(bucket);
        } else {
            let seq = self.overflow_seq;
            self.overflow_seq += 1;
            self.overflow.push(Reverse(Parked { due, seq, item }));
        }
        self.len += 1;
    }

    /// Delivers every event due at or before `now` to `f`.
    ///
    /// Cycles must be drained consecutively (each call with `now` equal to
    /// the previous `now + 1`) unless the wheel is empty, in which case the
    /// wheel may jump forward.
    pub fn drain_due<F: FnMut(T)>(&mut self, now: u64, mut f: F) {
        debug_assert!(
            now == self.next_cycle || (self.len == 0 && now >= self.next_cycle),
            "event wheel drained out of order: now={now}, expected {}",
            self.next_cycle
        );
        // Fast paths: this runs once per simulated cycle per wheel, and on
        // most cycles nothing is due — advancing the clock is the only
        // effect. One occupancy-word load answers "is anything due at
        // `now`?" without touching the bucket, as long as no overflow
        // event might be waiting to fire or promote.
        let index = (now & self.mask) as usize;
        if self.len == 0
            || (self.overflow.is_empty() && self.occupied[index / 64] & (1 << (index % 64)) == 0)
        {
            self.next_cycle = now + 1;
            return;
        }
        self.next_cycle = now + 1;
        // Overflow first: these events were scheduled earliest-horizon and
        // the order (overflow by insertion, then bucket by insertion) is
        // deterministic.
        while let Some(Reverse(parked)) = self.overflow.peek() {
            if parked.due > now {
                break;
            }
            let Reverse(parked) = self.overflow.pop().expect("peeked entry exists");
            self.len -= 1;
            f(parked.item);
        }
        let index = (now & self.mask) as usize;
        self.occupied[index / 64] &= !(1u64 << (index % 64));
        let bucket = &mut self.buckets[index];
        self.len -= bucket.len();
        for item in bucket.drain(..) {
            f(item);
        }
        // Promote overflow events that fit in the window uncovered by
        // advancing one cycle (the slot `now + horizon` is now free).
        let promote_limit = self.next_cycle + self.horizon();
        while let Some(Reverse(parked)) = self.overflow.peek() {
            if parked.due >= promote_limit {
                break;
            }
            let Reverse(parked) = self.overflow.pop().expect("peeked entry exists");
            let bucket = (parked.due & self.mask) as usize;
            self.buckets[bucket].push(parked.item);
            self.mark_occupied(bucket);
        }
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.occupied.fill(0);
        self.overflow.clear();
        self.len = 0;
    }

    /// The earliest pending due cycle strictly below `limit`, or `None` if
    /// no event fires before `limit`. Only cycles from the next undrained
    /// cycle onwards are considered (everything earlier has already fired).
    #[must_use]
    pub fn next_due_before(&self, limit: u64) -> Option<u64> {
        let mut best = self.next_occupied_before(limit);
        if let Some(Reverse(parked)) = self.overflow.peek() {
            if parked.due < limit && best.is_none_or(|b| parked.due < b) {
                best = Some(parked.due);
            }
        }
        best
    }

    /// The earliest non-empty *bucket* cycle in `[next_cycle, limit)`,
    /// found by scanning the occupancy bitmap a word (64 buckets) at a
    /// time. Every pending bucket event lives in
    /// `[next_cycle, next_cycle + horizon)`, so bucket indices map back to
    /// cycles uniquely within the scan window.
    fn next_occupied_before(&self, limit: u64) -> Option<u64> {
        let scan_end = limit.min(self.next_cycle + self.horizon());
        if scan_end <= self.next_cycle || self.len == self.overflow.len() {
            return None;
        }
        let span = scan_end - self.next_cycle;
        let words = self.occupied.len();
        let start = (self.next_cycle & self.mask) as usize;
        let mut checked = 0u64;
        let (mut word, mut bit) = (start / 64, (start % 64) as u64);
        while checked < span {
            let w = self.occupied[word] >> bit;
            if w != 0 {
                let offset = u64::from(w.trailing_zeros());
                return (checked + offset < span).then_some(self.next_cycle + checked + offset);
            }
            checked += 64 - bit;
            word = (word + 1) % words;
            bit = 0;
        }
        None
    }

    /// Advances the wheel to `target` without draining, asserting (in debug
    /// builds) that no event is pending before it. Used by the simulator's
    /// stall fast-forward, which has already proven the skipped cycles
    /// cannot fire anything.
    pub fn skip_to(&mut self, target: u64) {
        debug_assert!(
            target >= self.next_cycle,
            "event wheel cannot skip backwards"
        );
        debug_assert!(
            self.next_due_before(target).is_none(),
            "event wheel skip would jump over pending events"
        );
        self.next_cycle = target;
    }
}

/// A wake event parked on the wheel: "re-probe the head of `thread`'s
/// window `side` — the verdict recorded for instruction `seq` expires now".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WakeToken {
    thread: u32,
    side: u8,
    seq: u64,
}

/// The scheduling state of one window head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeSlot<V> {
    /// No valid verdict: the head (if any) must be probed this cycle.
    Probe,
    /// The head instruction `seq` is provably blocked for every cycle
    /// strictly below `until`; `value` carries the caller's verdict payload
    /// to replay without re-probing.
    Blocked { seq: u64, until: u64, value: V },
}

/// Per-thread, per-side wake lists layered on an [`EventWheel`].
///
/// Each hardware thread owns [`WakeList::SIDES`] in-order window heads (in
/// the simulator: the AP window and the EP instruction queue). When the
/// core proves a head blocked until a known cycle it records the verdict
/// here; the wheel parks a wake token at that cycle. Until the token fires,
/// [`blocked`](Self::blocked) replays the verdict in O(1) — no register-file
/// probe. [`begin_cycle`](Self::begin_cycle) pops due tokens and flips the
/// matching slots back to *probe*.
///
/// Keying rule: tokens carry the blocked instruction's `seq` and only
/// re-arm a slot whose current verdict is for that same `seq`. Verdict
/// sequences must therefore be unique per instruction (the simulator's
/// fetch sequence numbers are). A slot invalidated or re-recorded after a
/// steal/flush leaves its old token parked; the stale token is ignored when
/// it fires instead of clobbering the newer verdict.
#[derive(Debug)]
pub struct WakeList<V> {
    slots: Vec<[WakeSlot<V>; WAKE_SIDES]>,
    wheel: EventWheel<WakeToken>,
}

/// Window heads tracked per thread by a [`WakeList`].
const WAKE_SIDES: usize = 2;

impl<V: Copy> WakeList<V> {
    /// Window heads tracked per thread.
    pub const SIDES: usize = WAKE_SIDES;

    /// Creates a wake list for `threads` hardware contexts with the given
    /// fast-path wheel horizon (see [`EventWheel::with_horizon`]).
    #[must_use]
    pub fn new(threads: usize, horizon: u64) -> Self {
        WakeList {
            slots: vec![[WakeSlot::Probe; WAKE_SIDES]; threads],
            wheel: EventWheel::with_horizon(horizon),
        }
    }

    /// Number of wake tokens still parked on the wheel (the "wake list
    /// depth"; stale tokens count until they fire).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// Pops every wake token due at or before `now` and flips the matching
    /// slots back to *probe*. Must be called once per simulated cycle, with
    /// the same consecutive-cycle discipline as [`EventWheel::drain_due`].
    #[inline]
    pub fn begin_cycle(&mut self, now: u64) {
        let slots = &mut self.slots;
        self.wheel.drain_due(now, |token| {
            let slot = &mut slots[token.thread as usize][token.side as usize];
            // A token only re-arms the verdict it was parked for; a stale
            // token (slot re-recorded or invalidated since) is a no-op.
            if matches!(*slot, WakeSlot::Blocked { seq, .. } if seq == token.seq) {
                *slot = WakeSlot::Probe;
            }
        });
    }

    /// Records "head instruction `seq` of (`thread`, `side`) is blocked for
    /// every cycle strictly below `until`" and parks a wake token at
    /// `until`.
    pub fn record_blocked(&mut self, thread: usize, side: usize, seq: u64, until: u64, value: V) {
        self.slots[thread][side] = WakeSlot::Blocked { seq, until, value };
        self.wheel.push(
            until,
            WakeToken {
                thread: thread as u32,
                side: side as u8,
                seq,
            },
        );
    }

    /// The recorded verdict for (`thread`, `side`), if one is still live:
    /// `(seq, until, value)`. `None` means the head must be probed.
    #[inline]
    #[must_use]
    pub fn blocked(&self, thread: usize, side: usize) -> Option<(u64, u64, V)> {
        match self.slots[thread][side] {
            WakeSlot::Probe => None,
            WakeSlot::Blocked { seq, until, value } => Some((seq, until, value)),
        }
    }

    /// Drops the verdict for (`thread`, `side`), forcing a fresh probe. The
    /// parked token is left to fire and be ignored (see the keying rule).
    pub fn invalidate(&mut self, thread: usize, side: usize) {
        self.slots[thread][side] = WakeSlot::Probe;
    }

    /// The earliest parked wake strictly below `limit` (stale tokens
    /// included — they bound skips conservatively, never incorrectly).
    #[must_use]
    pub fn next_due_before(&self, limit: u64) -> Option<u64> {
        self.wheel.next_due_before(limit)
    }

    /// Advances the wheel to `target` without firing anything, asserting in
    /// debug builds that no token is due before it.
    pub fn skip_to(&mut self, target: u64) {
        self.wheel.skip_to(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut EventWheel<u32>, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        w.drain_due(now, |x| out.push(x));
        out
    }

    #[test]
    fn events_fire_at_their_cycle() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(8);
        w.push(2, 20);
        w.push(1, 10);
        w.push(2, 21);
        assert_eq!(w.len(), 3);
        assert_eq!(drain_all(&mut w, 0), Vec::<u32>::new());
        assert_eq!(drain_all(&mut w, 1), vec![10]);
        assert_eq!(drain_all(&mut w, 2), vec![20, 21]);
        assert!(w.is_empty());
    }

    #[test]
    fn horizon_rounds_up_to_power_of_two() {
        let w: EventWheel<u32> = EventWheel::with_horizon(100);
        assert_eq!(w.horizon(), 128);
        let tiny: EventWheel<u32> = EventWheel::with_horizon(1);
        assert_eq!(tiny.horizon(), 64);
    }

    #[test]
    fn far_future_events_take_the_overflow_path_and_still_fire() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(64);
        w.push(1000, 99);
        w.push(3, 3);
        for now in 0..1000 {
            let fired = drain_all(&mut w, now);
            if now == 3 {
                assert_eq!(fired, vec![3]);
            } else {
                assert!(fired.is_empty(), "unexpected event at cycle {now}");
            }
        }
        assert_eq!(drain_all(&mut w, 1000), vec![99]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_due_events_fire_at_next_drain() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(8);
        drain_all(&mut w, 0);
        drain_all(&mut w, 1);
        w.push(0, 7); // already-drained cycle: clamps forward
        assert_eq!(drain_all(&mut w, 2), vec![7]);
    }

    #[test]
    fn empty_wheel_may_jump_forward() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(8);
        drain_all(&mut w, 0);
        assert_eq!(drain_all(&mut w, 100), Vec::<u32>::new());
        w.push(101, 1);
        assert_eq!(drain_all(&mut w, 101), vec![1]);
    }

    #[test]
    fn clear_removes_everything() {
        let mut w: EventWheel<u32> = EventWheel::with_horizon(8);
        w.push(1, 1);
        w.push(500, 2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(drain_all(&mut w, 0), Vec::<u32>::new());
    }

    #[test]
    fn wake_list_expires_verdicts_on_time() {
        let mut wl: WakeList<char> = WakeList::new(2, 8);
        wl.begin_cycle(0);
        wl.record_blocked(0, 0, 10, 3, 'a');
        wl.record_blocked(1, 1, 11, 5, 'b');
        assert_eq!(wl.pending(), 2);
        for now in 1..=6 {
            wl.begin_cycle(now);
            // Thread 0 side 0 blocks through cycle 2 and probes from 3 on.
            assert_eq!(
                wl.blocked(0, 0),
                (now < 3).then_some((10, 3, 'a')),
                "thread 0 at cycle {now}"
            );
            assert_eq!(
                wl.blocked(1, 1),
                (now < 5).then_some((11, 5, 'b')),
                "thread 1 at cycle {now}"
            );
            // Untouched slots stay in probe state.
            assert_eq!(wl.blocked(0, 1), None);
            assert_eq!(wl.blocked(1, 0), None);
        }
        assert_eq!(wl.pending(), 0);
    }

    /// Regression (steal/flush re-arm): after a verdict is invalidated and a
    /// *new* verdict recorded for a different instruction, the old token
    /// firing must not flip the new verdict back to probe early — a
    /// recorded ready-cycle never re-arms a stale wheel entry.
    #[test]
    fn wake_list_stale_token_never_rearms_newer_verdict() {
        let mut wl: WakeList<u8> = WakeList::new(1, 8);
        wl.begin_cycle(0);
        wl.record_blocked(0, 0, 100, 4, 1);
        // A flush replaces the window head; the cycle-4 token is now stale.
        wl.invalidate(0, 0);
        wl.record_blocked(0, 0, 101, 9, 2);
        for now in 1..9 {
            wl.begin_cycle(now);
            assert_eq!(
                wl.blocked(0, 0),
                Some((101, 9, 2)),
                "stale token re-armed the slot at cycle {now}"
            );
        }
        wl.begin_cycle(9);
        assert_eq!(wl.blocked(0, 0), None);
    }

    #[test]
    fn wake_list_rerecord_without_invalidate_keeps_newest() {
        // Same slot re-recorded for a later instruction before the first
        // token fires: the first token must leave the second verdict alone.
        let mut wl: WakeList<u8> = WakeList::new(1, 8);
        wl.begin_cycle(0);
        wl.record_blocked(0, 1, 7, 2, 1);
        wl.record_blocked(0, 1, 8, 6, 2);
        wl.begin_cycle(1);
        wl.begin_cycle(2); // first token fires here, seq mismatch → ignored
        assert_eq!(wl.blocked(0, 1), Some((8, 6, 2)));
        wl.begin_cycle(3);
        assert_eq!(wl.blocked(0, 1), Some((8, 6, 2)));
    }

    #[test]
    fn wake_list_skip_honours_pending_tokens() {
        let mut wl: WakeList<u8> = WakeList::new(1, 8);
        wl.begin_cycle(0);
        wl.record_blocked(0, 0, 1, 40, 9);
        assert_eq!(wl.next_due_before(40), None);
        assert_eq!(wl.next_due_before(41), Some(40));
        wl.skip_to(40);
        wl.begin_cycle(40);
        assert_eq!(wl.blocked(0, 0), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The wheel delivers exactly the same (cycle → multiset of events)
        /// schedule as a naive reference binary heap, for any mix of
        /// in-horizon and overflow deltas.
        #[test]
        fn wheel_matches_naive_heap_reference(
            pushes in prop::collection::vec((0u64..20, 0u64..200, 0u32..1000), 1..150),
            horizon in 1u64..70,
        ) {
            let mut wheel: EventWheel<u32> = EventWheel::with_horizon(horizon);
            // Naive reference: (due, value) pairs popped when due <= now.
            let mut naive: Vec<(u64, u32)> = Vec::new();
            let mut now = 0u64;
            for (advance, delta, value) in pushes {
                // Drain up to the new cycle, comparing sorted multisets.
                for _ in 0..advance {
                    let mut fired = Vec::new();
                    wheel.drain_due(now, |x| fired.push(x));
                    let mut expected: Vec<u32> = naive
                        .iter()
                        .filter(|(due, _)| *due <= now)
                        .map(|(_, v)| *v)
                        .collect();
                    naive.retain(|(due, _)| *due > now);
                    fired.sort_unstable();
                    expected.sort_unstable();
                    prop_assert_eq!(fired, expected);
                    now += 1;
                }
                let due = (now + delta).max(now);
                wheel.push(due, value);
                naive.push((due, value));
                prop_assert_eq!(wheel.len(), naive.len());
            }
            // Drain the tail.
            while !naive.is_empty() {
                let mut fired = Vec::new();
                wheel.drain_due(now, |x| fired.push(x));
                let mut expected: Vec<u32> = naive
                    .iter()
                    .filter(|(due, _)| *due <= now)
                    .map(|(_, v)| *v)
                    .collect();
                naive.retain(|(due, _)| *due > now);
                fired.sort_unstable();
                expected.sort_unstable();
                prop_assert_eq!(fired, expected);
                now += 1;
            }
            prop_assert!(wheel.is_empty());
        }

        /// The wake list agrees with a naive model that stores the latest
        /// verdict per slot and re-evaluates `now < until` every cycle —
        /// under arbitrary interleavings of records, invalidations and
        /// cycle advances (stale tokens included).
        #[test]
        fn wake_list_matches_naive_reprobe_model(
            ops in prop::collection::vec(
                (0u64..4, 0usize..3, 0usize..2, 0u64..30, prop::bool::ANY),
                1..120,
            ),
            horizon in 1u64..70,
        ) {
            let threads = 3;
            let mut wl: WakeList<u64> = WakeList::new(threads, horizon);
            // Naive model: (seq, until, value) per slot, expiry checked by
            // comparison instead of wake tokens.
            let mut naive = vec![[None::<(u64, u64, u64)>; 2]; threads];
            let mut now = 0u64;
            let mut next_seq = 0u64;
            wl.begin_cycle(now);
            for (advance, thread, side, delta, invalidate) in ops {
                for _ in 0..advance {
                    now += 1;
                    wl.begin_cycle(now);
                }
                if invalidate {
                    wl.invalidate(thread, side);
                    naive[thread][side] = None;
                } else {
                    let until = now + 1 + delta;
                    let seq = next_seq;
                    next_seq += 1;
                    wl.record_blocked(thread, side, seq, until, seq * 10);
                    naive[thread][side] = Some((seq, until, seq * 10));
                }
                for (t, sides) in naive.iter().enumerate() {
                    for (s, slot) in sides.iter().enumerate() {
                        let expected = slot.filter(|&(_, until, _)| now < until);
                        prop_assert_eq!(wl.blocked(t, s), expected,
                            "thread {} side {} at cycle {}", t, s, now);
                    }
                }
            }
            // Drain the tail: every verdict eventually expires.
            for _ in 0..64 {
                now += 1;
                wl.begin_cycle(now);
            }
            for (t, sides) in naive.iter().enumerate() {
                for (s, slot) in sides.iter().enumerate() {
                    let expected = slot.filter(|&(_, until, _)| now < until);
                    prop_assert_eq!(wl.blocked(t, s), expected);
                }
            }
        }
    }
}
