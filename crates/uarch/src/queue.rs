//! A bounded FIFO queue.
//!
//! Used for the per-thread Instruction Queue (the structure whose presence
//! *is* decoupling: it lets the AP slip ahead of the EP) and the Store
//! Address Queue (which lets loads bypass pending stores).

use std::collections::VecDeque;

/// A FIFO queue with a hard capacity.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    peak_occupancy: usize,
    rejected: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue with room for `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            peak_occupancy: 0,
            rejected: 0,
        }
    }

    /// Maximum number of items the queue can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Highest occupancy seen since construction.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of pushes rejected because the queue was full.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Appends an item. On a full queue the item is handed back as `Err`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.peak_occupancy = self.peak_occupancy.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// A reference to the oldest item.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// A mutable reference to the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Iterates oldest-to-youngest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterates mutably oldest-to-youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

    /// Removes every item that matches the predicate, preserving order of
    /// the rest.
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, f: F) {
        self.items.retain(f);
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_and_rejection() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.is_full());
        assert_eq!(q.free_slots(), 0);
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.rejected(), 1);
        q.pop();
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn front_access() {
        let mut q = BoundedQueue::new(4);
        assert!(q.front().is_none());
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.front(), Some(&10));
        *q.front_mut().unwrap() = 11;
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for _ in 0..3 {
            q.pop();
        }
        q.push(9).unwrap();
        assert_eq!(q.peak_occupancy(), 5);
    }

    #[test]
    fn iteration_and_retain() {
        let mut q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4, 5]);
        q.retain(|x| x % 2 == 0);
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![0, 2, 4]);
        for x in q.iter_mut() {
            *x += 1;
        }
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }

    #[test]
    fn paper_queue_sizes_construct() {
        // Figure 2: Instruction Queue 48 entries, Store Address Queue 32.
        let iq: BoundedQueue<u64> = BoundedQueue::new(48);
        let saq: BoundedQueue<u64> = BoundedQueue::new(32);
        assert_eq!(iq.capacity(), 48);
        assert_eq!(saq.capacity(), 32);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue never exceeds its capacity and pops return pushed items
        /// in FIFO order.
        #[test]
        fn bounded_fifo_behaviour(ops in prop::collection::vec(prop::option::of(0u32..100), 1..300)) {
            let mut q = BoundedQueue::new(5);
            let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
            for op in ops {
                match op {
                    Some(v) => {
                        let accepted = q.push(v).is_ok();
                        if model.len() < 5 {
                            prop_assert!(accepted);
                            model.push_back(v);
                        } else {
                            prop_assert!(!accepted);
                        }
                    }
                    None => {
                        prop_assert_eq!(q.pop(), model.pop_front());
                    }
                }
                prop_assert!(q.len() <= 5);
                prop_assert_eq!(q.len(), model.len());
            }
        }
    }
}
