//! A bounded FIFO queue backed by a fixed ring buffer.
//!
//! Used for the per-thread Instruction Queue (the structure whose presence
//! *is* decoupling: it lets the AP slip ahead of the EP) and the Store
//! Address Queue (which lets loads bypass pending stores).
//!
//! The storage is allocated once at construction (head/tail arithmetic over
//! a boxed slice): the simulator's hot loop pushes and pops queue entries
//! every cycle, and a ring buffer guarantees those operations never touch
//! the allocator or shift elements.

/// A FIFO queue with a hard capacity.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    /// Ring storage; `None` slots are free. Length equals `capacity`.
    slots: Box<[Option<T>]>,
    /// Index of the oldest item (valid when `len > 0`).
    head: usize,
    /// Current number of items.
    len: usize,
    peak_occupancy: usize,
    rejected: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue with room for `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            peak_occupancy: 0,
            rejected: 0,
        }
    }

    /// Maximum number of items the queue can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the queue is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity()
    }

    /// Remaining free slots.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.capacity() - self.len
    }

    /// Highest occupancy seen since construction.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of pushes rejected because the queue was full.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The physical slot index of the `i`-th item from the head.
    fn slot(&self, i: usize) -> usize {
        let idx = self.head + i;
        let cap = self.capacity();
        if idx >= cap {
            idx - cap
        } else {
            idx
        }
    }

    /// Appends an item. On a full queue the item is handed back as `Err`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.rejected += 1;
            return Err(item);
        }
        let tail = self.slot(self.len);
        debug_assert!(self.slots[tail].is_none(), "tail slot must be free");
        self.slots[tail] = Some(item);
        self.len += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.len);
        Ok(())
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        debug_assert!(item.is_some(), "head slot must be occupied");
        self.head = self.slot(1);
        self.len -= 1;
        item
    }

    /// A reference to the oldest item.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    /// A mutable reference to the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_mut()
        }
    }

    /// The two contiguous occupied regions of the ring, oldest first.
    fn halves(&self) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let cap = self.capacity();
        let end = self.head + self.len;
        if end <= cap {
            (self.head..end, 0..0)
        } else {
            (self.head..cap, 0..end - cap)
        }
    }

    /// Iterates oldest-to-youngest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (a, b) = self.halves();
        self.slots[a]
            .iter()
            .chain(self.slots[b].iter())
            .map(|s| s.as_ref().expect("occupied region holds items"))
    }

    /// Iterates mutably oldest-to-youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        let (a, b) = self.halves();
        let (lo, hi) = self.slots.split_at_mut(a.start);
        let first = &mut hi[..a.end - a.start];
        let second = &mut lo[b];
        first
            .iter_mut()
            .chain(second.iter_mut())
            .map(|s| s.as_mut().expect("occupied region holds items"))
    }

    /// Removes every item that matches the predicate, preserving order of
    /// the rest.
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, mut f: F) {
        let old_len = self.len;
        let mut kept = 0usize;
        for i in 0..old_len {
            let src = self.slot(i);
            let item = self.slots[src].take().expect("occupied region");
            if f(&item) {
                let dst = self.slot(kept);
                self.slots[dst] = Some(item);
                kept += 1;
            }
        }
        self.len = kept;
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            *slot = None;
        }
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_and_rejection() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.is_full());
        assert_eq!(q.free_slots(), 0);
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.rejected(), 1);
        q.pop();
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn front_access() {
        let mut q = BoundedQueue::new(4);
        assert!(q.front().is_none());
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.front(), Some(&10));
        *q.front_mut().unwrap() = 11;
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for _ in 0..3 {
            q.pop();
        }
        q.push(9).unwrap();
        assert_eq!(q.peak_occupancy(), 5);
    }

    #[test]
    fn iteration_and_retain() {
        let mut q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4, 5]);
        q.retain(|x| x % 2 == 0);
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![0, 2, 4]);
        for x in q.iter_mut() {
            *x += 1;
        }
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn iteration_across_the_wrap_point() {
        // Force head near the end of the ring so the occupied region wraps.
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for _ in 0..3 {
            q.pop();
        }
        for i in 10..13 {
            q.push(i).unwrap();
        }
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec![3, 10, 11, 12]);
        for x in q.iter_mut() {
            *x *= 2;
        }
        assert_eq!(q.pop(), Some(6));
        assert_eq!(q.pop(), Some(20));
        q.retain(|&x| x > 22);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![24]);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }

    #[test]
    fn paper_queue_sizes_construct() {
        // Figure 2: Instruction Queue 48 entries, Store Address Queue 32.
        let iq: BoundedQueue<u64> = BoundedQueue::new(48);
        let saq: BoundedQueue<u64> = BoundedQueue::new(32);
        assert_eq!(iq.capacity(), 48);
        assert_eq!(saq.capacity(), 32);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The ring buffer behaves exactly like a naive `VecDeque` model:
        /// never exceeds capacity, pops in FIFO order, and iteration sees
        /// the same sequence even when the occupied region wraps.
        #[test]
        fn ring_matches_vecdeque_reference(ops in prop::collection::vec(prop::option::of(0u32..100), 1..300)) {
            let mut q = BoundedQueue::new(5);
            let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
            for op in ops {
                match op {
                    Some(v) => {
                        let accepted = q.push(v).is_ok();
                        if model.len() < 5 {
                            prop_assert!(accepted);
                            model.push_back(v);
                        } else {
                            prop_assert!(!accepted);
                        }
                    }
                    None => {
                        prop_assert_eq!(q.pop(), model.pop_front());
                    }
                }
                prop_assert!(q.len() <= 5);
                prop_assert_eq!(q.len(), model.len());
                prop_assert_eq!(q.front().copied(), model.front().copied());
                let mine: Vec<u32> = q.iter().copied().collect();
                let theirs: Vec<u32> = model.iter().copied().collect();
                prop_assert_eq!(mine, theirs);
            }
        }

        /// `retain` agrees with the reference implementation at any head
        /// position (the compaction walks across the wrap point).
        #[test]
        fn retain_matches_reference(
            pre_pops in 0usize..5,
            values in prop::collection::vec(0u32..50, 0..10),
            keep_even in prop::bool::ANY,
        ) {
            let mut q = BoundedQueue::new(6);
            let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
            // Rotate the head first so the ring wraps in interesting ways.
            for i in 0..6u32 {
                q.push(i).unwrap();
            }
            for _ in 0..6 {
                q.pop();
            }
            for _ in 0..pre_pops.min(values.len()) {
                // no-op: pops beyond empty are None for both.
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            for v in values {
                if q.push(v).is_ok() {
                    model.push_back(v);
                }
            }
            let pred = |x: &u32| x.is_multiple_of(2) == keep_even;
            q.retain(pred);
            model.retain(pred);
            let mine: Vec<u32> = q.iter().copied().collect();
            let theirs: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(mine, theirs);
        }
    }
}
