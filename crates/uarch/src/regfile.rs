//! Register renaming: map table, free list and physical-register ready
//! times.
//!
//! Each thread owns two instances — one for the integer registers (renamed
//! onto the AP's physical register file, 64 entries per thread in the
//! paper) and one for the floating-point registers (renamed onto the EP's
//! file, 96 entries per thread).

use serde::{Deserialize, Serialize};

/// A physical register identifier within one register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysReg(pub u16);

/// The result of renaming a destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameOutcome {
    /// The newly allocated physical register for the destination.
    pub new: PhysReg,
    /// The physical register previously mapped to the same architectural
    /// register. It must be freed when the renaming instruction graduates.
    pub previous: PhysReg,
}

/// Rename map + free list + ready times for one register file.
///
/// Cycle tracking uses absolute ready cycles: a register is *ready at cycle
/// `c`* when its recorded ready cycle is `<= c`. Registers whose producer
/// has not yet computed a completion time hold `u64::MAX`.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    num_arch: usize,
    map: Vec<PhysReg>,
    free: Vec<PhysReg>,
    ready_cycle: Vec<u64>,
    total_phys: usize,
}

impl RegisterFile {
    /// Creates a register file with `num_arch` architectural registers
    /// renamed onto `num_phys` physical registers. Initially every
    /// architectural register is mapped and ready at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `num_phys < num_arch` (every architectural register needs a
    /// committed physical home) or `num_arch == 0`.
    #[must_use]
    pub fn new(num_arch: usize, num_phys: usize) -> Self {
        assert!(num_arch > 0, "need at least one architectural register");
        assert!(
            num_phys >= num_arch,
            "need at least as many physical as architectural registers"
        );
        let map = (0..num_arch).map(|i| PhysReg(i as u16)).collect();
        let free = (num_arch..num_phys)
            .rev()
            .map(|i| PhysReg(i as u16))
            .collect();
        RegisterFile {
            num_arch,
            map,
            free,
            ready_cycle: vec![0; num_phys],
            total_phys: num_phys,
        }
    }

    /// Total number of physical registers.
    #[must_use]
    pub fn total_phys(&self) -> usize {
        self.total_phys
    }

    /// Number of physical registers currently on the free list.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Whether a destination can currently be renamed.
    #[must_use]
    pub fn can_rename(&self) -> bool {
        !self.free.is_empty()
    }

    /// Current physical mapping of an architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `arch` is out of range.
    #[must_use]
    pub fn lookup(&self, arch: usize) -> PhysReg {
        assert!(arch < self.num_arch, "architectural register out of range");
        self.map[arch]
    }

    /// Renames architectural register `arch` to a fresh physical register.
    /// The new register is marked not-ready (`u64::MAX`). Returns `None`
    /// when the free list is empty (dispatch must stall).
    ///
    /// # Panics
    ///
    /// Panics if `arch` is out of range.
    pub fn rename_dest(&mut self, arch: usize) -> Option<RenameOutcome> {
        assert!(arch < self.num_arch, "architectural register out of range");
        let new = self.free.pop()?;
        let previous = self.map[arch];
        self.map[arch] = new;
        self.ready_cycle[new.0 as usize] = u64::MAX;
        Some(RenameOutcome { new, previous })
    }

    /// Returns a physical register to the free list (called when the
    /// instruction that superseded its mapping graduates, or when a
    /// squashed instruction's allocation is rolled back).
    ///
    /// # Panics
    ///
    /// Panics if the register index is out of range or if the free list
    /// would overflow (double free).
    pub fn release(&mut self, reg: PhysReg) {
        assert!((reg.0 as usize) < self.total_phys, "register out of range");
        assert!(
            self.free.len() < self.total_phys - self.num_arch,
            "free list overflow: double release of {reg:?}"
        );
        debug_assert!(!self.free.contains(&reg), "double release of {reg:?}");
        self.free.push(reg);
    }

    /// Records the cycle at which `reg` becomes ready.
    ///
    /// # Panics
    ///
    /// Panics if the register index is out of range.
    pub fn set_ready_cycle(&mut self, reg: PhysReg, cycle: u64) {
        self.ready_cycle[reg.0 as usize] = cycle;
    }

    /// Whether `reg` is ready at `cycle`.
    #[must_use]
    pub fn is_ready(&self, reg: PhysReg, cycle: u64) -> bool {
        self.ready_cycle[reg.0 as usize] <= cycle
    }

    /// The recorded ready cycle for `reg` (`u64::MAX` when unknown).
    #[must_use]
    pub fn ready_cycle(&self, reg: PhysReg) -> u64 {
        self.ready_cycle[reg.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_maps_arch_registers_ready() {
        let rf = RegisterFile::new(32, 64);
        assert_eq!(rf.total_phys(), 64);
        assert_eq!(rf.free_count(), 32);
        for i in 0..32 {
            assert_eq!(rf.lookup(i), PhysReg(i as u16));
            assert!(rf.is_ready(rf.lookup(i), 0));
        }
    }

    #[test]
    fn rename_allocates_and_marks_not_ready() {
        let mut rf = RegisterFile::new(32, 64);
        let out = rf.rename_dest(5).unwrap();
        assert_eq!(out.previous, PhysReg(5));
        assert_eq!(rf.lookup(5), out.new);
        assert!(!rf.is_ready(out.new, 1_000_000));
        assert_eq!(rf.free_count(), 31);
    }

    #[test]
    fn rename_exhausts_free_list() {
        let mut rf = RegisterFile::new(4, 6);
        assert!(rf.rename_dest(0).is_some());
        assert!(rf.rename_dest(1).is_some());
        assert!(!rf.can_rename());
        assert!(rf.rename_dest(2).is_none());
    }

    #[test]
    fn release_recycles_registers() {
        let mut rf = RegisterFile::new(4, 6);
        let a = rf.rename_dest(0).unwrap();
        let b = rf.rename_dest(1).unwrap();
        assert!(rf.rename_dest(2).is_none());
        rf.release(a.previous);
        let c = rf.rename_dest(2).unwrap();
        assert_eq!(c.new, a.previous);
        rf.release(b.previous);
        assert!(rf.can_rename());
    }

    #[test]
    fn ready_cycle_tracking() {
        let mut rf = RegisterFile::new(32, 64);
        let out = rf.rename_dest(3).unwrap();
        rf.set_ready_cycle(out.new, 42);
        assert!(!rf.is_ready(out.new, 41));
        assert!(rf.is_ready(out.new, 42));
        assert!(rf.is_ready(out.new, 100));
        assert_eq!(rf.ready_cycle(out.new), 42);
    }

    #[test]
    fn serial_dependence_chain_through_same_arch_reg() {
        // r1 = ...; r1 = r1 + ...; each definition gets a new physical reg.
        let mut rf = RegisterFile::new(32, 64);
        let first = rf.rename_dest(1).unwrap();
        rf.set_ready_cycle(first.new, 10);
        let src_for_second = rf.lookup(1);
        assert_eq!(src_for_second, first.new);
        let second = rf.rename_dest(1).unwrap();
        assert_ne!(second.new, first.new);
        assert_eq!(second.previous, first.new);
        assert!(rf.is_ready(src_for_second, 10));
        assert!(!rf.is_ready(second.new, 10));
    }

    #[test]
    #[should_panic(expected = "at least as many physical")]
    fn too_few_physical_registers_panics() {
        let _ = RegisterFile::new(32, 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lookup_out_of_range_panics() {
        let rf = RegisterFile::new(4, 8);
        let _ = rf.lookup(4);
    }

    #[test]
    #[should_panic(expected = "free list overflow")]
    fn double_release_panics() {
        let mut rf = RegisterFile::new(4, 5);
        let out = rf.rename_dest(0).unwrap();
        rf.release(out.previous);
        rf.release(out.previous);
    }

    #[test]
    fn paper_sizes_construct() {
        // Per-thread sizes from Figure 2: 64 AP (int) regs, 96 EP (fp) regs.
        let ap = RegisterFile::new(32, 64);
        let ep = RegisterFile::new(32, 96);
        assert_eq!(ap.free_count(), 32);
        assert_eq!(ep.free_count(), 64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Renaming and releasing in any interleaving never loses or
        /// duplicates physical registers: free + live mappings is constant.
        #[test]
        fn conservation_of_registers(ops in prop::collection::vec((0usize..8, prop::bool::ANY), 0..200)) {
            let mut rf = RegisterFile::new(8, 24);
            let mut pending_release: Vec<PhysReg> = Vec::new();
            for (arch, release_one) in ops {
                if release_one {
                    if let Some(r) = pending_release.pop() {
                        rf.release(r);
                    }
                } else if let Some(out) = rf.rename_dest(arch) {
                    pending_release.push(out.previous);
                }
                // 8 committed mappings + free + pending-release == 24 always.
                prop_assert_eq!(8 + rf.free_count() + pending_release.len(), 24);
            }
        }
    }
}
