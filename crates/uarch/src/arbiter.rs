//! Round-robin arbitration among hardware threads.
//!
//! The paper: "All the threads are allowed to compete for each of the 8
//! issue slots each cycle, and priorities among them are round-robin".

/// A rotating-priority arbiter over `n` participants.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    next_start: usize,
}

impl RoundRobin {
    /// Creates an arbiter over `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one participant");
        RoundRobin { n, next_start: 0 }
    }

    /// Number of participants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has exactly zero participants (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The participant that will have highest priority in the next ordering.
    #[must_use]
    pub fn next_start(&self) -> usize {
        self.next_start
    }

    /// Returns this cycle's priority ordering (highest priority first) and
    /// rotates the starting point for the next cycle.
    pub fn ordering(&mut self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n);
        self.ordering_into(&mut out);
        out
    }

    /// Writes this cycle's priority ordering into `out` (cleared first) and
    /// rotates the starting point for the next cycle. The allocation-free
    /// form used by the simulator hot loop with a reused scratch buffer.
    pub fn ordering_into(&mut self, out: &mut Vec<usize>) {
        let start = self.next_start;
        self.next_start = (self.next_start + 1) % self.n;
        out.clear();
        out.extend((0..self.n).map(|i| (start + i) % self.n));
    }

    /// Returns the current priority ordering without rotating.
    #[must_use]
    pub fn peek_ordering(&self) -> Vec<usize> {
        (0..self.n)
            .map(|i| (self.next_start + i) % self.n)
            .collect()
    }

    /// Advances the rotation as if `cycles` orderings had been taken, in
    /// O(1). Used by the simulator's stall fast-forward.
    pub fn advance(&mut self, cycles: u64) {
        self.next_start = (self.next_start + (cycles % self.n as u64) as usize) % self.n;
    }

    /// Resets the rotation.
    pub fn reset(&mut self) {
        self.next_start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_over_cycles() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.ordering(), vec![0, 1, 2]);
        assert_eq!(rr.ordering(), vec![1, 2, 0]);
        assert_eq!(rr.ordering(), vec![2, 0, 1]);
        assert_eq!(rr.ordering(), vec![0, 1, 2]);
    }

    #[test]
    fn peek_does_not_rotate() {
        let mut rr = RoundRobin::new(2);
        assert_eq!(rr.peek_ordering(), vec![0, 1]);
        assert_eq!(rr.peek_ordering(), vec![0, 1]);
        assert_eq!(rr.ordering(), vec![0, 1]);
        assert_eq!(rr.peek_ordering(), vec![1, 0]);
    }

    #[test]
    fn single_participant() {
        let mut rr = RoundRobin::new(1);
        assert_eq!(rr.ordering(), vec![0]);
        assert_eq!(rr.ordering(), vec![0]);
        assert_eq!(rr.len(), 1);
        assert!(!rr.is_empty());
    }

    #[test]
    fn every_participant_gets_top_priority_equally() {
        let mut rr = RoundRobin::new(4);
        let mut top_counts = [0usize; 4];
        for _ in 0..400 {
            let order = rr.ordering();
            top_counts[order[0]] += 1;
        }
        assert!(top_counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn orderings_are_permutations() {
        let mut rr = RoundRobin::new(5);
        for _ in 0..10 {
            let mut o = rr.ordering();
            o.sort_unstable();
            assert_eq!(o, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn reset_restores_start() {
        let mut rr = RoundRobin::new(3);
        rr.ordering();
        rr.ordering();
        rr.reset();
        assert_eq!(rr.ordering(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = RoundRobin::new(0);
    }
}
