//! A reorder buffer supporting in-order graduation.
//!
//! The simulator uses one ROB per thread to bound the number of in-flight
//! instructions, to retire them in program order (the paper supports precise
//! exceptions via "a reorder buffer, a graduation mechanism, and a register
//! renaming map table"), and to release superseded physical registers at
//! graduation time.

use std::collections::VecDeque;

/// An opaque handle to an entry in a [`Rob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RobToken(u64);

#[derive(Debug)]
struct Entry<T> {
    seq: u64,
    completed: bool,
    payload: T,
}

/// A bounded, in-order reorder buffer carrying an arbitrary payload per
/// entry.
#[derive(Debug)]
pub struct Rob<T> {
    entries: VecDeque<Entry<T>>,
    capacity: usize,
    next_seq: u64,
    retired: u64,
}

impl<T> Rob<T> {
    /// Creates an empty ROB with room for `capacity` in-flight instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            retired: 0,
        }
    }

    /// Maximum number of in-flight entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of in-flight entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ROB is full (dispatch must stall).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Total number of entries retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Allocates an entry at the tail. Returns `None` when the ROB is full.
    pub fn push(&mut self, payload: T) -> Option<RobToken> {
        if self.is_full() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(Entry {
            seq,
            completed: false,
            payload,
        });
        Some(RobToken(seq))
    }

    fn position(&self, token: RobToken) -> Option<usize> {
        let head_seq = self.entries.front()?.seq;
        if token.0 < head_seq {
            return None;
        }
        let idx = (token.0 - head_seq) as usize;
        if idx < self.entries.len() {
            debug_assert_eq!(self.entries[idx].seq, token.0);
            Some(idx)
        } else {
            None
        }
    }

    /// Marks the entry identified by `token` as completed (eligible for
    /// graduation once it reaches the head).
    ///
    /// # Panics
    ///
    /// Panics if the token does not refer to an in-flight entry (e.g. it was
    /// already retired).
    pub fn mark_completed(&mut self, token: RobToken) {
        let idx = self
            .position(token)
            .expect("mark_completed on a token that is not in flight");
        self.entries[idx].completed = true;
    }

    /// Whether the entry identified by `token` is still in flight.
    #[must_use]
    pub fn contains(&self, token: RobToken) -> bool {
        self.position(token).is_some()
    }

    /// Read-only access to the payload of an in-flight entry.
    #[must_use]
    pub fn payload(&self, token: RobToken) -> Option<&T> {
        self.position(token).map(|i| &self.entries[i].payload)
    }

    /// Mutable access to the payload of an in-flight entry.
    pub fn payload_mut(&mut self, token: RobToken) -> Option<&mut T> {
        self.position(token)
            .map(move |i| &mut self.entries[i].payload)
    }

    /// Retires completed entries from the head, in order, up to `max`
    /// entries, returning their payloads.
    pub fn retire(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.entries.front() {
                Some(e) if e.completed => {
                    let e = self.entries.pop_front().expect("front exists");
                    self.retired += 1;
                    out.push(e.payload);
                }
                _ => break,
            }
        }
        out
    }

    /// Removes every entry (used when squashing a thread); returns the
    /// payloads youngest-first so rollback can proceed in reverse order.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut v: Vec<T> = self.entries.drain(..).map(|e| e.payload).collect();
        v.reverse();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_retire_in_order() {
        let mut rob: Rob<u32> = Rob::new(4);
        let a = rob.push(10).unwrap();
        let b = rob.push(20).unwrap();
        let c = rob.push(30).unwrap();
        // Completing out of order does not reorder graduation.
        rob.mark_completed(c);
        rob.mark_completed(b);
        assert_eq!(rob.retire(8), Vec::<u32>::new());
        rob.mark_completed(a);
        assert_eq!(rob.retire(8), vec![10, 20, 30]);
        assert_eq!(rob.retired(), 3);
        assert!(rob.is_empty());
    }

    #[test]
    fn retire_respects_max() {
        let mut rob: Rob<u32> = Rob::new(8);
        let tokens: Vec<_> = (0..6).map(|i| rob.push(i).unwrap()).collect();
        for t in &tokens {
            rob.mark_completed(*t);
        }
        assert_eq!(rob.retire(4), vec![0, 1, 2, 3]);
        assert_eq!(rob.retire(4), vec![4, 5]);
    }

    #[test]
    fn capacity_enforced() {
        let mut rob: Rob<u32> = Rob::new(2);
        assert!(rob.push(1).is_some());
        assert!(rob.push(2).is_some());
        assert!(rob.is_full());
        assert!(rob.push(3).is_none());
        let t = rob.push(3);
        assert!(t.is_none());
    }

    #[test]
    fn payload_access() {
        let mut rob: Rob<String> = Rob::new(2);
        let t = rob.push("hello".to_string()).unwrap();
        assert_eq!(rob.payload(t).unwrap(), "hello");
        rob.payload_mut(t).unwrap().push_str(" world");
        assert_eq!(rob.payload(t).unwrap(), "hello world");
    }

    #[test]
    fn tokens_invalid_after_retirement() {
        let mut rob: Rob<u32> = Rob::new(2);
        let t = rob.push(1).unwrap();
        rob.mark_completed(t);
        rob.retire(1);
        assert!(!rob.contains(t));
        assert_eq!(rob.payload(t), None);
    }

    #[test]
    fn drain_all_returns_youngest_first() {
        let mut rob: Rob<u32> = Rob::new(4);
        rob.push(1).unwrap();
        rob.push(2).unwrap();
        rob.push(3).unwrap();
        assert_eq!(rob.drain_all(), vec![3, 2, 1]);
        assert!(rob.is_empty());
        assert_eq!(rob.retired(), 0);
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn completing_retired_entry_panics() {
        let mut rob: Rob<u32> = Rob::new(2);
        let t = rob.push(1).unwrap();
        rob.mark_completed(t);
        rob.retire(1);
        rob.mark_completed(t);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: Rob<u32> = Rob::new(0);
    }

    #[test]
    fn interleaved_push_retire_preserves_fifo() {
        let mut rob: Rob<u64> = Rob::new(3);
        let mut next_expected = 0u64;
        let mut next_value = 0u64;
        let mut inflight = Vec::new();
        for step in 0..100u64 {
            if !rob.is_full() {
                let t = rob.push(next_value).unwrap();
                inflight.push(t);
                next_value += 1;
            }
            if step % 2 == 0 {
                if let Some(t) = inflight.first().copied() {
                    rob.mark_completed(t);
                    inflight.remove(0);
                }
            }
            for v in rob.retire(2) {
                assert_eq!(v, next_expected);
                next_expected += 1;
            }
        }
    }
}
