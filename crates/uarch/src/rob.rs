//! A reorder buffer supporting in-order graduation.
//!
//! The simulator uses one ROB per thread to bound the number of in-flight
//! instructions, to retire them in program order (the paper supports precise
//! exceptions via "a reorder buffer, a graduation mechanism, and a register
//! renaming map table"), and to release superseded physical registers at
//! graduation time.
//!
//! Entries live in a fixed ring buffer allocated at construction; pushes,
//! completions (O(1) by sequence arithmetic) and retirement never allocate.
//! The retirement hot path is [`Rob::retire_with`], which hands payloads to
//! a callback instead of collecting them into a `Vec`.

/// An opaque handle to an entry in a [`Rob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RobToken(u64);

#[derive(Debug, Clone)]
struct Entry<T> {
    seq: u64,
    completed: bool,
    payload: T,
}

/// A bounded, in-order reorder buffer carrying an arbitrary payload per
/// entry.
#[derive(Debug)]
pub struct Rob<T> {
    /// Ring storage; `None` slots are free. Length equals the capacity.
    slots: Box<[Option<Entry<T>>]>,
    /// Physical index of the oldest entry (valid when `len > 0`).
    head: usize,
    /// Current number of in-flight entries.
    len: usize,
    next_seq: u64,
    retired: u64,
}

impl<T> Rob<T> {
    /// Creates an empty ROB with room for `capacity` in-flight instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be non-zero");
        Rob {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            next_seq: 0,
            retired: 0,
        }
    }

    /// Maximum number of in-flight entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current number of in-flight entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ROB holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the ROB is full (dispatch must stall).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity()
    }

    /// Total number of entries retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the head entry exists and is completed (i.e. a retire pass
    /// would graduate at least one instruction).
    #[must_use]
    pub fn head_completed(&self) -> bool {
        self.len > 0
            && self.slots[self.head]
                .as_ref()
                .expect("head slot occupied when len > 0")
                .completed
    }

    /// The physical slot index of the `i`-th entry from the head.
    fn slot(&self, i: usize) -> usize {
        let idx = self.head + i;
        let cap = self.capacity();
        if idx >= cap {
            idx - cap
        } else {
            idx
        }
    }

    /// Allocates an entry at the tail. Returns `None` when the ROB is full.
    pub fn push(&mut self, payload: T) -> Option<RobToken> {
        if self.is_full() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let tail = self.slot(self.len);
        debug_assert!(self.slots[tail].is_none(), "tail slot must be free");
        self.slots[tail] = Some(Entry {
            seq,
            completed: false,
            payload,
        });
        self.len += 1;
        Some(RobToken(seq))
    }

    /// The physical slot of `token`, if it is still in flight. O(1): the
    /// in-flight window is the contiguous sequence range ending at
    /// `next_seq`.
    fn position(&self, token: RobToken) -> Option<usize> {
        let head_seq = self.next_seq - self.len as u64;
        if self.len == 0 || token.0 < head_seq || token.0 >= self.next_seq {
            return None;
        }
        let idx = self.slot((token.0 - head_seq) as usize);
        debug_assert_eq!(
            self.slots[idx].as_ref().map(|e| e.seq),
            Some(token.0),
            "ring slot must hold the tokened entry"
        );
        Some(idx)
    }

    /// Marks the entry identified by `token` as completed (eligible for
    /// graduation once it reaches the head).
    ///
    /// # Panics
    ///
    /// Panics if the token does not refer to an in-flight entry (e.g. it was
    /// already retired).
    pub fn mark_completed(&mut self, token: RobToken) {
        let idx = self
            .position(token)
            .expect("mark_completed on a token that is not in flight");
        self.slots[idx]
            .as_mut()
            .expect("position returns occupied slots")
            .completed = true;
    }

    /// Whether the entry identified by `token` is still in flight.
    #[must_use]
    pub fn contains(&self, token: RobToken) -> bool {
        self.position(token).is_some()
    }

    /// Read-only access to the payload of an in-flight entry.
    #[must_use]
    pub fn payload(&self, token: RobToken) -> Option<&T> {
        self.position(token)
            .map(|i| &self.slots[i].as_ref().expect("occupied").payload)
    }

    /// Mutable access to the payload of an in-flight entry.
    pub fn payload_mut(&mut self, token: RobToken) -> Option<&mut T> {
        self.position(token)
            .map(move |i| &mut self.slots[i].as_mut().expect("occupied").payload)
    }

    /// Retires completed entries from the head, in order, up to `max`
    /// entries, handing each payload to `f`. Returns the number retired.
    ///
    /// This is the allocation-free form used by the simulator every cycle;
    /// [`Rob::retire`] wraps it when a `Vec` is convenient.
    pub fn retire_with<F: FnMut(T)>(&mut self, max: usize, mut f: F) -> usize {
        let mut count = 0usize;
        while count < max && self.len > 0 {
            match &self.slots[self.head] {
                Some(e) if e.completed => {
                    let e = self.slots[self.head].take().expect("head is occupied");
                    self.head = self.slot(1);
                    self.len -= 1;
                    self.retired += 1;
                    count += 1;
                    f(e.payload);
                }
                _ => break,
            }
        }
        count
    }

    /// Retires completed entries from the head, in order, up to `max`
    /// entries, returning their payloads.
    pub fn retire(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        self.retire_with(max, |p| out.push(p));
        out
    }

    /// Removes every entry (used when squashing a thread); returns the
    /// payloads youngest-first so rollback can proceed in reverse order.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut v: Vec<T> = Vec::with_capacity(self.len);
        for i in (0..self.len).rev() {
            let idx = self.slot(i);
            v.push(self.slots[idx].take().expect("occupied region").payload);
        }
        self.head = 0;
        self.len = 0;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_retire_in_order() {
        let mut rob: Rob<u32> = Rob::new(4);
        let a = rob.push(10).unwrap();
        let b = rob.push(20).unwrap();
        let c = rob.push(30).unwrap();
        // Completing out of order does not reorder graduation.
        rob.mark_completed(c);
        rob.mark_completed(b);
        assert_eq!(rob.retire(8), Vec::<u32>::new());
        rob.mark_completed(a);
        assert_eq!(rob.retire(8), vec![10, 20, 30]);
        assert_eq!(rob.retired(), 3);
        assert!(rob.is_empty());
    }

    #[test]
    fn retire_respects_max() {
        let mut rob: Rob<u32> = Rob::new(8);
        let tokens: Vec<_> = (0..6).map(|i| rob.push(i).unwrap()).collect();
        for t in &tokens {
            rob.mark_completed(*t);
        }
        assert_eq!(rob.retire(4), vec![0, 1, 2, 3]);
        assert_eq!(rob.retire(4), vec![4, 5]);
    }

    #[test]
    fn retire_with_counts_and_visits_in_order() {
        let mut rob: Rob<u32> = Rob::new(4);
        let a = rob.push(1).unwrap();
        let b = rob.push(2).unwrap();
        rob.mark_completed(a);
        rob.mark_completed(b);
        let mut seen = Vec::new();
        let n = rob.retire_with(8, |p| seen.push(p));
        assert_eq!(n, 2);
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(rob.retire_with(8, |_| panic!("nothing left")), 0);
    }

    #[test]
    fn capacity_enforced() {
        let mut rob: Rob<u32> = Rob::new(2);
        assert!(rob.push(1).is_some());
        assert!(rob.push(2).is_some());
        assert!(rob.is_full());
        assert!(rob.push(3).is_none());
        let t = rob.push(3);
        assert!(t.is_none());
    }

    #[test]
    fn payload_access() {
        let mut rob: Rob<String> = Rob::new(2);
        let t = rob.push("hello".to_string()).unwrap();
        assert_eq!(rob.payload(t).unwrap(), "hello");
        rob.payload_mut(t).unwrap().push_str(" world");
        assert_eq!(rob.payload(t).unwrap(), "hello world");
    }

    #[test]
    fn tokens_invalid_after_retirement() {
        let mut rob: Rob<u32> = Rob::new(2);
        let t = rob.push(1).unwrap();
        rob.mark_completed(t);
        rob.retire(1);
        assert!(!rob.contains(t));
        assert_eq!(rob.payload(t), None);
    }

    #[test]
    fn drain_all_returns_youngest_first() {
        let mut rob: Rob<u32> = Rob::new(4);
        rob.push(1).unwrap();
        rob.push(2).unwrap();
        rob.push(3).unwrap();
        assert_eq!(rob.drain_all(), vec![3, 2, 1]);
        assert!(rob.is_empty());
        assert_eq!(rob.retired(), 0);
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn completing_retired_entry_panics() {
        let mut rob: Rob<u32> = Rob::new(2);
        let t = rob.push(1).unwrap();
        rob.mark_completed(t);
        rob.retire(1);
        rob.mark_completed(t);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: Rob<u32> = Rob::new(0);
    }

    #[test]
    fn interleaved_push_retire_preserves_fifo() {
        let mut rob: Rob<u64> = Rob::new(3);
        let mut next_expected = 0u64;
        let mut next_value = 0u64;
        let mut inflight = Vec::new();
        for step in 0..100u64 {
            if !rob.is_full() {
                let t = rob.push(next_value).unwrap();
                inflight.push(t);
                next_value += 1;
            }
            if step % 2 == 0 {
                if let Some(t) = inflight.first().copied() {
                    rob.mark_completed(t);
                    inflight.remove(0);
                }
            }
            for v in rob.retire(2) {
                assert_eq!(v, next_expected);
                next_expected += 1;
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference: a `VecDeque` of (seq, completed, payload), exactly
    /// the pre-ring-buffer implementation.
    struct NaiveRob {
        entries: std::collections::VecDeque<(u64, bool, u32)>,
        capacity: usize,
        next_seq: u64,
        retired: u64,
    }

    impl NaiveRob {
        fn push(&mut self, payload: u32) -> Option<u64> {
            if self.entries.len() >= self.capacity {
                return None;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.entries.push_back((seq, false, payload));
            Some(seq)
        }

        fn mark_completed(&mut self, seq: u64) -> bool {
            for e in &mut self.entries {
                if e.0 == seq {
                    e.1 = true;
                    return true;
                }
            }
            false
        }

        fn retire(&mut self, max: usize) -> Vec<u32> {
            let mut out = Vec::new();
            while out.len() < max {
                match self.entries.front() {
                    Some(&(_, true, p)) => {
                        out.push(p);
                        self.entries.pop_front();
                        self.retired += 1;
                    }
                    _ => break,
                }
            }
            out
        }
    }

    proptest! {
        /// The ring-buffer ROB matches the naive reference under arbitrary
        /// interleavings of push / complete-random-inflight / retire.
        #[test]
        fn ring_rob_matches_naive_reference(
            ops in prop::collection::vec((0u8..3, 0usize..16, 0u32..1000), 1..200),
        ) {
            let mut rob: Rob<u32> = Rob::new(5);
            let mut model = NaiveRob {
                entries: std::collections::VecDeque::new(),
                capacity: 5,
                next_seq: 0,
                retired: 0,
            };
            let mut tokens: Vec<(RobToken, u64)> = Vec::new();
            for (op, pick, value) in ops {
                match op {
                    0 => {
                        let t = rob.push(value);
                        let m = model.push(value);
                        prop_assert_eq!(t.is_some(), m.is_some());
                        if let (Some(t), Some(m)) = (t, m) {
                            tokens.push((t, m));
                        }
                    }
                    1 => {
                        if !tokens.is_empty() {
                            let (t, m) = tokens[pick % tokens.len()];
                            // Completing an already-retired entry is a panic
                            // in the real ROB; only mirror in-flight marks.
                            if model.mark_completed(m) {
                                prop_assert!(rob.contains(t));
                                rob.mark_completed(t);
                            } else {
                                prop_assert!(!rob.contains(t));
                            }
                        }
                    }
                    _ => {
                        let max = pick % 4;
                        prop_assert_eq!(rob.retire(max), model.retire(max));
                    }
                }
                prop_assert_eq!(rob.len(), model.entries.len());
                prop_assert_eq!(rob.retired(), model.retired);
                prop_assert_eq!(rob.is_full(), model.entries.len() >= 5);
            }
        }
    }
}
