//! Dispatch steering: which decoupled processing unit executes an
//! instruction.
//!
//! The paper uses "a simple steering mechanism based on their data type
//! (int or fp), except for memory instructions, which are all sent to the
//! AP". Control transfers compute on integer data and are resolved at the
//! AP (which enforces the 4-unresolved-branch control-speculation limit).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::OpClass;

/// One of the two decoupled processing units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// The Address Processor: integer computation, all memory instructions
    /// and control transfers. Short functional-unit latency (1 cycle in the
    /// paper's configuration).
    Ap,
    /// The Execute Processor: floating-point computation. Longer
    /// functional-unit latency (4 cycles in the paper's configuration).
    Ep,
}

impl Unit {
    /// Both units, AP first.
    pub const ALL: [Unit; 2] = [Unit::Ap, Unit::Ep];

    /// The other unit.
    #[must_use]
    pub fn other(&self) -> Unit {
        match self {
            Unit::Ap => Unit::Ep,
            Unit::Ep => Unit::Ap,
        }
    }

    /// A dense index (AP = 0, EP = 1) for per-unit statistics tables.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            Unit::Ap => 0,
            Unit::Ep => 1,
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unit::Ap => write!(f, "AP"),
            Unit::Ep => write!(f, "EP"),
        }
    }
}

/// Steers an operation class to the unit that executes it.
///
/// * All memory instructions (integer and FP loads and stores) → [`Unit::Ap`].
/// * Integer computation, branches, jumps and nops → [`Unit::Ap`].
/// * Floating-point computation → [`Unit::Ep`].
///
/// # Example
///
/// ```
/// use dsmt_isa::{steer, OpClass, Unit};
///
/// assert_eq!(steer(OpClass::LoadFp), Unit::Ap);   // memory ⇒ AP
/// assert_eq!(steer(OpClass::FpMul), Unit::Ep);    // fp compute ⇒ EP
/// assert_eq!(steer(OpClass::IntAlu), Unit::Ap);
/// ```
#[must_use]
pub fn steer(op: OpClass) -> Unit {
    if op.is_fp_compute() {
        Unit::Ep
    } else {
        Unit::Ap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_goes_to_ap() {
        assert_eq!(steer(OpClass::LoadInt), Unit::Ap);
        assert_eq!(steer(OpClass::LoadFp), Unit::Ap);
        assert_eq!(steer(OpClass::StoreInt), Unit::Ap);
        assert_eq!(steer(OpClass::StoreFp), Unit::Ap);
    }

    #[test]
    fn fp_compute_goes_to_ep() {
        assert_eq!(steer(OpClass::FpAdd), Unit::Ep);
        assert_eq!(steer(OpClass::FpMul), Unit::Ep);
        assert_eq!(steer(OpClass::FpDiv), Unit::Ep);
    }

    #[test]
    fn int_and_control_go_to_ap() {
        assert_eq!(steer(OpClass::IntAlu), Unit::Ap);
        assert_eq!(steer(OpClass::IntMul), Unit::Ap);
        assert_eq!(steer(OpClass::CondBranch), Unit::Ap);
        assert_eq!(steer(OpClass::UncondBranch), Unit::Ap);
        assert_eq!(steer(OpClass::Jump), Unit::Ap);
        assert_eq!(steer(OpClass::Nop), Unit::Ap);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(Unit::Ap.other(), Unit::Ep);
        assert_eq!(Unit::Ep.other(), Unit::Ap);
        assert_eq!(Unit::Ap.index(), 0);
        assert_eq!(Unit::Ep.index(), 1);
        assert_eq!(Unit::Ap.to_string(), "AP");
        assert_eq!(Unit::Ep.to_string(), "EP");
    }

    #[test]
    fn every_op_class_is_steered() {
        for op in OpClass::ALL {
            // steer is total: must not panic and must return one of the two units.
            let u = steer(op);
            assert!(Unit::ALL.contains(&u));
        }
    }
}
