//! Error types for instruction construction, validation and decoding.

use std::error::Error;
use std::fmt;

/// Errors produced when validating or decoding an [`crate::Instruction`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InstructionError {
    /// A memory instruction is missing its memory reference.
    MissingMemRef,
    /// A non-memory instruction carries a memory reference.
    UnexpectedMemRef,
    /// A control-transfer instruction is missing its branch outcome.
    MissingBranchInfo,
    /// A non-control instruction carries branch outcome information.
    UnexpectedBranchInfo,
    /// A load or computation instruction is missing a destination register.
    MissingDest,
    /// The destination register class does not match the operation class
    /// (e.g. an FP load writing an integer register).
    DestClassMismatch,
    /// The binary encoding ended prematurely.
    TruncatedEncoding,
    /// The binary encoding contains an unknown operation tag.
    UnknownOpTag(u8),
    /// The binary encoding contains an invalid register byte.
    InvalidRegisterByte(u8),
}

impl fmt::Display for InstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstructionError::MissingMemRef => {
                write!(f, "memory instruction has no memory reference")
            }
            InstructionError::UnexpectedMemRef => {
                write!(f, "non-memory instruction carries a memory reference")
            }
            InstructionError::MissingBranchInfo => {
                write!(f, "control instruction has no branch outcome")
            }
            InstructionError::UnexpectedBranchInfo => {
                write!(f, "non-control instruction carries branch outcome")
            }
            InstructionError::MissingDest => {
                write!(f, "instruction requires a destination register")
            }
            InstructionError::DestClassMismatch => {
                write!(f, "destination register class does not match operation")
            }
            InstructionError::TruncatedEncoding => {
                write!(f, "unexpected end of encoded instruction stream")
            }
            InstructionError::UnknownOpTag(tag) => {
                write!(f, "unknown operation tag {tag} in encoded instruction")
            }
            InstructionError::InvalidRegisterByte(byte) => {
                write!(f, "invalid register byte {byte:#x} in encoded instruction")
            }
        }
    }
}

impl Error for InstructionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let variants = [
            InstructionError::MissingMemRef,
            InstructionError::UnexpectedMemRef,
            InstructionError::MissingBranchInfo,
            InstructionError::UnexpectedBranchInfo,
            InstructionError::MissingDest,
            InstructionError::DestClassMismatch,
            InstructionError::TruncatedEncoding,
            InstructionError::UnknownOpTag(42),
            InstructionError::InvalidRegisterByte(0xff),
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<InstructionError>();
    }
}
