//! Shared variable-length integer encoding (LEB128) for binary formats.
//!
//! The trace encoding (`encode.rs`) keeps its fixed-width layout for
//! stability, but newer on-disk formats (the sweep crate's `.dsr` record
//! files) pack counters with these helpers: a `u64` costs one byte per 7
//! significant bits, so the small counts that dominate simulation results
//! take one or two bytes instead of eight.
//!
//! * **Unsigned** values use plain LEB128: 7 value bits per byte, the high
//!   bit flags continuation, little-endian groups.
//! * **Signed** values are zigzag-mapped first (`0, -1, 1, -2, ...` →
//!   `0, 1, 2, 3, ...`), so small magnitudes of either sign stay short.
//!
//! Decoding rejects non-canonical encodings (trailing zero groups and
//! values overflowing 64 bits) so that every `u64` has exactly one byte
//! representation — a requirement for checksummed formats that compare
//! files byte-for-byte.

use bytes::{Buf, BufMut};

/// Maximum encoded length of a `u64` (⌈64 / 7⌉ bytes).
pub const MAX_UVARINT_LEN: usize = 10;

/// Errors from varint decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The buffer ended mid-value.
    Truncated,
    /// The value does not fit in 64 bits, or the encoding has a redundant
    /// trailing group (non-canonical).
    Malformed,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "varint truncated"),
            VarintError::Malformed => write!(f, "varint malformed (overflow or non-canonical)"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends the LEB128 encoding of `value` to `buf`.
pub fn put_uvarint<B: BufMut>(buf: &mut B, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes one LEB128 value from the front of `buf`, consuming its bytes.
///
/// # Errors
///
/// [`VarintError::Truncated`] if the buffer ends mid-value;
/// [`VarintError::Malformed`] on 64-bit overflow or a non-canonical
/// encoding (a continuation into a redundant all-zero group).
pub fn get_uvarint<B: Buf>(buf: &mut B) -> Result<u64, VarintError> {
    let mut value: u64 = 0;
    for i in 0..MAX_UVARINT_LEN {
        if !buf.has_remaining() {
            return Err(VarintError::Truncated);
        }
        let byte = buf.get_u8();
        let group = u64::from(byte & 0x7f);
        // The 10th byte may only carry the single remaining bit of a u64.
        if i == MAX_UVARINT_LEN - 1 && group > 1 {
            return Err(VarintError::Malformed);
        }
        value |= group << (7 * i);
        if byte & 0x80 == 0 {
            // Canonical form: only the first group may be zero.
            if i > 0 && group == 0 {
                return Err(VarintError::Malformed);
            }
            return Ok(value);
        }
    }
    Err(VarintError::Malformed)
}

/// Appends the zigzag LEB128 encoding of a signed value.
pub fn put_ivarint<B: BufMut>(buf: &mut B, value: i64) {
    put_uvarint(buf, zigzag(value));
}

/// Decodes one zigzag LEB128 signed value.
///
/// # Errors
///
/// As for [`get_uvarint`].
pub fn get_ivarint<B: Buf>(buf: &mut B) -> Result<i64, VarintError> {
    get_uvarint(buf).map(unzigzag)
}

/// Maps a signed value to an unsigned one with small absolute values small.
#[must_use]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoded(value: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, value);
        buf
    }

    #[test]
    fn known_encodings() {
        assert_eq!(encoded(0), vec![0x00]);
        assert_eq!(encoded(1), vec![0x01]);
        assert_eq!(encoded(127), vec![0x7f]);
        assert_eq!(encoded(128), vec![0x80, 0x01]);
        assert_eq!(encoded(300), vec![0xac, 0x02]);
        assert_eq!(encoded(u64::MAX).len(), MAX_UVARINT_LEN);
    }

    #[test]
    fn round_trip_edge_values() {
        for v in [
            0,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let bytes = encoded(v);
            let mut slice = bytes.as_slice();
            assert_eq!(get_uvarint(&mut slice), Ok(v));
            assert!(slice.is_empty(), "all bytes consumed for {v}");
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(get_ivarint(&mut buf.as_slice()), Ok(v));
        }
        // Small magnitudes of either sign stay one byte.
        for v in [-64i64, -1, 0, 1, 63] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(buf.len(), 1, "{v} should fit one byte");
        }
    }

    #[test]
    fn truncated_inputs_error() {
        assert_eq!(get_uvarint(&mut [].as_slice()), Err(VarintError::Truncated));
        let mut long = encoded(u64::MAX);
        long.pop();
        assert_eq!(
            get_uvarint(&mut long.as_slice()),
            Err(VarintError::Truncated)
        );
    }

    #[test]
    fn non_canonical_and_overflow_error() {
        // 0 encoded with a redundant continuation group.
        assert_eq!(
            get_uvarint(&mut [0x80, 0x00].as_slice()),
            Err(VarintError::Malformed)
        );
        // 11 continuation bytes can never terminate within the limit.
        let eleven = [0x80u8; 11];
        assert_eq!(
            get_uvarint(&mut eleven.as_slice()),
            Err(VarintError::Malformed)
        );
        // 10th group carrying more than the final u64 bit overflows.
        let mut overflow = vec![0x80u8; 9];
        overflow.push(0x02);
        assert_eq!(
            get_uvarint(&mut overflow.as_slice()),
            Err(VarintError::Malformed)
        );
    }

    #[test]
    fn zigzag_is_bijective_on_edges() {
        for v in [i64::MIN, -2, -1, 0, 1, 2, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn uvarint_round_trips(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            prop_assert!(buf.len() <= MAX_UVARINT_LEN);
            let mut slice = buf.as_slice();
            prop_assert_eq!(get_uvarint(&mut slice), Ok(v));
            prop_assert!(slice.is_empty());
        }

        #[test]
        fn ivarint_round_trips(v in any::<i64>()) {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            prop_assert_eq!(get_ivarint(&mut buf.as_slice()), Ok(v));
        }

        #[test]
        fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..16)) {
            let _ = get_uvarint(&mut bytes.as_slice());
        }

        #[test]
        fn streams_concatenate(values in prop::collection::vec(any::<u64>(), 0..32)) {
            let mut buf = Vec::new();
            for &v in &values {
                put_uvarint(&mut buf, v);
            }
            let mut slice = buf.as_slice();
            for &v in &values {
                prop_assert_eq!(get_uvarint(&mut slice), Ok(v));
            }
            prop_assert!(slice.is_empty());
        }
    }
}
